"""The layer cost model: load-then-execute vs direct-host-access.

This module answers, for one layer on one machine, the three questions
DeepPlan's profiler asks (paper Section 4.3.1):

* how long does **loading** the layer's parameters host->GPU take,
* how long does executing it **in-memory** take,
* how long does executing it by **direct-host-access** take.

Execution time is a roofline with a per-kernel CPU-overhead floor::

    t = max(floor(kind), flops / (efficiency(kind) * peak_flops), bytes / bw)

For in-memory execution the byte term reads parameters and activations
from HBM; for DHA the parameter traffic instead crosses PCIe at the
layer's reuse factor (see :mod:`repro.models.layers`) and a reduced
zero-copy efficiency — streamed reads come close to line rate, scattered
embedding gathers are latency-bound.

Calibration: the constants here plus :mod:`repro.hw.specs` are fitted so
the model reproduces the paper's own measurements — 9.35 ms in-memory
BERT-Base batch-1 inference, ~40 ms BERT-Base load, Table 1 PCIe event
counts, Table 2 effective bandwidths, Table 4 strategy latencies.
``tests/test_calibration.py`` locks these anchors in.
"""

from __future__ import annotations

import dataclasses

from repro.hw.specs import GPUSpec, MachineSpec
from repro.models.graph import ModelSpec
from repro.models.layers import LayerKind, LayerSpec
from repro.units import US

__all__ = ["CostModel", "LayerCosts", "PCIE_PAYLOAD_BYTES"]

#: PCIe transaction payload (one cache line), used to convert traffic into
#: the event counts the paper measures with PCIeRdCur counters (Table 1).
PCIE_PAYLOAD_BYTES = 64

#: Per-kernel time floor by layer kind, seconds.  Models eager-mode launch
#: and framework overhead: tiny kernels cannot run faster than the CPU can
#: issue them.  Convolutions (cudnn descriptor handling) are the worst.
KIND_TIME_FLOOR = {
    LayerKind.CONV: 50 * US,
    LayerKind.BATCHNORM: 40 * US,
    LayerKind.POOLING: 40 * US,
    LayerKind.ACTIVATION: 25 * US,
    LayerKind.ELEMENTWISE: 20 * US,
    LayerKind.LINEAR: 25 * US,
    LayerKind.LAYERNORM: 20 * US,
    LayerKind.EMBEDDING: 25 * US,
    LayerKind.ATTENTION: 30 * US,
}

#: Extra synchronization cost the execution stream pays per *loaded* layer
#: when pipelining (cudaStreamWaitEvent on the load stream's event,
#: Section 4.3.4).  DHA layers skip the dependency check.
EVENT_SYNC_OVERHEAD = 4 * US

#: Per-kind overrides of zero-copy PCIe efficiency.  LayerNorm re-reads
#: its small parameter vector once per token in short, dependent, strided
#: bursts (mean/variance pass, then scale/shift) that never fill the PCIe
#: pipeline — which is why the paper finds load-then-execute wins for
#: LayerNorm while the otherwise-similar BatchNorm favours DHA
#: (Section 3.1, "Other layers").
KIND_DHA_EFFICIENCY = {
    LayerKind.LAYERNORM: 0.07,
}

#: Fixed per-kernel penalty of executing out of pinned host memory:
#: first-touch PCIe round-trips and uncached page handling before the
#: read pipeline fills.  This is why DHA is only *slightly* ahead for
#: BatchNorm and small convs (paper Figure 5b: "negligible difference")
#: and why converting dozens of tiny layers is not free — without it the
#: planner would DHA-convert nearly all of ResNet and overshoot the
#: paper's measured 1.01-1.03x DHA speedup.
DHA_KERNEL_PENALTY = 25 * US


@dataclasses.dataclass(frozen=True)
class LayerCosts:
    """The profiler's view of one layer (paper Figure 10's table rows)."""

    name: str
    kind: LayerKind
    #: Host->GPU transfer time for the parameters, contention-free.
    load_time: float
    #: Execution time with parameters resident in GPU memory.
    exec_inmem: float
    #: Execution time reading parameters from pinned host memory (equals
    #: ``exec_inmem`` for parameter-free layers — there is nothing to not
    #: load).
    exec_dha: float
    #: Bytes a load moves across PCIe.
    load_pcie_bytes: int
    #: Bytes DHA execution moves across PCIe.
    dha_pcie_bytes: int

    @property
    def perf_diff(self) -> float:
        """``Exe(DHA) - Exe(InMem)`` — the paper's PerfDiff quantity."""
        return self.exec_dha - self.exec_inmem


class CostModel:
    """Layer timing for one machine (GPU spec + PCIe generation)."""

    def __init__(self, machine_spec: MachineSpec) -> None:
        self.machine_spec = machine_spec
        self.gpu: GPUSpec = machine_spec.gpu

    # -- loading ---------------------------------------------------------------

    def load_time(self, layer: LayerSpec) -> float:
        """Contention-free host->GPU copy time for the layer's parameters."""
        if not layer.loadable:
            return 0.0
        wire = layer.param_bytes / self.machine_spec.pcie_lane_bandwidth
        return self.machine_spec.pcie_copy_overhead + wire

    def nvlink_time(self, nbytes: int) -> float:
        """Contention-free GPU->GPU copy time over one NVLink hop."""
        if nbytes <= 0:
            return 0.0
        return (self.machine_spec.nvlink_copy_overhead
                + nbytes / self.machine_spec.nvlink_bandwidth)

    # -- execution ----------------------------------------------------------------

    def _efficiency(self, kind: LayerKind) -> float:
        if kind is LayerKind.CONV:
            return self.gpu.conv_efficiency
        if kind is LayerKind.ATTENTION:
            # Multi-head attention splits the GEMMs per head and
            # interleaves softmax/masking; well below dense-GEMM
            # efficiency at inference batch sizes.
            return 0.55 * self.gpu.gemm_efficiency
        return self.gpu.gemm_efficiency

    def compute_time(self, layer: LayerSpec, batch_size: int) -> float:
        """Pure arithmetic time, ignoring memory and launch floors."""
        flops = layer.flops_per_item * batch_size
        return flops / (self._efficiency(layer.kind) * self.gpu.peak_flops)

    def exec_inmem(self, layer: LayerSpec, batch_size: int) -> float:
        """Execution time with parameters resident in HBM."""
        hbm_bytes = layer.param_bytes + layer.act_bytes_per_item * batch_size
        hbm_time = hbm_bytes / self.gpu.hbm_bandwidth
        return max(KIND_TIME_FLOOR[layer.kind],
                   self.compute_time(layer, batch_size),
                   hbm_time)

    def dha_bandwidth(self, layer: LayerSpec) -> float:
        """Effective PCIe bandwidth for this layer's zero-copy reads."""
        if layer.kind in KIND_DHA_EFFICIENCY:
            efficiency = KIND_DHA_EFFICIENCY[layer.kind]
        elif layer.gather:
            efficiency = self.gpu.dha_gather_efficiency
        else:
            efficiency = self.gpu.dha_stream_efficiency
        return self.machine_spec.pcie_lane_bandwidth * efficiency

    def exec_dha(self, layer: LayerSpec, batch_size: int,
                 during_load: bool = False) -> float:
        """Execution time with parameters accessed in host memory.

        Activations stay in HBM; only the parameter traffic crosses PCIe,
        overlapped with compute inside the kernel (hence the ``max``).

        With ``during_load=True`` the zero-copy reads fair-share the PCIe
        lane with a concurrently running load stream — the condition the
        profiler's pipelined pre-run measures, and the one that matters
        for planning: a DHA layer executes exactly while later layers are
        being loaded.
        """
        if not layer.loadable:
            return self.exec_inmem(layer, batch_size)
        act_time = (layer.act_bytes_per_item * batch_size
                    / self.gpu.hbm_bandwidth)
        bandwidth = self.dha_bandwidth(layer)
        if during_load:
            bandwidth = min(bandwidth,
                            self.machine_spec.pcie_lane_bandwidth / 2)
        pcie_time = layer.dha_pcie_bytes(batch_size) / bandwidth
        return DHA_KERNEL_PENALTY + max(KIND_TIME_FLOOR[layer.kind],
                                        self.compute_time(layer, batch_size),
                                        act_time + pcie_time)

    # -- aggregate views -------------------------------------------------------------

    def layer_costs(self, layer: LayerSpec, batch_size: int) -> LayerCosts:
        return LayerCosts(
            name=layer.name,
            kind=layer.kind,
            load_time=self.load_time(layer),
            exec_inmem=self.exec_inmem(layer, batch_size),
            exec_dha=self.exec_dha(layer, batch_size),
            load_pcie_bytes=layer.param_bytes,
            dha_pcie_bytes=layer.dha_pcie_bytes(batch_size),
        )

    def model_costs(self, model: ModelSpec, batch_size: int) -> list[LayerCosts]:
        return [self.layer_costs(layer, batch_size) for layer in model.layers]

    def model_exec_inmem(self, model: ModelSpec, batch_size: int) -> float:
        """Warm (fully cached) inference latency for the whole model."""
        return sum(self.exec_inmem(layer, batch_size) for layer in model.layers)

    def model_load_time(self, model: ModelSpec) -> float:
        """Contention-free serial load time for the whole model."""
        return sum(self.load_time(layer) for layer in model.layers)

    # -- PCIe event accounting (paper Table 1) ------------------------------------------

    def pcie_read_events(self, layer: LayerSpec, batch_size: int,
                         method: str) -> int:
        """Number of 64 B PCIe read transactions for ``method``.

        ``method`` is ``"load"`` (copy the parameters) or ``"dha"``
        (zero-copy execution), mirroring the PCIeRdCur counter readings
        in the paper's Table 1.
        """
        if method == "load":
            traffic = layer.param_bytes
        elif method == "dha":
            traffic = layer.dha_pcie_bytes(batch_size)
        else:
            raise ValueError(f"method must be 'load' or 'dha', got {method!r}")
        return -(-traffic // PCIE_PAYLOAD_BYTES)  # ceiling division
