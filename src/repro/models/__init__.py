"""Model zoo and layer cost model.

The paper evaluates eight pre-trained models (Section 5.1): ResNet-50 and
ResNet-101 from TorchVision, and BERT-Base/Large, RoBERTa-Base/Large,
GPT-2 and GPT-2 Medium from HuggingFace Transformers.  This package
rebuilds their exact architectures as sequences of
:class:`~repro.models.layers.LayerSpec` objects — parameter byte sizes,
FLOP counts, and memory-traffic descriptors — which is everything the
cold-start behaviour under study depends on (weight *values* are
irrelevant to provisioning latency).

:mod:`repro.models.costs` turns a layer spec plus a GPU spec into
execution times for the two execution methods the paper compares
(load-then-execute vs direct-host-access), calibrated against the paper's
measured PCIe event counts (Table 1) and latencies (Table 4).
"""

from repro.models.layers import LayerKind, LayerSpec
from repro.models.graph import ModelSpec
from repro.models.costs import CostModel, LayerCosts
from repro.models.zoo import MODEL_NAMES, build_model, model_registry

__all__ = [
    "CostModel",
    "LayerCosts",
    "LayerKind",
    "LayerSpec",
    "MODEL_NAMES",
    "ModelSpec",
    "build_model",
    "model_registry",
]
