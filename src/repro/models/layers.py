"""Layer specifications and their memory-traffic descriptors.

A :class:`LayerSpec` captures what the cold-start study needs to know
about one layer:

* ``param_bytes`` — how much must cross PCIe to *load* the layer;
* ``flops_per_item`` / ``act_bytes_per_item`` — the roofline inputs for
  in-memory execution;
* ``dha_min_bytes`` / ``dha_bytes_per_item`` — how many bytes the layer's
  kernels pull across PCIe when executed by **direct-host-access**
  instead.

The DHA traffic descriptors encode the reuse behaviour the paper measures
with PCIe performance counters (Table 1):

* *embedding* gathers touch only the rows a request uses — ~18.4 K cache
  lines for a 384-token sequence regardless of table size;
* *convolution* re-streams its weights ≈1.8× (tiling spills past L2);
* *fully-connected* re-reads weights once per ~32-token output tile, i.e.
  ≈12× at sequence length 384;
* *LayerNorm* re-reads its (tiny) parameters per token, *BatchNorm* reads
  them once — which is why the paper finds DHA wins for BatchNorm but
  loses for LayerNorm (Section 3.1, "Other layers").

Builder helpers (:func:`conv2d`, :func:`linear`, :func:`embedding`, ...)
derive all descriptors from natural layer shapes so the zoo stays
readable.
"""

from __future__ import annotations

import dataclasses
import enum
import math

__all__ = [
    "LayerKind",
    "LayerSpec",
    "activation",
    "attention",
    "batchnorm2d",
    "conv2d",
    "elementwise",
    "embedding",
    "layernorm",
    "linear",
    "pooling",
]

BYTES_PER_PARAM = 4  # fp32, matching the paper's PyTorch v1.9 deployment

#: Weight re-stream factor for convolutions under DHA.  Paper Table 1:
#: 65,891 / 36,869 = 1.79 (medium conv), 273,487 / 147,465 = 1.85 (large).
CONV_DHA_RESTREAM = 1.8

#: Output-tile height for GEMM weight re-reads under DHA.  Paper Table 1:
#: FC layers show ~12x the load traffic at sequence length 384, i.e. one
#: weight pass per 384/12 = 32 rows of output.
GEMM_TILE_ROWS = 32


class LayerKind(enum.Enum):
    """Layer taxonomy used by the planner and the cost model."""

    EMBEDDING = "embedding"
    CONV = "conv"
    LINEAR = "linear"
    BATCHNORM = "batchnorm"
    LAYERNORM = "layernorm"
    ATTENTION = "attention"
    ACTIVATION = "activation"
    POOLING = "pooling"
    ELEMENTWISE = "elementwise"


@dataclasses.dataclass(frozen=True)
class LayerSpec:
    """One layer of a model, as seen by the provisioning system."""

    name: str
    kind: LayerKind
    #: Parameter footprint; 0 for parameter-free layers (ReLU, softmax...).
    param_bytes: int
    #: FLOPs to execute the layer for one batch item.
    flops_per_item: float
    #: HBM bytes read+written for activations, per batch item.
    act_bytes_per_item: int
    #: PCIe bytes under direct-host-access: ``max(dha_min_bytes,
    #: batch * dha_bytes_per_item)``.
    dha_min_bytes: int
    dha_bytes_per_item: int
    #: True when DHA traffic is scattered (embedding row gathers) rather
    #: than streamed; scattered reads achieve lower PCIe efficiency.
    gather: bool = False

    def __post_init__(self) -> None:
        if self.param_bytes < 0:
            raise ValueError(f"{self.name}: negative param_bytes")
        if self.param_bytes == 0 and (self.dha_min_bytes or self.dha_bytes_per_item):
            raise ValueError(
                f"{self.name}: parameter-free layer cannot have DHA traffic")

    @property
    def loadable(self) -> bool:
        """Whether there is anything to load (or to leave host-side)."""
        return self.param_bytes > 0

    def dha_pcie_bytes(self, batch_size: int) -> int:
        """PCIe bytes the layer's kernels read under DHA at *batch_size*."""
        return max(self.dha_min_bytes, batch_size * self.dha_bytes_per_item)

    def __str__(self) -> str:
        return f"{self.name}[{self.kind.value}, {self.param_bytes}B]"


# ---------------------------------------------------------------------------
# Builder helpers
# ---------------------------------------------------------------------------


def embedding(name: str, vocab_size: int, width: int,
              tokens_per_item: int) -> LayerSpec:
    """A lookup-table embedding gathering *tokens_per_item* rows."""
    param_bytes = vocab_size * width * BYTES_PER_PARAM
    row_bytes = width * BYTES_PER_PARAM
    gathered = tokens_per_item * row_bytes
    return LayerSpec(
        name=name,
        kind=LayerKind.EMBEDDING,
        param_bytes=param_bytes,
        flops_per_item=float(tokens_per_item * width),
        act_bytes_per_item=2 * gathered,  # gather read + output write
        dha_min_bytes=0,
        dha_bytes_per_item=gathered,
        gather=True,
    )


def conv2d(name: str, in_channels: int, out_channels: int, kernel: int,
           out_hw: int, stride: int = 1, bias: bool = False) -> LayerSpec:
    """A 2-D convolution producing an ``out_hw x out_hw`` feature map."""
    del stride  # captured by out_hw; kept for readable call sites
    params = in_channels * out_channels * kernel * kernel
    if bias:
        params += out_channels
    param_bytes = params * BYTES_PER_PARAM
    out_elems = out_channels * out_hw * out_hw
    in_elems = in_channels * (out_hw * out_hw)  # approximate pre-stride map
    flops = 2.0 * kernel * kernel * in_channels * out_elems
    return LayerSpec(
        name=name,
        kind=LayerKind.CONV,
        param_bytes=param_bytes,
        flops_per_item=flops,
        act_bytes_per_item=(in_elems + out_elems) * BYTES_PER_PARAM,
        dha_min_bytes=int(CONV_DHA_RESTREAM * param_bytes),
        dha_bytes_per_item=0,
    )


def linear(name: str, in_features: int, out_features: int,
           tokens_per_item: int = 1, bias: bool = True) -> LayerSpec:
    """A fully-connected layer applied to *tokens_per_item* tokens."""
    params = in_features * out_features + (out_features if bias else 0)
    param_bytes = params * BYTES_PER_PARAM
    flops = 2.0 * in_features * out_features * tokens_per_item
    act = tokens_per_item * (in_features + out_features) * BYTES_PER_PARAM
    tiles_per_item = tokens_per_item / GEMM_TILE_ROWS
    return LayerSpec(
        name=name,
        kind=LayerKind.LINEAR,
        param_bytes=param_bytes,
        flops_per_item=flops,
        act_bytes_per_item=act,
        dha_min_bytes=param_bytes,
        dha_bytes_per_item=int(math.ceil(tiles_per_item * param_bytes)),
    )


def batchnorm2d(name: str, channels: int, hw: int) -> LayerSpec:
    """BatchNorm2d: per-channel affine, parameters read once per pass."""
    param_bytes = 4 * channels * BYTES_PER_PARAM  # weight, bias, mean, var
    elems = channels * hw * hw
    return LayerSpec(
        name=name,
        kind=LayerKind.BATCHNORM,
        param_bytes=param_bytes,
        flops_per_item=4.0 * elems,
        act_bytes_per_item=2 * elems * BYTES_PER_PARAM,
        dha_min_bytes=param_bytes,
        dha_bytes_per_item=0,
    )


def layernorm(name: str, width: int, tokens_per_item: int) -> LayerSpec:
    """LayerNorm: parameters re-read for every token's normalization."""
    param_bytes = 2 * width * BYTES_PER_PARAM
    elems = tokens_per_item * width
    return LayerSpec(
        name=name,
        kind=LayerKind.LAYERNORM,
        param_bytes=param_bytes,
        flops_per_item=8.0 * elems,
        act_bytes_per_item=2 * elems * BYTES_PER_PARAM,
        dha_min_bytes=param_bytes,
        dha_bytes_per_item=tokens_per_item * param_bytes,
    )


def attention(name: str, width: int, heads: int,
              tokens_per_item: int) -> LayerSpec:
    """Scaled-dot-product attention compute (parameter-free).

    Projections are separate :func:`linear` layers; this covers the
    ``QK^T``, softmax and ``AV`` kernels, whose cost grows with the
    square of the sequence length.
    """
    del heads  # head split does not change total FLOPs
    flops = 2.0 * 2.0 * tokens_per_item * tokens_per_item * width
    act = (2 * tokens_per_item * width + tokens_per_item * tokens_per_item) \
        * BYTES_PER_PARAM
    return LayerSpec(
        name=name,
        kind=LayerKind.ATTENTION,
        param_bytes=0,
        flops_per_item=flops,
        act_bytes_per_item=act,
        dha_min_bytes=0,
        dha_bytes_per_item=0,
    )


def activation(name: str, elems_per_item: int) -> LayerSpec:
    """A pointwise activation (ReLU, GELU, softmax...)."""
    return LayerSpec(
        name=name,
        kind=LayerKind.ACTIVATION,
        param_bytes=0,
        flops_per_item=4.0 * elems_per_item,
        act_bytes_per_item=2 * elems_per_item * BYTES_PER_PARAM,
        dha_min_bytes=0,
        dha_bytes_per_item=0,
    )


def pooling(name: str, elems_per_item: int) -> LayerSpec:
    """A pooling layer (max/avg)."""
    return LayerSpec(
        name=name,
        kind=LayerKind.POOLING,
        param_bytes=0,
        flops_per_item=2.0 * elems_per_item,
        act_bytes_per_item=2 * elems_per_item * BYTES_PER_PARAM,
        dha_min_bytes=0,
        dha_bytes_per_item=0,
    )


def elementwise(name: str, elems_per_item: int) -> LayerSpec:
    """A residual add or similar parameter-free elementwise op."""
    return LayerSpec(
        name=name,
        kind=LayerKind.ELEMENTWISE,
        param_bytes=0,
        flops_per_item=float(elems_per_item),
        act_bytes_per_item=3 * elems_per_item * BYTES_PER_PARAM,
        dha_min_bytes=0,
        dha_bytes_per_item=0,
    )
