"""Mixture-of-experts models (paper Section 7, future work).

The paper anticipates extending DeepPlan to MoE models: "all the layers
of the model are not required for a given input because each input needs
to take an expert.  Once we are able to identify the required expert for
a given forward pass, DeepPlan could effectively reduce the time spent
of transferring models."

This module provides:

* :func:`build_moe_transformer` — a GPT-2-style decoder whose FFN is a
  sparsely-gated expert bank (Shazeer et al.'s layout): a small router
  plus ``num_experts`` independent FFNs of which ``top_k`` fire per pass;
* :func:`routed_submodel` — the layer sequence an *identified* forward
  pass actually needs (router + chosen experts only), which existing
  DeepPlan planning/execution machinery consumes unchanged — provisioning
  the submodel instead of the full model is exactly the optimization the
  paper sketches;
* :func:`uniform_routing` — a seeded expert choice for experiments.
"""

from __future__ import annotations

import re
import typing

import numpy

from repro.errors import PlanError
from repro.models.graph import ModelSpec
from repro.models.layers import (
    LayerSpec,
    activation,
    attention,
    elementwise,
    embedding,
    layernorm,
    linear,
)

__all__ = ["build_moe_transformer", "routed_submodel", "uniform_routing",
           "expert_structure"]

_EXPERT_PATTERN = re.compile(r"^h\.(\d+)\.moe\.expert(\d+)\.")


def build_moe_transformer(name: str = "moe-gpt", hidden: int = 768,
                          num_layers: int = 12, heads: int = 12,
                          num_experts: int = 8, top_k: int = 2,
                          vocab_size: int = 50257, seq_len: int = 1024
                          ) -> ModelSpec:
    """A decoder whose per-block FFN is a bank of ``num_experts`` FFNs."""
    if not 1 <= top_k <= num_experts:
        raise PlanError(f"top_k={top_k} must be in [1, {num_experts}]")
    intermediate = hidden * 4
    layers: list[LayerSpec] = [
        embedding("wte", vocab_size, hidden, seq_len),
        embedding("wpe", 1024, hidden, seq_len),
    ]
    for i in range(num_layers):
        prefix = f"h.{i}"
        layers.append(layernorm(f"{prefix}.ln_1", hidden, seq_len))
        layers.append(linear(f"{prefix}.attn.c_attn", hidden, 3 * hidden,
                             seq_len))
        layers.append(attention(f"{prefix}.attn.sdpa", hidden, heads,
                                seq_len))
        layers.append(linear(f"{prefix}.attn.c_proj", hidden, hidden,
                             seq_len))
        layers.append(elementwise(f"{prefix}.attn.add", seq_len * hidden))
        layers.append(layernorm(f"{prefix}.ln_2", hidden, seq_len))
        layers.append(linear(f"{prefix}.moe.router", hidden, num_experts,
                             seq_len))
        expert_tokens = max(1, seq_len * top_k // num_experts)
        for e in range(num_experts):
            layers.append(linear(f"{prefix}.moe.expert{e}.fc1", hidden,
                                 intermediate, expert_tokens))
            layers.append(activation(f"{prefix}.moe.expert{e}.gelu",
                                     expert_tokens * intermediate))
            layers.append(linear(f"{prefix}.moe.expert{e}.fc2", intermediate,
                                 hidden, expert_tokens))
        layers.append(elementwise(f"{prefix}.moe.add", seq_len * hidden))
    layers.append(layernorm("ln_f", hidden, seq_len))
    return ModelSpec(name=name, layers=tuple(layers), seq_len=seq_len,
                     family="moe")


def expert_structure(model: ModelSpec) -> dict[int, set[int]]:
    """Map block index -> expert ids present in *model*."""
    structure: dict[int, set[int]] = {}
    for layer in model.layers:
        match = _EXPERT_PATTERN.match(layer.name)
        if match:
            structure.setdefault(int(match.group(1)),
                                 set()).add(int(match.group(2)))
    return structure


def uniform_routing(model: ModelSpec, top_k: int,
                    seed: int = 0) -> dict[int, frozenset[int]]:
    """Pick ``top_k`` experts per block, uniformly at random (seeded)."""
    rng = numpy.random.default_rng(seed)
    routing = {}
    for block, experts in sorted(expert_structure(model).items()):
        if top_k > len(experts):
            raise PlanError(f"block {block} has {len(experts)} experts; "
                            f"cannot route top_k={top_k}")
        chosen = rng.choice(sorted(experts), size=top_k, replace=False)
        routing[block] = frozenset(int(e) for e in chosen)
    return routing


def routed_submodel(model: ModelSpec,
                    routing: typing.Mapping[int, frozenset[int]]
                    ) -> ModelSpec:
    """The layers one identified forward pass needs.

    Drops every expert layer not selected by *routing*; everything else
    (embeddings, attention, routers) is kept in order.  The result is a
    plain :class:`ModelSpec`, so DeepPlan plans and executes it with no
    special-casing — provisioning it instead of the full model is the
    MoE optimization of the paper's Section 7.
    """
    structure = expert_structure(model)
    if not structure:
        raise PlanError(f"{model.name} has no MoE expert layers")
    unknown = set(routing) - set(structure)
    if unknown:
        raise PlanError(f"routing names unknown blocks: {sorted(unknown)}")

    kept = []
    for layer in model.layers:
        match = _EXPERT_PATTERN.match(layer.name)
        if match:
            block, expert = int(match.group(1)), int(match.group(2))
            chosen = routing.get(block, frozenset())
            if expert not in chosen:
                continue
        kept.append(layer)
    return ModelSpec(name=f"{model.name}@routed", layers=tuple(kept),
                     seq_len=model.seq_len, family=model.family)
