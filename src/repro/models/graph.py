"""Model specifications: an ordered sequence of layers.

The provisioning problem treats a DNN as a *sequence* of layers executed
in order (the view PipeSwitch and DeepPlan share): layer ``i`` may only
execute after layer ``i-1`` finished and after its own parameters are
available (resident on the GPU, or host-pinned for DHA layers).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.models.layers import LayerKind, LayerSpec
from repro.units import MB

__all__ = ["ModelSpec"]


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """An ordered layer sequence plus the input shape it was built for."""

    name: str
    layers: tuple[LayerSpec, ...]
    #: Tokens per batch item (sequence length for NLP, 1 for vision).
    seq_len: int
    #: Free-form family tag ("resnet", "bert", "roberta", "gpt2").
    family: str

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"model {self.name} has no layers")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"model {self.name} has duplicate layers: {dupes}")

    # -- size queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> typing.Iterator[LayerSpec]:
        return iter(self.layers)

    @property
    def param_bytes(self) -> int:
        """Total parameter footprint (what the baseline must transfer)."""
        return sum(layer.param_bytes for layer in self.layers)

    @property
    def param_count(self) -> int:
        return self.param_bytes // 4

    def loadable_indices(self) -> list[int]:
        """Indices of layers with parameters (candidates for load/DHA)."""
        return [i for i, layer in enumerate(self.layers) if layer.loadable]

    def layer_index(self, name: str) -> int:
        for i, layer in enumerate(self.layers):
            if layer.name == name:
                return i
        raise KeyError(f"model {self.name} has no layer {name!r}")

    def layers_of_kind(self, kind: LayerKind) -> list[LayerSpec]:
        return [layer for layer in self.layers if layer.kind is kind]

    # -- reporting --------------------------------------------------------------

    def summary(self) -> str:
        kinds: dict[str, int] = {}
        for layer in self.layers:
            kinds[layer.kind.value] = kinds.get(layer.kind.value, 0) + 1
        breakdown = ", ".join(f"{count} {kind}" for kind, count in
                              sorted(kinds.items()))
        return (f"{self.name}: {len(self.layers)} layers "
                f"({breakdown}), {self.param_bytes / MB:.1f} MB parameters, "
                f"seq_len={self.seq_len}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ModelSpec {self.name}: {len(self.layers)} layers, "
                f"{self.param_bytes / MB:.1f} MB>")
