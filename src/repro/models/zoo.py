"""Builders for the eight models evaluated in the paper (Section 5.1).

Architectures and parameter shapes follow the reference implementations
the paper loads (TorchVision ResNets, HuggingFace BERT/RoBERTa/GPT-2);
tests assert the resulting parameter counts match the published ones
(e.g., BERT-Base ~110 M parameters = 417 MiB fp32, of which the word
embedding is 89.42 MiB — the exact figure in the paper's Table 1).

Sequence lengths default to the paper's benchmark inputs: 384 tokens for
BERT/RoBERTa, 1024 for GPT-2, 224x224 RGB images for ResNet.
"""

from __future__ import annotations

import typing

from repro.models.graph import ModelSpec
from repro.models.layers import (
    LayerSpec,
    activation,
    attention,
    batchnorm2d,
    conv2d,
    elementwise,
    embedding,
    layernorm,
    linear,
    pooling,
)

__all__ = ["MODEL_NAMES", "build_model", "model_registry",
           "build_resnet", "build_bert", "build_gpt2", "microbench_layers"]


# ---------------------------------------------------------------------------
# ResNet (TorchVision resnet50 / resnet101)
# ---------------------------------------------------------------------------


def _bottleneck(layers: list[LayerSpec], prefix: str, in_ch: int, mid_ch: int,
                out_ch: int, hw: int, downsample: bool) -> None:
    """One TorchVision Bottleneck block: 1x1 -> 3x3 -> 1x1 (+ shortcut)."""
    layers.append(conv2d(f"{prefix}.conv1", in_ch, mid_ch, 1, hw))
    layers.append(batchnorm2d(f"{prefix}.bn1", mid_ch, hw))
    layers.append(activation(f"{prefix}.relu1", mid_ch * hw * hw))
    layers.append(conv2d(f"{prefix}.conv2", mid_ch, mid_ch, 3, hw))
    layers.append(batchnorm2d(f"{prefix}.bn2", mid_ch, hw))
    layers.append(activation(f"{prefix}.relu2", mid_ch * hw * hw))
    layers.append(conv2d(f"{prefix}.conv3", mid_ch, out_ch, 1, hw))
    layers.append(batchnorm2d(f"{prefix}.bn3", out_ch, hw))
    if downsample:
        layers.append(conv2d(f"{prefix}.downsample.conv", in_ch, out_ch, 1, hw))
        layers.append(batchnorm2d(f"{prefix}.downsample.bn", out_ch, hw))
    layers.append(elementwise(f"{prefix}.add", out_ch * hw * hw))
    layers.append(activation(f"{prefix}.relu3", out_ch * hw * hw))


def build_resnet(name: str, blocks_per_stage: typing.Sequence[int]) -> ModelSpec:
    """A TorchVision-style ResNet with Bottleneck blocks."""
    layers: list[LayerSpec] = []
    layers.append(conv2d("conv1", 3, 64, 7, 112))
    layers.append(batchnorm2d("bn1", 64, 112))
    layers.append(activation("relu1", 64 * 112 * 112))
    layers.append(pooling("maxpool", 64 * 56 * 56))

    stage_hw = (56, 28, 14, 7)
    stage_mid = (64, 128, 256, 512)
    in_ch = 64
    for stage, n_blocks in enumerate(blocks_per_stage):
        mid = stage_mid[stage]
        out_ch = mid * 4
        hw = stage_hw[stage]
        for block in range(n_blocks):
            prefix = f"layer{stage + 1}.{block}"
            _bottleneck(layers, prefix, in_ch, mid, out_ch, hw,
                        downsample=(block == 0))
            in_ch = out_ch

    layers.append(pooling("avgpool", in_ch * 7 * 7))
    layers.append(linear("fc", in_ch, 1000, tokens_per_item=1))
    return ModelSpec(name=name, layers=tuple(layers), seq_len=1,
                     family="resnet")


# ---------------------------------------------------------------------------
# BERT / RoBERTa (HuggingFace encoder)
# ---------------------------------------------------------------------------


def _encoder_block(layers: list[LayerSpec], prefix: str, hidden: int,
                   heads: int, intermediate: int, seq: int) -> None:
    layers.append(linear(f"{prefix}.attn.q", hidden, hidden, seq))
    layers.append(linear(f"{prefix}.attn.k", hidden, hidden, seq))
    layers.append(linear(f"{prefix}.attn.v", hidden, hidden, seq))
    layers.append(attention(f"{prefix}.attn.sdpa", hidden, heads, seq))
    layers.append(linear(f"{prefix}.attn.out", hidden, hidden, seq))
    layers.append(elementwise(f"{prefix}.attn.add", seq * hidden))
    layers.append(layernorm(f"{prefix}.attn.ln", hidden, seq))
    layers.append(linear(f"{prefix}.ffn.fc1", hidden, intermediate, seq))
    layers.append(activation(f"{prefix}.ffn.gelu", seq * intermediate))
    layers.append(linear(f"{prefix}.ffn.fc2", intermediate, hidden, seq))
    layers.append(elementwise(f"{prefix}.ffn.add", seq * hidden))
    layers.append(layernorm(f"{prefix}.ffn.ln", hidden, seq))


def build_bert(name: str, hidden: int, num_layers: int, heads: int,
               vocab_size: int = 30522, max_position: int = 512,
               type_vocab: int = 2, seq_len: int = 384,
               family: str = "bert") -> ModelSpec:
    """A BERT-style encoder (also used for RoBERTa with its vocab)."""
    intermediate = hidden * 4
    layers: list[LayerSpec] = [
        embedding("embeddings.word", vocab_size, hidden, seq_len),
        embedding("embeddings.position", max_position, hidden, seq_len),
        embedding("embeddings.token_type", type_vocab, hidden, seq_len),
        layernorm("embeddings.ln", hidden, seq_len),
    ]
    for i in range(num_layers):
        _encoder_block(layers, f"encoder.{i}", hidden, heads, intermediate,
                       seq_len)
    layers.append(linear("pooler.dense", hidden, hidden, tokens_per_item=1))
    layers.append(activation("pooler.tanh", hidden))
    return ModelSpec(name=name, layers=tuple(layers), seq_len=seq_len,
                     family=family)


# ---------------------------------------------------------------------------
# GPT-2 (HuggingFace decoder; LM head is weight-tied, so not re-counted)
# ---------------------------------------------------------------------------


def _decoder_block(layers: list[LayerSpec], prefix: str, hidden: int,
                   heads: int, seq: int) -> None:
    intermediate = hidden * 4
    layers.append(layernorm(f"{prefix}.ln_1", hidden, seq))
    layers.append(linear(f"{prefix}.attn.c_attn", hidden, 3 * hidden, seq))
    layers.append(attention(f"{prefix}.attn.sdpa", hidden, heads, seq))
    layers.append(linear(f"{prefix}.attn.c_proj", hidden, hidden, seq))
    layers.append(elementwise(f"{prefix}.attn.add", seq * hidden))
    layers.append(layernorm(f"{prefix}.ln_2", hidden, seq))
    layers.append(linear(f"{prefix}.mlp.c_fc", hidden, intermediate, seq))
    layers.append(activation(f"{prefix}.mlp.gelu", seq * intermediate))
    layers.append(linear(f"{prefix}.mlp.c_proj", intermediate, hidden, seq))
    layers.append(elementwise(f"{prefix}.mlp.add", seq * hidden))


def build_gpt2(name: str, hidden: int, num_layers: int, heads: int,
               vocab_size: int = 50257, max_position: int = 1024,
               seq_len: int = 1024) -> ModelSpec:
    layers: list[LayerSpec] = [
        embedding("wte", vocab_size, hidden, seq_len),
        embedding("wpe", max_position, hidden, seq_len),
    ]
    for i in range(num_layers):
        _decoder_block(layers, f"h.{i}", hidden, heads, seq_len)
    layers.append(layernorm("ln_f", hidden, seq_len))
    return ModelSpec(name=name, layers=tuple(layers), seq_len=seq_len,
                     family="gpt2")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def model_registry() -> dict[str, typing.Callable[[], ModelSpec]]:
    """Name -> builder for the paper's eight benchmark models."""
    return {
        "resnet50": lambda: build_resnet("resnet50", (3, 4, 6, 3)),
        "resnet101": lambda: build_resnet("resnet101", (3, 4, 23, 3)),
        "bert-base": lambda: build_bert("bert-base", 768, 12, 12),
        "bert-large": lambda: build_bert("bert-large", 1024, 24, 16),
        "roberta-base": lambda: build_bert(
            "roberta-base", 768, 12, 12, vocab_size=50265, max_position=514,
            type_vocab=1, family="roberta"),
        "roberta-large": lambda: build_bert(
            "roberta-large", 1024, 24, 16, vocab_size=50265, max_position=514,
            type_vocab=1, family="roberta"),
        "gpt2": lambda: build_gpt2("gpt2", 768, 12, 12),
        "gpt2-medium": lambda: build_gpt2("gpt2-medium", 1024, 24, 16),
    }


MODEL_NAMES: tuple[str, ...] = tuple(model_registry())


def build_model(name: str) -> ModelSpec:
    """Build one of the paper's benchmark models by name."""
    registry = model_registry()
    try:
        return registry[name]()
    except KeyError:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None


# ---------------------------------------------------------------------------
# Microbenchmark layers (Figure 5 / Table 1)
# ---------------------------------------------------------------------------


def microbench_layers() -> dict[str, LayerSpec]:
    """The isolated layers the paper measures in Figure 5 and Table 1.

    Sizes match the paper exactly: the "medium" embedding is BERT-Base's
    position table (1.50 MiB), the "large" one its word table (89.42 MiB);
    the convs are ResNet 3x3 blocks (2.25 / 9.0 MiB); the FCs are
    BERT-Base's attention projection (2.25 MiB) and FFN expansion
    (9.01 MiB) at sequence length 384.
    """
    return {
        "embedding-medium": embedding("emb-medium", 512, 768, 384),
        "embedding-large": embedding("emb-large", 30522, 768, 384),
        "conv-small": conv2d("conv-small", 64, 64, 3, 56),
        "conv-medium": conv2d("conv-medium", 256, 256, 3, 28),
        "conv-large": conv2d("conv-large", 512, 512, 3, 7),
        "fc-small": linear("fc-small", 768, 768, 384, bias=False),
        "fc-large": linear("fc-large", 768, 3072, 384),
        "batchnorm": batchnorm2d("bn", 256, 14),
        "layernorm": layernorm("ln", 768, 384),
    }
