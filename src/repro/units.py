"""Unit helpers.

All simulator times are in **seconds** and sizes in **bytes**.  These
constants keep call sites legible (``3 * MS`` rather than ``0.003``).
"""

from __future__ import annotations

__all__ = ["US", "MS", "SECONDS", "KB", "MB", "GB", "GBPS", "to_ms", "to_us"]

US = 1e-6
MS = 1e-3
SECONDS = 1.0

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024

#: One gigabyte per second, in bytes/second (decimal, matching link specs).
GBPS = 1e9


def to_ms(seconds: float) -> float:
    """Seconds -> milliseconds (for reporting)."""
    return seconds * 1e3


def to_us(seconds: float) -> float:
    """Seconds -> microseconds (for reporting)."""
    return seconds * 1e6
