"""Serving models larger than GPU memory (paper Section 7, future work).

The paper closes by observing that DeepPlan "can allow inferences to
models which are not fit in single GPU memory": instead of pipeline
parallelism across GPUs, keep the overflow layers in pinned host memory
and execute them by direct-host-access — "a cost-effective alternative
for such large models".

:func:`plan_within_budget` implements that: given a GPU memory budget,
it chooses the set of layers to leave host-side so the resident
footprint fits, minimizing the *recurring* warm-inference penalty.  The
greedy criterion is the DHA penalty per byte saved — embeddings (huge,
nearly free to serve host-side) go first, dense GEMM weights last —
which is optimal for this knapsack-like relaxation in the common regime
where penalties scale with traffic.
"""

from __future__ import annotations

from repro.core.plan import ExecMethod, ExecutionPlan, Partition
from repro.errors import PlanError
from repro.models.costs import CostModel
from repro.models.graph import ModelSpec

__all__ = ["plan_within_budget", "warm_latency"]


def plan_within_budget(cost_model: CostModel, model: ModelSpec,
                       memory_budget: int, batch_size: int = 1,
                       strategy_name: str = "dha-budget") -> ExecutionPlan:
    """Plan *model* so its resident footprint fits *memory_budget* bytes.

    Layers move host-side cheapest-penalty-per-byte first.  Raises
    :class:`PlanError` if even an all-DHA plan exceeds the budget (the
    model's parameter-free working set is out of scope here).
    """
    if memory_budget < 0:
        raise PlanError(f"memory budget must be >= 0, got {memory_budget}")

    decisions = [ExecMethod.LOAD if layer.loadable else ExecMethod.DHA
                 for layer in model.layers]
    resident = model.param_bytes

    if resident > memory_budget:
        candidates = sorted(
            model.loadable_indices(),
            key=lambda i: _penalty_per_byte(cost_model, model, i, batch_size))
        for i in candidates:
            if resident <= memory_budget:
                break
            decisions[i] = ExecMethod.DHA
            resident -= model.layers[i].param_bytes
        if resident > memory_budget:
            raise PlanError(
                f"{model.name} cannot fit {memory_budget} bytes even with "
                f"every layer host-side")

    plan = ExecutionPlan(
        model=model,
        batch_size=batch_size,
        decisions=tuple(decisions),
        partitions=(Partition(index=0, start=0, stop=len(model.layers)),),
        strategy=strategy_name,
        machine_name=cost_model.machine_spec.name,
    )
    return plan


def warm_latency(cost_model: CostModel, plan: ExecutionPlan) -> float:
    """Steady-state inference latency of a (possibly budgeted) plan.

    Loaded layers execute from HBM; host-side layers pay their DHA cost
    on every inference.
    """
    total = 0.0
    for i, layer in enumerate(plan.model.layers):
        if layer.loadable and plan.method(i) is ExecMethod.DHA:
            total += cost_model.exec_dha(layer, plan.batch_size)
        else:
            total += cost_model.exec_inmem(layer, plan.batch_size)
    return total


def _penalty_per_byte(cost_model: CostModel, model: ModelSpec, index: int,
                      batch_size: int) -> float:
    """Warm-latency cost of moving layer *index* host-side, per byte."""
    layer = model.layers[index]
    penalty = (cost_model.exec_dha(layer, batch_size)
               - cost_model.exec_inmem(layer, batch_size))
    return penalty / layer.param_bytes
