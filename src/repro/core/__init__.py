"""DeepPlan: the paper's primary contribution.

Pipeline (paper Figure 10):

1. :class:`~repro.core.profiler.LayerProfiler` measures per-layer load
   time and execution time under both methods (in-memory vs DHA) with
   repeated pre-runs — a one-time step per model and machine.
2. :class:`~repro.core.planner.LayerExecutionPlanner` runs **Algorithm 1**
   over the profile, converting layers to direct-host-access where that
   removes pipeline stalls.
3. :mod:`~repro.core.partitioner` splits the model across GPUs for
   parallel transmission, respecting PCIe-switch topology and NVLink
   reachability, and overrides partitions >= 2 to plain loads.
4. The resulting :class:`~repro.core.plan.ExecutionPlan` is consumed by
   :mod:`repro.engine` at serving time.

:class:`~repro.core.deepplan.DeepPlan` is the user-facing facade tying
the steps together.
"""

from repro.core.plan import ExecMethod, ExecutionPlan, Partition
from repro.core.plan_cache import PlanCache, plan_cache_key
from repro.core.serialization import load_plan, save_plan
from repro.core.profiler import LayerProfiler, ProfileReport
from repro.core.stall import (
    LayerTiming,
    Timeline,
    TimelineMemo,
    baseline_latency,
    warm_latency,
)
from repro.core.planner import LayerExecutionPlanner, initial_approach
from repro.core.partitioner import choose_secondary_gpus, partition_model
from repro.core.deepplan import DeepPlan, Strategy
from repro.core.validate import PlanValidationError, validate_plan_on_machine

__all__ = [
    "DeepPlan",
    "ExecMethod",
    "ExecutionPlan",
    "LayerExecutionPlanner",
    "LayerProfiler",
    "LayerTiming",
    "Partition",
    "PlanCache",
    "PlanValidationError",
    "ProfileReport",
    "Strategy",
    "Timeline",
    "TimelineMemo",
    "baseline_latency",
    "plan_cache_key",
    "choose_secondary_gpus",
    "initial_approach",
    "load_plan",
    "partition_model",
    "save_plan",
    "validate_plan_on_machine",
    "warm_latency",
]
