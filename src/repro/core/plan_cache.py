"""Keyed cache of generated execution plans.

Planning is deterministic: the plan for a model depends only on the model
architecture, the machine topology, the planner's calibration knobs, and
the requested strategy/batch/GPU count.  Serving and cluster simulations
re-plan the same handful of models hundreds of times (every server, every
machine, every strategy sweep), so :class:`DeepPlan` consults a
:class:`PlanCache` keyed on exactly those determinants.

The key is explicit rather than "the planner instance" so one cache can
be shared across planners: two planners with the same machine spec and
calibration hit each other's entries, while changing any determinant —
a different machine preset, noise, seed, iteration count, strategy,
batch size or partition count — misses by construction.
"""

from __future__ import annotations

import typing

from repro.core.plan import ExecutionPlan
from repro.hw.specs import MachineSpec
from repro.models.graph import ModelSpec

__all__ = ["PlanCache", "plan_cache_key"]

#: model fingerprint x machine spec x planner calibration x plan request.
PlanKey = tuple


def plan_cache_key(model: ModelSpec, machine_spec: MachineSpec,
                   calibration: tuple[int, float, int], strategy: str,
                   batch_size: int, num_partitions: int) -> PlanKey:
    """Build the cache key for one planning request.

    The model is fingerprinted by name, layer count and total parameter
    bytes — models built from the zoo (or the audit layer's seeded random
    generator) that agree on all three are architecturally identical for
    planning purposes.  ``calibration`` is the profiler's
    ``(iterations, noise, seed)`` triple; ``num_partitions`` is
    the *resolved* partition count, so ``num_gpus=None`` and an explicit
    matching count share an entry.
    """
    return (model.name, len(model.layers), model.param_bytes,
            machine_spec, calibration, strategy, batch_size, num_partitions)


class PlanCache:
    """An unbounded plan cache with hit/miss accounting.

    Unbounded is deliberate: entries are one per (model, strategy, batch,
    machine) combination, a small set in every workload the simulator
    runs — the win is skipping re-planning, not bounding memory.
    """

    def __init__(self) -> None:
        self._plans: dict[PlanKey, ExecutionPlan] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, key: PlanKey) -> ExecutionPlan | None:
        """Look up *key*, counting the hit or miss."""
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
        else:
            self.hits += 1
        return plan

    def put(self, key: PlanKey, plan: ExecutionPlan) -> None:
        self._plans[key] = plan

    def clear(self) -> None:
        """Drop all entries (counters are kept; they describe history)."""
        self._plans.clear()

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._plans)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PlanCache {len(self._plans)} entries, "
                f"{self.hits} hits / {self.misses} misses>")


def resolve_plan_cache(plan_cache: "PlanCache | None | bool"
                       ) -> PlanCache | None:
    """Normalize a ``DeepPlan(plan_cache=...)`` argument.

    ``None`` means "default": a private cache when the fast path is on,
    no cache otherwise.  ``False`` disables caching explicitly; ``True``
    forces a private cache; a :class:`PlanCache` instance is used as-is
    (the sharing idiom).
    """
    from repro import fastpath

    if plan_cache is None:
        return PlanCache() if fastpath.enabled() else None
    if plan_cache is False:
        return None
    if plan_cache is True:
        return PlanCache()
    return typing.cast(PlanCache, plan_cache)
