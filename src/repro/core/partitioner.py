"""Model transmission planning: partitioning and GPU selection.

Paper Section 4.3.3: for parallel transmission the model is split into
*size-balanced contiguous* partitions, one per participating GPU; the
secondary GPUs must (1) sit on a different PCIe switch than the primary —
two GPUs behind one switch halve each other's host bandwidth (Table 2) —
and (2) be NVLink-connected to the primary so partitions can be merged.
On the paper's p3.8xlarge (two switches, two GPUs each) this caps
parallel transmission at two GPUs per model.
"""

from __future__ import annotations

from repro.core.plan import Partition
from repro.errors import PlanError
from repro.hw.machine import Machine
from repro.models.graph import ModelSpec

__all__ = ["partition_model", "choose_secondary_gpus", "max_partitions"]


def partition_model(model: ModelSpec, num_partitions: int) -> tuple[Partition, ...]:
    """Split *model* into contiguous partitions balanced by byte size.

    The boundary after partition ``p`` is placed at the first layer where
    the cumulative parameter size reaches ``(p+1)/k`` of the total — the
    "divide evenly in terms of size" rule from Section 3.2.
    """
    n = len(model.layers)
    if num_partitions < 1:
        raise PlanError(f"need at least one partition, got {num_partitions}")
    if num_partitions > n:
        raise PlanError(
            f"cannot split {n} layers into {num_partitions} partitions")
    if num_partitions == 1:
        return (Partition(index=0, start=0, stop=n),)

    total = model.param_bytes
    if total == 0:
        raise PlanError(f"model {model.name} has no parameters to partition")

    boundaries = [0]
    cumulative = 0
    target_index = 1
    for i, layer in enumerate(model.layers):
        cumulative += layer.param_bytes
        threshold = total * target_index / num_partitions
        if cumulative >= threshold and target_index < num_partitions:
            # Keep at least one layer per remaining partition.
            stop = min(i + 1, n - (num_partitions - target_index))
            stop = max(stop, boundaries[-1] + 1)
            boundaries.append(stop)
            target_index += 1
    while len(boundaries) < num_partitions:
        boundaries.append(boundaries[-1] + 1)
    boundaries.append(n)

    return tuple(Partition(index=p, start=boundaries[p], stop=boundaries[p + 1])
                 for p in range(num_partitions))


def choose_secondary_gpus(machine: Machine, primary: int,
                          max_secondaries: int) -> list[int]:
    """Pick secondary GPUs for parallel transmission from *primary*.

    Only GPUs on other PCIe switches with an NVLink path qualify; at most
    one secondary per other switch is used, since two secondaries behind
    one switch would contend with each other.  Among a switch's GPUs, the
    one sharing the primary's within-switch rank is preferred, so the
    pairing is collision-free fleet-wide (on p3.8xlarge: 0<->2, 1<->3 —
    two simultaneous parallel transmissions never borrow the same lane).
    """
    if max_secondaries < 0:
        raise PlanError(f"max_secondaries must be >= 0, got {max_secondaries}")
    if max_secondaries == 0:
        return []
    primary_rank = _switch_rank(machine, primary)
    candidates = sorted(
        machine.parallel_transmission_peers(primary),
        key=lambda g: (_switch_rank(machine, g) != primary_rank, g))
    chosen: list[int] = []
    used_switches = {machine.switch_of(primary)}
    for candidate in candidates:
        switch = machine.switch_of(candidate)
        if switch in used_switches:
            continue
        chosen.append(candidate)
        used_switches.add(switch)
        if len(chosen) >= max_secondaries:
            break
    return chosen


def _switch_rank(machine: Machine, gpu: int) -> int:
    """Position of *gpu* within its PCIe switch group."""
    group = machine.spec.pcie_switch_groups[machine.switch_of(gpu)]
    return group.index(gpu)


def max_partitions(machine: Machine, primary: int = 0) -> int:
    """How many partitions parallel transmission supports on *machine*."""
    return 1 + len(choose_secondary_gpus(machine, primary,
                                         max_secondaries=machine.gpu_count))
