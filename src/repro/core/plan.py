"""Execution plans: per-layer method decisions plus partitioning.

An :class:`ExecutionPlan` is DeepPlan's output artifact (paper Figure 10,
step 4): for every layer, whether to **load** it into GPU memory or
execute it by **direct-host-access**; and, when parallel transmission is
enabled, which contiguous partition (and therefore which GPU's PCIe lane)
carries it.

Plan invariants enforced here mirror the paper's design:

* parameter-free layers have nothing to load — they are always DHA
  (marked "X" in the paper's Table 3);
* DHA only ever applies to the *first* partition: parallel transmission
  overrides later partitions to loads (Section 4.3.3);
* partitions are contiguous, ordered, and cover the whole model.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.errors import PlanError
from repro.models.graph import ModelSpec
from repro.units import MB

__all__ = ["ExecMethod", "Partition", "ExecutionPlan"]


class ExecMethod(enum.Enum):
    """How one layer's parameters reach its kernels."""

    #: Copy parameters to GPU memory, then execute ("O" in Table 3).
    LOAD = "load"
    #: Execute reading pinned host memory over PCIe ("X" in Table 3).
    DHA = "dha"


@dataclasses.dataclass(frozen=True)
class Partition:
    """A contiguous slice of layers transmitted over one GPU's PCIe lane."""

    #: Position in the transmission order; 0 is the primary partition.
    index: int
    #: Layer index range [start, stop).
    start: int
    stop: int

    def __contains__(self, layer_index: int) -> bool:
        return self.start <= layer_index < self.stop

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def is_primary(self) -> bool:
        return self.index == 0


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """DeepPlan's deployable artifact for one (model, machine) pair."""

    model: ModelSpec
    batch_size: int
    decisions: tuple[ExecMethod, ...]
    partitions: tuple[Partition, ...]
    #: Human-readable strategy tag ("baseline", "pipeswitch", "dha", ...).
    strategy: str
    #: Machine preset the plan was generated for.
    machine_name: str
    #: Planner-predicted cold-start latency (contention-free), seconds.
    predicted_latency: float = 0.0
    #: Planner-predicted warm-hit latency (instance already resident),
    #: seconds.  ``provision_penalty`` derives the routing signal.
    predicted_warm_latency: float = 0.0
    #: Precomputed degraded-mode plan: single-partition and DHA-heavy, so
    #: it needs no peer GPUs or NVLink.  The serving layer retries an
    #: aborted parallel provision on this plan instead of dropping the
    #: request.  ``None`` when no fallback was requested.
    fallback: "ExecutionPlan | None" = None

    def __post_init__(self) -> None:
        self._validate()

    @property
    def provision_penalty(self) -> float:
        """Predicted extra latency of a cold start over a warm hit.

        This is the cost a cluster router weighs when deciding whether to
        spill a request to a machine where the instance is not resident:
        a warm replica with more than ``provision_penalty`` of queued work
        loses to an idle cold one.
        """
        return max(0.0, self.predicted_latency - self.predicted_warm_latency)

    def _validate(self) -> None:
        if len(self.decisions) != len(self.model.layers):
            raise PlanError(
                f"plan for {self.model.name} has {len(self.decisions)} "
                f"decisions for {len(self.model.layers)} layers")
        if not self.partitions:
            raise PlanError("plan needs at least one partition")
        expected_start = 0
        for index, partition in enumerate(self.partitions):
            if partition.index != index:
                raise PlanError(f"partition {partition} out of order")
            if partition.start != expected_start or len(partition) <= 0:
                raise PlanError(
                    f"partitions must be contiguous and non-empty; "
                    f"partition {index} spans [{partition.start}, "
                    f"{partition.stop})")
            expected_start = partition.stop
        if expected_start != len(self.model.layers):
            raise PlanError(
                f"partitions cover {expected_start} of "
                f"{len(self.model.layers)} layers")
        for i, (layer, method) in enumerate(zip(self.model.layers,
                                                self.decisions)):
            if not layer.loadable and method is not ExecMethod.DHA:
                raise PlanError(
                    f"layer {layer.name} has no parameters and cannot be "
                    f"loaded")
            if (method is ExecMethod.DHA and layer.loadable
                    and self.partition_of(i) != 0):
                raise PlanError(
                    f"layer {layer.name} uses DHA in partition "
                    f"{self.partition_of(i)}; DHA is only valid in the "
                    f"first partition")
        if self.fallback is not None:
            if self.fallback.uses_parallel_transmission:
                raise PlanError(
                    "a degraded fallback plan must be single-partition "
                    f"(got {self.fallback.num_partitions} partitions)")
            if self.fallback.model.name != self.model.name:
                raise PlanError(
                    f"fallback plan is for {self.fallback.model.name}, "
                    f"not {self.model.name}")
            if self.fallback.batch_size != self.batch_size:
                raise PlanError(
                    f"fallback plan batch size {self.fallback.batch_size} "
                    f"!= {self.batch_size}")

    # -- lookups ----------------------------------------------------------------

    def method(self, layer_index: int) -> ExecMethod:
        return self.decisions[layer_index]

    def partition_of(self, layer_index: int) -> int:
        for partition in self.partitions:
            if layer_index in partition:
                return partition.index
        raise PlanError(f"layer index {layer_index} outside all partitions")

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def uses_parallel_transmission(self) -> bool:
        return len(self.partitions) > 1

    def loaded_indices(self) -> list[int]:
        """Layers whose parameters are copied to the GPU.

        Plans are immutable, and the serving system asks this per request,
        so the answer is computed once and cached (writing through
        ``__dict__`` — the dataclass is frozen, not slotted).  Callers
        must treat the returned list as read-only.
        """
        cached = self.__dict__.get("_loaded_indices")
        if cached is None:
            cached = [i for i, (layer, method)
                      in enumerate(zip(self.model.layers, self.decisions))
                      if layer.loadable and method is ExecMethod.LOAD]
            self.__dict__["_loaded_indices"] = cached
        return cached

    def dha_indices(self) -> list[int]:
        """Layers with parameters left host-resident for DHA."""
        return [i for i, (layer, method)
                in enumerate(zip(self.model.layers, self.decisions))
                if layer.loadable and method is ExecMethod.DHA]

    def loaded_indices_in(self, partition_index: int) -> list[int]:
        cached = self.__dict__.get("_loaded_indices_in")
        if cached is None:
            cached = self.__dict__["_loaded_indices_in"] = {}
        indices = cached.get(partition_index)
        if indices is None:
            partition = self.partitions[partition_index]
            indices = cached[partition_index] = [
                i for i in self.loaded_indices() if i in partition]
        return indices

    # -- footprints --------------------------------------------------------------

    @property
    def gpu_resident_bytes(self) -> int:
        """GPU memory the provisioned model occupies (loaded layers only).

        DHA layers stay in host memory — this is why DeepPlan packs more
        instances per GPU than PipeSwitch (paper Figure 13: 124 vs 100
        BERT-Base instances across four V100s).
        """
        cached = self.__dict__.get("_gpu_resident_bytes")
        if cached is None:
            cached = sum(self.model.layers[i].param_bytes
                         for i in self.loaded_indices())
            self.__dict__["_gpu_resident_bytes"] = cached
        return cached

    @property
    def host_resident_bytes(self) -> int:
        """Parameter bytes served from pinned host memory (DHA layers)."""
        return sum(self.model.layers[i].param_bytes
                   for i in self.dha_indices())

    def partition_load_bytes(self, partition_index: int) -> int:
        """Bytes transmitted over the lane serving ``partition_index``."""
        return sum(self.model.layers[i].param_bytes
                   for i in self.loaded_indices_in(partition_index))

    # -- reporting ---------------------------------------------------------------

    def table3_row(self, layer_indices: typing.Sequence[int]) -> str:
        """Render decisions as the paper's Table 3 does (O: load, X: DHA)."""
        marks = ["O" if self.decisions[i] is ExecMethod.LOAD else "X"
                 for i in layer_indices]
        return " ".join(marks)

    def summary(self) -> str:
        loaded = self.loaded_indices()
        dha = self.dha_indices()
        lines = [
            f"plan[{self.strategy}] for {self.model.name} on "
            f"{self.machine_name} (batch {self.batch_size})",
            f"  partitions: {self.num_partitions} "
            + " ".join(f"[{p.start}:{p.stop})" for p in self.partitions),
            f"  loaded layers: {len(loaded)} "
            f"({self.gpu_resident_bytes / MB:.1f} MiB)",
            f"  dha layers: {len(dha)} "
            f"({self.host_resident_bytes / MB:.1f} MiB stay host-side)",
            f"  predicted cold-start latency: "
            f"{self.predicted_latency * 1e3:.2f} ms",
        ]
        return "\n".join(lines)
