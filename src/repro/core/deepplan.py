"""The DeepPlan facade: profile -> plan -> deployable artifact.

This is the tool of paper Figure 10.  Give it a machine preset and a
model, pick one of the five execution strategies the paper evaluates
(Section 5.1), and it returns an :class:`~repro.core.plan.ExecutionPlan`
ready for :mod:`repro.engine`:

* ``baseline`` — load the whole model, then execute (Figure 1b);
* ``pipeswitch`` — layer-pipelined loading, everything loaded (Figure 1c,
  the state of the art the paper compares against);
* ``dha`` — pipelined loading with Algorithm 1's direct-host-access
  conversions (Figure 1d);
* ``pt`` — parallel transmission across GPUs, everything loaded
  (Figure 1e);
* ``pt+dha`` — both combined (the paper's headline configuration).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.core.partitioner import (
    choose_secondary_gpus,
    max_partitions,
    partition_model,
)
from repro.core.plan import ExecutionPlan, Partition
from repro.core.plan_cache import PlanCache, plan_cache_key, resolve_plan_cache
from repro.core.planner import LayerExecutionPlanner
from repro.core.profiler import LayerProfiler, ProfileReport
from repro.core.stall import baseline_latency, compute_timeline, warm_latency
from repro.errors import PlanError
from repro.hw.machine import Machine
from repro.hw.specs import MachineSpec
from repro.models.costs import CostModel
from repro.models.graph import ModelSpec
from repro.simkit import Simulator

__all__ = ["DeepPlan", "Strategy"]


class Strategy(enum.Enum):
    """The five execution options of the paper's evaluation."""

    BASELINE = "baseline"
    PIPESWITCH = "pipeswitch"
    DHA = "dha"
    PT = "pt"
    PT_DHA = "pt+dha"

    @classmethod
    def parse(cls, value: "Strategy | str") -> "Strategy":
        if isinstance(value, Strategy):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            options = ", ".join(s.value for s in cls)
            raise PlanError(
                f"unknown strategy {value!r}; options: {options}") from None

    @property
    def uses_dha(self) -> bool:
        return self in (Strategy.DHA, Strategy.PT_DHA)

    @property
    def uses_parallel_transmission(self) -> bool:
        return self in (Strategy.PT, Strategy.PT_DHA)


class DeepPlan:
    """Generates execution plans for one machine preset."""

    def __init__(self, machine_spec: MachineSpec, iterations: int = 10,
                 noise: float = 0.01, seed: int = 0,
                 plan_cache: "PlanCache | None | bool" = None) -> None:
        self.machine_spec = machine_spec
        self.cost_model = CostModel(machine_spec)
        self.profiler = LayerProfiler(self.cost_model, iterations=iterations,
                                      noise=noise, seed=seed)
        # A throwaway machine instance answers topology questions; plans
        # are machine-shape-specific, not simulator-instance-specific.
        self._topology = Machine(Simulator(), machine_spec)
        self._profiles: dict[tuple[str, int], ProfileReport] = {}
        #: Everything that (besides the model and the plan request) can
        #: change a generated plan — part of the plan-cache key.
        self._calibration = (iterations, float(noise), seed)
        #: Keyed plan cache; ``None``, ``True``/``False`` or a shared
        #: :class:`PlanCache` (see :func:`resolve_plan_cache`).
        self.plan_cache = resolve_plan_cache(plan_cache)

    # -- profiling ---------------------------------------------------------------

    def profile(self, model: ModelSpec, batch_size: int = 1) -> ProfileReport:
        """Profile (or fetch the cached profile of) *model*."""
        key = (model.name, batch_size)
        if key not in self._profiles:
            self._profiles[key] = self.profiler.profile(model, batch_size)
        return self._profiles[key]

    # -- planning ------------------------------------------------------------------

    def plan(self, model: ModelSpec, strategy: "Strategy | str" = Strategy.PT_DHA,
             batch_size: int = 1, num_gpus: int | None = None,
             with_fallback: bool = False) -> ExecutionPlan:
        """Generate the execution plan for *model* under *strategy*.

        ``num_gpus`` is the number of GPUs participating in parallel
        transmission (primary included); it defaults to what the machine
        topology supports, capped at 2 as the paper does on p3.8xlarge.
        ``with_fallback`` attaches a precomputed degraded-mode plan
        (single-partition DHA) to parallel-transmission plans, for serving
        setups that must survive peer-GPU or NVLink faults mid-provision.
        """
        strategy = Strategy.parse(strategy)
        if strategy.uses_parallel_transmission:
            num_partitions = self._partition_count(num_gpus)
        else:
            num_partitions = 1
        want_fallback = with_fallback and num_partitions > 1
        cache = self.plan_cache
        if cache is not None:
            key = plan_cache_key(model, self.machine_spec, self._calibration,
                                 strategy.value, batch_size, num_partitions)
            cached = cache.get(key)
            if cached is not None:
                if not want_fallback or cached.fallback is not None:
                    return cached
                # Upgrade the cached entry in place: same plan, plus the
                # degraded fallback future lookups will want too.
                upgraded = dataclasses.replace(
                    cached,
                    fallback=self.plan(model, Strategy.DHA,
                                       batch_size=batch_size))
                cache.put(key, upgraded)
                return upgraded
        profile = self.profile(model, batch_size)
        costs = profile.layers

        if num_partitions > 1:
            partitions = partition_model(model, num_partitions)
        else:
            partitions = (Partition(index=0, start=0, stop=len(model.layers)),)

        nvlink_time = self.cost_model.nvlink_time
        planner = LayerExecutionPlanner(costs, partitions, nvlink_time)
        if strategy.uses_dha:
            decisions = planner.plan()
        else:
            decisions = planner.all_loaded()

        if strategy is Strategy.BASELINE:
            predicted = baseline_latency(costs)
        else:
            predicted = compute_timeline(costs, decisions, partitions,
                                         nvlink_time).total_latency

        plan = ExecutionPlan(
            model=model,
            batch_size=batch_size,
            decisions=tuple(decisions),
            partitions=partitions,
            strategy=strategy.value,
            machine_name=self.machine_spec.name,
            predicted_latency=predicted,
            predicted_warm_latency=warm_latency(costs, decisions),
            fallback=(self.plan(model, Strategy.DHA, batch_size=batch_size)
                      if want_fallback else None),
        )
        if cache is not None:
            cache.put(key, plan)
        return plan

    def provision_penalty(self, model: ModelSpec,
                          strategy: "Strategy | str" = Strategy.PT_DHA,
                          batch_size: int = 1) -> float:
        """Predicted cold-start cost over a warm hit, as a routing signal.

        Cluster routers use this to decide when spilling a request to a
        machine that must first provision the model beats queueing behind
        a warm replica's backlog.
        """
        return self.plan(model, strategy, batch_size).provision_penalty

    def best_plan(self, model: ModelSpec, batch_size: int = 1) -> ExecutionPlan:
        """The plan with the lowest predicted cold-start latency.

        The paper's tool "automatically generates an inference execution
        plan ... minimizing the inference latency"; this compares every
        non-baseline strategy the machine supports and returns the
        winner (usually PT+DHA, but e.g. pure DHA for embedding-dominated
        models where parallel transmission's NVLink hop only adds cost).
        """
        candidates = [Strategy.PIPESWITCH, Strategy.DHA]
        if max_partitions(self._topology) > 1:
            candidates += [Strategy.PT, Strategy.PT_DHA]
        plans = [self.plan(model, strategy, batch_size=batch_size)
                 for strategy in candidates]
        return min(plans, key=lambda plan: plan.predicted_latency)

    def _partition_count(self, num_gpus: int | None) -> int:
        supported = max_partitions(self._topology)
        if num_gpus is None:
            return min(2, supported)
        if num_gpus < 2:
            raise PlanError(
                f"parallel transmission needs >= 2 GPUs, got {num_gpus}")
        if num_gpus > supported:
            raise PlanError(
                f"machine {self.machine_spec.name} supports at most "
                f"{supported} GPUs for parallel transmission "
                f"(PCIe-switch and NVLink constraints); got {num_gpus}")
        return num_gpus

    # -- deployment helpers ---------------------------------------------------------

    def secondary_gpus(self, primary: int, plan: ExecutionPlan) -> list[int]:
        """Which GPUs carry the plan's secondary partitions from *primary*."""
        needed = plan.num_partitions - 1
        chosen = choose_secondary_gpus(self._topology, primary, needed)
        if len(chosen) < needed:
            raise PlanError(
                f"no eligible secondary GPUs from gpu{primary} for "
                f"{plan.num_partitions}-way parallel transmission")
        return chosen
