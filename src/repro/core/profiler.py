"""Layer profiler: the one-time pre-run that feeds the planner.

Paper Section 4.3.1: before deploying a model to a new kind of server,
DeepPlan measures, for every layer, (1) execution time with
direct-host-access, (2) execution time in GPU memory, and (3) the time to
load the layer host->GPU — averaged over several iterations for stable
results (the paper uses 10, Table 5).

On real hardware these are wall-clock measurements; here each
"measurement" samples the calibrated cost model with small multiplicative
measurement noise, and the *profiling cost itself* is accounted the same
way the paper reports it (Table 5: time spent in the DHA, in-memory, and
layer-load pre-runs).
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.models.costs import CostModel, LayerCosts
from repro.models.graph import ModelSpec
from repro.units import MS

__all__ = ["LayerProfiler", "ProfileReport"]

#: Per-layer, per-iteration fixed cost of the profiling harness itself
#: (timer sync, allocation, host-pinning) — this, not the measured kernel
#: time, dominates the profiling budgets in the paper's Table 5.
PROFILE_HARNESS_OVERHEAD = 2.5 * MS


@dataclasses.dataclass(frozen=True)
class ProfileReport:
    """Averaged per-layer measurements plus the cost of obtaining them."""

    model_name: str
    batch_size: int
    iterations: int
    layers: tuple[LayerCosts, ...]
    #: Simulated wall-clock spent in each pre-run phase (paper Table 5).
    time_dha: float
    time_inmem: float
    time_load: float

    @property
    def total_time(self) -> float:
        return self.time_dha + self.time_inmem + self.time_load

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> typing.Iterator[LayerCosts]:
        return iter(self.layers)


class LayerProfiler:
    """Produces :class:`ProfileReport` objects for (model, machine) pairs."""

    def __init__(self, cost_model: CostModel, iterations: int = 10,
                 noise: float = 0.01, seed: int = 0) -> None:
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        self.cost_model = cost_model
        self.iterations = iterations
        self.noise = noise
        self._rng = numpy.random.default_rng(seed)

    def profile(self, model: ModelSpec, batch_size: int = 1) -> ProfileReport:
        """Run the pre-runs for *model* and average the measurements."""
        measured: list[LayerCosts] = []
        time_dha = time_inmem = time_load = 0.0
        for layer in model.layers:
            truth = self.cost_model.layer_costs(layer, batch_size)
            # The pre-run pipelines loading with execution, so the DHA
            # measurement sees zero-copy reads sharing the PCIe lane with
            # the load stream — the condition a deployed plan runs under.
            exec_dha = self._measure(
                self.cost_model.exec_dha(layer, batch_size, during_load=True))
            exec_inmem = self._measure(truth.exec_inmem)
            load_time = self._measure(truth.load_time)
            if (exec_dha == truth.exec_dha
                    and exec_inmem == truth.exec_inmem
                    and load_time == truth.load_time):
                # Noise-free profile (or zero-cost layer): the truth
                # object already is the measurement — skip the copy.
                measured.append(truth)
            else:
                measured.append(dataclasses.replace(
                    truth, exec_dha=exec_dha, exec_inmem=exec_inmem,
                    load_time=load_time))
            harness = self.iterations * PROFILE_HARNESS_OVERHEAD
            time_dha += self.iterations * exec_dha + harness
            time_inmem += self.iterations * exec_inmem + harness
            time_load += self.iterations * load_time + harness
        return ProfileReport(
            model_name=model.name,
            batch_size=batch_size,
            iterations=self.iterations,
            layers=tuple(measured),
            time_dha=time_dha,
            time_inmem=time_inmem,
            time_load=time_load,
        )

    def _measure(self, true_value: float) -> float:
        """Average of ``iterations`` noisy samples of *true_value*."""
        if true_value == 0.0 or self.noise == 0.0:
            return true_value
        factors = self._rng.lognormal(mean=0.0, sigma=self.noise,
                                      size=self.iterations)
        return float(true_value * factors.mean())
