"""Deployment-time validation of execution plans against a machine.

An :class:`~repro.core.plan.ExecutionPlan` validates its own internal
invariants on construction; this module checks the *external* ones — the
plan has to be executable on a concrete machine:

* the resident footprint must fit a GPU's usable memory;
* every secondary partition must fit the staging area (workspace) of a
  secondary GPU;
* the partition count must not exceed what the machine's PCIe/NVLink
  topology supports;
* a parallel-transmission plan needs an eligible cross-switch secondary
  for every primary it may be homed on.

The serving system runs these checks at ``deploy()`` so misconfiguration
surfaces immediately instead of as a mid-trace failure.
"""

from __future__ import annotations

from repro.core.partitioner import choose_secondary_gpus, max_partitions
from repro.core.plan import ExecutionPlan
from repro.errors import PlanError
from repro.hw.machine import Machine
from repro.units import MB

__all__ = ["validate_plan_on_machine", "PlanValidationError"]


class PlanValidationError(PlanError):
    """A plan cannot be deployed on the given machine."""


def validate_plan_on_machine(plan: ExecutionPlan, machine: Machine,
                             primaries: "list[int] | None" = None) -> None:
    """Raise :class:`PlanValidationError` if *plan* cannot run on *machine*.

    ``primaries`` restricts the check to the home GPUs the plan will be
    used from (default: every GPU).
    """
    if primaries is None:
        primaries = [gpu.index for gpu in machine.gpus]
    for primary in primaries:
        machine.gpu(primary)

    _check_resident_footprint(plan, machine, primaries)
    _check_partition_support(plan, machine, primaries)
    _check_staging(plan, machine, primaries)


def _check_resident_footprint(plan: ExecutionPlan, machine: Machine,
                              primaries: list[int]) -> None:
    for primary in primaries:
        memory = machine.gpu(primary).memory
        usable = memory.capacity_bytes - memory.workspace_bytes
        if plan.gpu_resident_bytes > usable:
            raise PlanValidationError(
                f"plan for {plan.model.name} needs "
                f"{plan.gpu_resident_bytes / MB:.0f} MiB resident but "
                f"gpu{primary} offers {usable / MB:.0f} MiB; consider "
                f"repro.core.large_model.plan_within_budget")


def _check_partition_support(plan: ExecutionPlan, machine: Machine,
                             primaries: list[int]) -> None:
    if not plan.uses_parallel_transmission:
        return
    for primary in primaries:
        supported = max_partitions(machine, primary)
        if plan.num_partitions > supported:
            raise PlanValidationError(
                f"plan uses {plan.num_partitions}-way parallel transmission "
                f"but gpu{primary} on {machine.spec.name} supports at most "
                f"{supported} (cross-switch NVLink peers)")
        secondaries = choose_secondary_gpus(machine, primary,
                                            plan.num_partitions - 1)
        if len(secondaries) < plan.num_partitions - 1:
            raise PlanValidationError(
                f"gpu{primary} lacks {plan.num_partitions - 1} eligible "
                f"secondary GPUs for {plan.model.name}")


def _check_staging(plan: ExecutionPlan, machine: Machine,
                   primaries: list[int]) -> None:
    if not plan.uses_parallel_transmission:
        return
    largest_secondary = max(plan.partition_load_bytes(p)
                            for p in range(1, plan.num_partitions))
    for primary in primaries:
        for secondary in choose_secondary_gpus(machine, primary,
                                               plan.num_partitions - 1):
            workspace = machine.gpu(secondary).memory.workspace_bytes
            if largest_secondary > workspace:
                raise PlanValidationError(
                    f"partition of {largest_secondary / MB:.0f} MiB exceeds "
                    f"gpu{secondary}'s {workspace / MB:.0f} MiB staging "
                    f"area; reduce partition size or increase the "
                    f"workspace carve-out")
