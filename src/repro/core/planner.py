"""Layer execution planning: the paper's Algorithm 1.

Starting from the pure pipeline (every parameterized layer loaded), the
planner walks the layers in order and, wherever the pipeline stalls,
converts *earlier* layers to direct-host-access — cheapest conversions
first (smallest ``PerfDiff = Exe(DHA) - Exe(InMem)``) — because removing
a layer's load from the load stream lets every subsequent load start
earlier (paper Figures 7 and 8).

The paper's Step 4 ("UpdatePipelineExecutionFrom") re-profiles the
pipeline once a stall is eliminated; this implementation recomputes the
full timeline from the decision vector before examining each layer,
which is the same fixed point computed more simply.

:func:`initial_approach` implements the strawman the paper contrasts in
Table 3: per-layer comparison of the two methods with no pipeline
awareness.
"""

from __future__ import annotations

import typing

from repro import fastpath
from repro.core.plan import ExecMethod, Partition
from repro.core.stall import Timeline, TimelineMemo, compute_timeline
from repro.models.costs import LayerCosts

__all__ = ["LayerExecutionPlanner", "initial_approach"]


def initial_approach(costs: typing.Sequence[LayerCosts]) -> list[ExecMethod]:
    """Naive per-layer choice: DHA wherever it beats load-then-execute.

    This ignores that a load's latency may be *hidden* by pipelining —
    the flaw Algorithm 1 fixes (e.g., ResNet-101's mid-network convs in
    the paper's Table 3a are DHA here but loaded by DeepPlan).
    """
    decisions = []
    for cost in costs:
        if cost.load_pcie_bytes == 0:
            decisions.append(ExecMethod.DHA)
        elif cost.exec_dha < cost.load_time + cost.exec_inmem:
            decisions.append(ExecMethod.DHA)
        else:
            decisions.append(ExecMethod.LOAD)
    return decisions


class LayerExecutionPlanner:
    """Algorithm 1 over a profile report.

    Parameters
    ----------
    costs:
        Per-layer profile (load time, both execution times).
    partitions:
        Partition layout when planning on top of parallel transmission.
        Only partition 0 is eligible for DHA conversion; later partitions
        arrive over NVLink and stay loads (paper Section 4.3.3).
    nvlink_time:
        Transfer-time function for the NVLink hop (required with more
        than one partition).
    """

    def __init__(self, costs: typing.Sequence[LayerCosts],
                 partitions: typing.Sequence[Partition] = (),
                 nvlink_time: typing.Callable[[int], float] | None = None) -> None:
        self.costs = list(costs)
        self.partitions = tuple(partitions) or (
            Partition(index=0, start=0, stop=len(self.costs)),)
        self.nvlink_time = nvlink_time
        self._primary = self.partitions[0]
        # Conversion candidates in PerfDiff order, computed once:
        # eligibility by layer index and current decision varies per
        # stalled layer, but the ordering key never does, so the per-
        # stall ``sorted`` reduces to a filtered scan of this list
        # (ties break by layer index, matching the stable sort over an
        # index-ascending generator it replaces).
        self._candidate_order = sorted(
            (j for j in range(self._primary.start, self._primary.stop)
             if self.costs[j].load_pcie_bytes > 0),
            key=lambda j: self.costs[j].perf_diff)

    # -- the algorithm -----------------------------------------------------------

    def plan(self, memoize: bool | None = None) -> list[ExecMethod]:
        """Run Algorithm 1 and return the final decision vector.

        ``memoize`` selects the memoized timeline (default: the fast-path
        setting).  The reference path recomputes the full timeline before
        each layer; the memoized path restores the pipeline clocks at the
        first layer a conversion changed and re-accumulates only the
        suffix — same arithmetic, same order, bit-identical decisions.
        """
        if memoize is None:
            memoize = fastpath.enabled()
        decisions = self.all_loaded()
        if not memoize:
            for i in range(len(self.costs)):
                timeline = self._timeline(decisions)
                stall = timeline.stall_of(i)
                if stall <= 0:
                    continue
                self._reduce_stall(i, stall, decisions)
            return decisions

        memo = TimelineMemo(self.costs, decisions, self.partitions,
                            self.nvlink_time)
        for i in range(len(self.costs)):
            stall = memo.stall_of(i)
            if stall <= 0:
                continue
            changed_from = self._reduce_stall(i, stall, decisions)
            if changed_from is not None:
                memo.refresh(decisions, changed_from)
        return decisions

    def _reduce_stall(self, i: int, stall: float,
                      decisions: list[ExecMethod]) -> int | None:
        """Steps 1-4 of Algorithm 1 for one stalled layer ``L_i``.

        Returns the smallest converted layer index (``None`` when no
        conversion happened) so a memoized timeline knows where its
        cached prefix ends.
        """
        # Step 1: candidate layers L_1..L_i not yet converted, cheapest
        # conversions (smallest PerfDiff) first — a filtered scan of the
        # precomputed order.
        limit = min(i, self._primary.stop - 1)
        first_converted: int | None = None
        for j in self._candidate_order:
            if j > limit or decisions[j] is not ExecMethod.LOAD:
                continue
            perf_diff = self.costs[j].perf_diff
            # Step 2: a conversion only helps while its execution-time
            # penalty is smaller than the stall left to remove.
            if stall < perf_diff:
                break
            # Step 3: convert L_j and credit its removed load time.
            decisions[j] = ExecMethod.DHA
            if first_converted is None or j < first_converted:
                first_converted = j
            stall -= self.costs[j].load_time + perf_diff
            # Step 4: stall eliminated; the timeline is recomputed before
            # the next layer is examined.
            if stall <= 0:
                break
        return first_converted

    # -- helpers ----------------------------------------------------------------------

    def all_loaded(self) -> list[ExecMethod]:
        return [ExecMethod.LOAD if cost.load_pcie_bytes > 0 else ExecMethod.DHA
                for cost in self.costs]

    def _timeline(self, decisions: typing.Sequence[ExecMethod]) -> Timeline:
        return compute_timeline(self.costs, decisions, self.partitions,
                                self.nvlink_time)

    def predicted_timeline(
            self, decisions: typing.Sequence[ExecMethod]) -> Timeline:
        """Public timeline view for a finished decision vector."""
        return self._timeline(decisions)
