"""Plan serialization: save and load deployable execution plans.

The paper's DeepPlan emits an inference execution plan that is "ready to
be deployed into the serving systems" (Figure 10, step 4).  This module
makes that artifact durable: an :class:`~repro.core.plan.ExecutionPlan`
round-trips through JSON, including the model specification it was
generated for, so a serving fleet can consume plans produced by an
offline planning job.

The format is versioned and self-describing; loading validates layer
integrity (the plan refuses to attach to a model whose layers changed).
"""

from __future__ import annotations

import json
import pathlib
import typing

from repro.core.plan import ExecMethod, ExecutionPlan, Partition
from repro.errors import PlanError
from repro.models.graph import ModelSpec
from repro.models.layers import LayerKind, LayerSpec

__all__ = ["plan_to_dict", "plan_from_dict", "save_plan", "load_plan"]

FORMAT_VERSION = 1


def _layer_to_dict(layer: LayerSpec) -> dict[str, object]:
    return {
        "name": layer.name,
        "kind": layer.kind.value,
        "param_bytes": layer.param_bytes,
        "flops_per_item": layer.flops_per_item,
        "act_bytes_per_item": layer.act_bytes_per_item,
        "dha_min_bytes": layer.dha_min_bytes,
        "dha_bytes_per_item": layer.dha_bytes_per_item,
        "gather": layer.gather,
    }


def _layer_from_dict(data: dict[str, object]) -> LayerSpec:
    try:
        return LayerSpec(
            name=typing.cast(str, data["name"]),
            kind=LayerKind(data["kind"]),
            param_bytes=typing.cast(int, data["param_bytes"]),
            flops_per_item=typing.cast(float, data["flops_per_item"]),
            act_bytes_per_item=typing.cast(int, data["act_bytes_per_item"]),
            dha_min_bytes=typing.cast(int, data["dha_min_bytes"]),
            dha_bytes_per_item=typing.cast(int, data["dha_bytes_per_item"]),
            gather=typing.cast(bool, data.get("gather", False)),
        )
    except (KeyError, ValueError) as error:
        raise PlanError(f"malformed layer record: {error}") from error


def plan_to_dict(plan: ExecutionPlan) -> dict[str, object]:
    """The JSON-ready representation of a plan (and its model)."""
    data: dict[str, object] = {
        "format_version": FORMAT_VERSION,
        "strategy": plan.strategy,
        "machine": plan.machine_name,
        "batch_size": plan.batch_size,
        "predicted_latency": plan.predicted_latency,
        "predicted_warm_latency": plan.predicted_warm_latency,
        "model": {
            "name": plan.model.name,
            "family": plan.model.family,
            "seq_len": plan.model.seq_len,
            "layers": [_layer_to_dict(layer) for layer in plan.model.layers],
        },
        "decisions": [method.value for method in plan.decisions],
        "partitions": [{"index": p.index, "start": p.start, "stop": p.stop}
                       for p in plan.partitions],
    }
    if plan.fallback is not None:
        # The key is optional, so plans without a fallback serialize
        # exactly as in format version 1's original shape.
        data["fallback"] = plan_to_dict(plan.fallback)
    return data


def plan_from_dict(data: dict[str, object]) -> ExecutionPlan:
    """Reconstruct a plan (and its model) from :func:`plan_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise PlanError(f"unsupported plan format version {version!r} "
                        f"(expected {FORMAT_VERSION})")
    fallback_data = typing.cast("dict | None", data.get("fallback"))
    fallback = plan_from_dict(fallback_data) if fallback_data else None
    try:
        model_data = typing.cast(dict, data["model"])
        model = ModelSpec(
            name=model_data["name"],
            layers=tuple(_layer_from_dict(layer)
                         for layer in model_data["layers"]),
            seq_len=model_data["seq_len"],
            family=model_data["family"],
        )
        decisions = tuple(ExecMethod(value)
                          for value in typing.cast(list, data["decisions"]))
        partitions = tuple(
            Partition(index=p["index"], start=p["start"], stop=p["stop"])
            for p in typing.cast(list, data["partitions"]))
        return ExecutionPlan(
            model=model,
            batch_size=typing.cast(int, data["batch_size"]),
            decisions=decisions,
            partitions=partitions,
            strategy=typing.cast(str, data["strategy"]),
            machine_name=typing.cast(str, data["machine"]),
            predicted_latency=typing.cast(float,
                                          data.get("predicted_latency", 0.0)),
            predicted_warm_latency=typing.cast(
                float, data.get("predicted_warm_latency", 0.0)),
            fallback=fallback,
        )
    except (KeyError, TypeError, ValueError) as error:
        raise PlanError(f"malformed plan record: {error}") from error


def save_plan(plan: ExecutionPlan, path: "str | pathlib.Path") -> None:
    """Write a plan to *path* as JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(plan_to_dict(plan), indent=2) + "\n")


def load_plan(path: "str | pathlib.Path") -> ExecutionPlan:
    """Read a plan previously written by :func:`save_plan`."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise PlanError(f"{path} is not valid JSON: {error}") from error
    return plan_from_dict(data)
