"""Pipeline timeline analysis: where do stalls come from?

This is the analytical model of pipelined provisioning shared by the
profiler (reporting per-layer stalls, paper Figure 2), Algorithm 1 (which
needs ``Stall_Li`` for every layer under the current decisions), and the
plan's predicted latency.

The recurrence (contention-free, matching paper Figures 7-9):

* the *load stream* copies loaded layers in order, so layer ``i`` of
  partition 0 becomes ready at ``ready_{prev} + load_i``;
* each secondary partition loads through its own PCIe lane in parallel
  and a per-GPU *migration stream* forwards each layer over NVLink as
  soon as it lands (parallel-pipeline, Section 3.2), so a partition-``p``
  layer is ready on the primary GPU when its NVLink hop completes;
* the *execution stream* runs layers in order: a loaded layer starts at
  ``max(end_{i-1}, ready_i)`` (paying a small event-sync check), a DHA or
  parameter-free layer starts at ``end_{i-1}`` immediately;
* ``stall_i = max(0, ready_i - end_{i-1})`` — the quantity DeepPlan
  exists to eliminate.

The discrete-event executor in :mod:`repro.engine` implements the same
semantics with real resource contention; tests cross-validate the two.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.plan import ExecMethod, Partition
from repro.models.costs import EVENT_SYNC_OVERHEAD, LayerCosts

__all__ = ["LayerTiming", "Timeline", "TimelineMemo", "compute_timeline",
           "baseline_latency", "warm_latency"]


@dataclasses.dataclass(frozen=True)
class LayerTiming:
    """When one layer's parameters arrived and when it executed."""

    index: int
    method: ExecMethod
    #: When parameters became available on the primary GPU (0 for DHA and
    #: parameter-free layers — they never wait on a transfer).
    ready: float
    start: float
    end: float
    stall: float


class Timeline:
    """Per-layer timings plus aggregate latency decomposition."""

    def __init__(self, timings: list[LayerTiming]) -> None:
        if not timings:
            raise ValueError("timeline needs at least one layer")
        self.timings = timings

    @property
    def total_latency(self) -> float:
        return self.timings[-1].end

    @property
    def total_stall(self) -> float:
        """Summed pipeline stalls (the dark bars of paper Figure 2)."""
        return sum(t.stall for t in self.timings)

    @property
    def total_execution(self) -> float:
        """GPU busy time: latency minus stalls."""
        return self.total_latency - self.total_stall

    @property
    def stall_fraction(self) -> float:
        return self.total_stall / self.total_latency

    def stall_of(self, layer_index: int) -> float:
        return self.timings[layer_index].stall

    def __iter__(self) -> typing.Iterator[LayerTiming]:
        return iter(self.timings)

    def __len__(self) -> int:
        return len(self.timings)


def compute_timeline(
    costs: typing.Sequence[LayerCosts],
    decisions: typing.Sequence[ExecMethod],
    partitions: typing.Sequence[Partition] = (),
    nvlink_time: typing.Callable[[int], float] | None = None,
) -> Timeline:
    """Predict the pipelined execution timeline for a decision vector.

    ``partitions`` and ``nvlink_time`` describe parallel transmission;
    with a single partition (or none given) the model is the plain
    single-GPU pipeline.
    """
    n = len(costs)
    if len(decisions) != n:
        raise ValueError(f"{len(decisions)} decisions for {n} layers")
    if not partitions:
        partitions = (Partition(index=0, start=0, stop=n),)
    if len(partitions) > 1 and nvlink_time is None:
        raise ValueError("parallel transmission requires nvlink_time")

    ready = _param_ready_times(costs, decisions, partitions, nvlink_time)

    timings: list[LayerTiming] = []
    end_prev = 0.0
    for i, cost in enumerate(costs):
        method = decisions[i]
        loaded = cost.load_pcie_bytes > 0 and method is ExecMethod.LOAD
        if loaded:
            stall = max(0.0, ready[i] - end_prev)
            start = max(end_prev, ready[i])
            duration = cost.exec_inmem + EVENT_SYNC_OVERHEAD
        else:
            stall = 0.0
            start = end_prev
            duration = cost.exec_dha
        end = start + duration
        timings.append(LayerTiming(index=i, method=method, ready=ready[i],
                                   start=start, end=end, stall=stall))
        end_prev = end
    return Timeline(timings)


def _param_ready_times(
    costs: typing.Sequence[LayerCosts],
    decisions: typing.Sequence[ExecMethod],
    partitions: typing.Sequence[Partition],
    nvlink_time: typing.Callable[[int], float] | None,
) -> list[float]:
    """When each layer's parameters are available on the primary GPU."""
    ready = [0.0] * len(costs)
    for partition in partitions:
        lane_clock = 0.0  # this partition's PCIe lane (primary or secondary)
        migration_clock = 0.0  # the secondary GPU's NVLink stream
        for i in range(partition.start, partition.stop):
            cost = costs[i]
            if decisions[i] is not ExecMethod.LOAD or cost.load_pcie_bytes == 0:
                continue
            lane_clock += cost.load_time
            if partition.is_primary:
                ready[i] = lane_clock
            else:
                assert nvlink_time is not None
                migration_clock = (max(migration_clock, lane_clock)
                                   + nvlink_time(cost.load_pcie_bytes))
                ready[i] = migration_clock
    return ready


class TimelineMemo:
    """Incrementally maintained stall timeline for Algorithm 1.

    Algorithm 1 recomputes the timeline after every DHA conversion, but a
    conversion at layer ``j`` only changes ready/start/end times from
    ``j`` onward (and only within the primary partition's load stream —
    the algorithm never converts secondary-partition layers).  This memo
    checkpoints the load-stream lane clock and the execution clock after
    every layer, so :meth:`refresh` restores the clocks at the first
    changed layer and re-accumulates just the suffix — the same float
    operations in the same order as a from-scratch
    :func:`compute_timeline`, hence bit-identical stalls.
    """

    __slots__ = ("costs", "partitions", "nvlink_time", "_primary", "_ready",
                 "_lane_after", "_end", "_stall")

    def __init__(self, costs: typing.Sequence[LayerCosts],
                 decisions: typing.Sequence[ExecMethod],
                 partitions: typing.Sequence[Partition] = (),
                 nvlink_time: typing.Callable[[int], float] | None = None
                 ) -> None:
        n = len(costs)
        if len(decisions) != n:
            raise ValueError(f"{len(decisions)} decisions for {n} layers")
        if not partitions:
            partitions = (Partition(index=0, start=0, stop=n),)
        if len(partitions) > 1 and nvlink_time is None:
            raise ValueError("parallel transmission requires nvlink_time")
        self.costs = list(costs)
        self.partitions = tuple(partitions)
        self.nvlink_time = nvlink_time
        self._primary = self.partitions[0]
        self._ready = [0.0] * n
        #: Load-stream lane clock after each primary-partition layer.
        self._lane_after = [0.0] * n
        self._end = [0.0] * n
        self._stall = [0.0] * n
        # Secondary partitions never change decisions under Algorithm 1;
        # their NVLink-migrated ready times are computed exactly once.
        for partition in self.partitions[1:]:
            lane_clock = 0.0
            migration_clock = 0.0
            for i in range(partition.start, partition.stop):
                cost = self.costs[i]
                if decisions[i] is not ExecMethod.LOAD \
                        or cost.load_pcie_bytes == 0:
                    continue
                lane_clock += cost.load_time
                assert nvlink_time is not None
                migration_clock = (max(migration_clock, lane_clock)
                                   + nvlink_time(cost.load_pcie_bytes))
                self._ready[i] = migration_clock
        self.refresh(decisions, 0)

    def refresh(self, decisions: typing.Sequence[ExecMethod],
                changed_from: int) -> None:
        """Recompute timings for layers ``changed_from`` onward."""
        primary = self._primary
        costs = self.costs
        ready, lane_after = self._ready, self._lane_after
        if changed_from < primary.stop:
            start = max(primary.start, changed_from)
            lane = lane_after[start - 1] if start > primary.start else 0.0
            for i in range(start, primary.stop):
                cost = costs[i]
                if decisions[i] is ExecMethod.LOAD \
                        and cost.load_pcie_bytes > 0:
                    lane += cost.load_time
                    ready[i] = lane
                else:
                    ready[i] = 0.0
                lane_after[i] = lane
        end, stall = self._end, self._stall
        end_prev = end[changed_from - 1] if changed_from > 0 else 0.0
        for i in range(changed_from, len(costs)):
            cost = costs[i]
            if cost.load_pcie_bytes > 0 and decisions[i] is ExecMethod.LOAD:
                ready_i = ready[i]
                stall[i] = ready_i - end_prev if ready_i > end_prev else 0.0
                begin = end_prev if end_prev > ready_i else ready_i
                # Parenthesized to match compute_timeline's ``start +
                # (exec + sync)`` association bit for bit.
                end_prev = begin + (cost.exec_inmem + EVENT_SYNC_OVERHEAD)
            else:
                stall[i] = 0.0
                end_prev = end_prev + cost.exec_dha
            end[i] = end_prev

    def stall_of(self, layer_index: int) -> float:
        return self._stall[layer_index]

    @property
    def total_latency(self) -> float:
        return self._end[-1]


def baseline_latency(costs: typing.Sequence[LayerCosts]) -> float:
    """Non-pipelined provisioning: load everything, then execute."""
    return (sum(c.load_time for c in costs)
            + sum(c.exec_inmem for c in costs))


def warm_latency(costs: typing.Sequence[LayerCosts],
                 decisions: typing.Sequence[ExecMethod]) -> float:
    """Predicted warm-hit latency for a decision vector.

    Once provisioned, loaded layers run from GPU memory while DHA layers
    keep paying their host reads on every inference — so the warm cost of
    a plan depends on its decisions, and ``cold - warm`` is the price of
    provisioning.  The cluster router uses that difference as the
    cold-start spill signal.
    """
    if len(decisions) != len(costs):
        raise ValueError(f"{len(decisions)} decisions for {len(costs)} layers")
    total = 0.0
    for cost, method in zip(costs, decisions):
        if cost.load_pcie_bytes > 0 and method is ExecMethod.DHA:
            total += cost.exec_dha
        else:
            total += cost.exec_inmem
    return total
