"""DeepPlan reproduction: fast model serving with direct-host-access.

A faithful, simulation-based reproduction of *"Fast and Efficient Model
Serving Using Multi-GPUs with Direct-Host-Access"* (EuroSys '23): the
DeepPlan profiler/planner (Algorithm 1), parallel model transmission over
PCIe+NVLink, the five execution strategies of the paper's evaluation, and
a Clockwork-style serving system — all running on a calibrated
discrete-event model of the paper's 4x-V100 testbed.

Quickstart::

    from repro import DeepPlan, build_model, p3_8xlarge, run_single_inference

    planner = DeepPlan(p3_8xlarge())
    plan = planner.plan(build_model("bert-base"), "pt+dha")
    print(plan.summary())

    result = run_single_inference(p3_8xlarge(), build_model("bert-base"),
                                  "pt+dha")
    print(f"cold-start latency: {result.latency * 1e3:.2f} ms")

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
reproduction of every table and figure in the paper.
"""

from repro.core import (
    DeepPlan,
    ExecMethod,
    ExecutionPlan,
    LayerExecutionPlanner,
    LayerProfiler,
    Partition,
    ProfileReport,
    Strategy,
)
from repro.engine import (
    ExecutionResult,
    execute_plan,
    execute_warm,
    run_concurrent_cold_starts,
    run_single_inference,
    transmit_model,
)
from repro.errors import (
    OutOfGPUMemoryError,
    PlanError,
    ReproError,
    TopologyError,
    WorkloadError,
)
from repro.hw import GPU, Machine, MachineSpec, a5000x2, p3_8xlarge
from repro.models import (
    MODEL_NAMES,
    CostModel,
    LayerKind,
    LayerSpec,
    ModelSpec,
    build_model,
)
from repro.serving import (
    InferenceServer,
    MAFTraceConfig,
    MetricsCollector,
    ModelInstance,
    PoissonWorkload,
    Request,
    ServerConfig,
    ServingReport,
    TraceWorkload,
    synthesize_maf_trace,
)
from repro.simkit import Simulator

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "DeepPlan",
    "ExecMethod",
    "ExecutionPlan",
    "ExecutionResult",
    "GPU",
    "InferenceServer",
    "LayerExecutionPlanner",
    "LayerKind",
    "LayerProfiler",
    "LayerSpec",
    "MAFTraceConfig",
    "MODEL_NAMES",
    "Machine",
    "MachineSpec",
    "MetricsCollector",
    "ModelInstance",
    "ModelSpec",
    "OutOfGPUMemoryError",
    "Partition",
    "PlanError",
    "PoissonWorkload",
    "ProfileReport",
    "ReproError",
    "Request",
    "ServerConfig",
    "ServingReport",
    "Simulator",
    "Strategy",
    "TopologyError",
    "TraceWorkload",
    "WorkloadError",
    "a5000x2",
    "build_model",
    "execute_plan",
    "execute_warm",
    "p3_8xlarge",
    "run_concurrent_cold_starts",
    "run_single_inference",
    "synthesize_maf_trace",
    "transmit_model",
    "__version__",
]
