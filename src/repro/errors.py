"""Exception hierarchy for the DeepPlan reproduction."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "OutOfGPUMemoryError",
    "PlanError",
    "TopologyError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for every error raised by this package."""


class OutOfGPUMemoryError(ReproError):
    """A GPU memory allocation exceeded the device's capacity."""

    def __init__(self, requested: int, available: int, device: str) -> None:
        super().__init__(
            f"cannot allocate {requested} bytes on {device}: "
            f"only {available} bytes available")
        self.requested = requested
        self.available = available
        self.device = device


class PlanError(ReproError):
    """An execution plan is invalid or cannot be generated."""


class TopologyError(ReproError):
    """The requested GPUs or links do not exist in the machine topology."""


class WorkloadError(ReproError):
    """A workload description is malformed."""
