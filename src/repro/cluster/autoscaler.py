"""Reactive autoscaling: windowed-p99-driven standby activation.

The autoscaler wakes every ``interval`` seconds, computes the p99
latency over the trailing ``window`` of completed requests, and:

* **scales up** when p99 exceeds ``scale_up_p99`` — the next standby
  machine is activated and the full catalog is deployed on it (its GPUs
  are cold, so its first request per instance pays the provision
  penalty; that is precisely why the affinity policy must weigh spilling
  carefully);
* **scales down** when p99 falls below ``scale_down_p99`` — the most
  recently activated standby drains (finishes in-flight work, accepting
  nothing new) and returns to the reserve pool.

Only standby-origin machines are ever drained; the base fleet holds the
catalog's primary replicas and never shrinks.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import WorkloadError
from repro.simkit import Event
from repro.units import MS

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster

__all__ = ["Autoscaler", "AutoscalerConfig", "ScalingEvent"]


@dataclasses.dataclass(frozen=True)
class AutoscalerConfig:
    """Thresholds and cadence for the reactive autoscaler."""

    #: Seconds between scaling decisions.
    interval: float = 5.0
    #: Trailing window over which p99 is computed.
    window: float = 30.0
    #: Activate a standby when windowed p99 exceeds this (seconds).
    scale_up_p99: float = 200 * MS
    #: Drain an activated standby when windowed p99 falls below this.
    scale_down_p99: float = 50 * MS
    #: Ignore windows with fewer completions than this (too noisy).
    min_window_requests: int = 10
    #: Seconds after a scaling action before the next is considered.
    cooldown: float = 15.0

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.window <= 0:
            raise WorkloadError("interval and window must be positive")
        if self.scale_down_p99 >= self.scale_up_p99:
            raise WorkloadError(
                f"scale_down_p99 ({self.scale_down_p99}) must be below "
                f"scale_up_p99 ({self.scale_up_p99})")


@dataclasses.dataclass(frozen=True)
class ScalingEvent:
    """One scaling action taken during a run."""

    time: float
    action: str  # "scale-up" | "scale-down"
    machine_name: str
    p99: float


class Autoscaler:
    """Periodic scaling loop over a cluster's standby pool."""

    def __init__(self, cluster: "Cluster",
                 config: AutoscalerConfig = AutoscalerConfig()) -> None:
        self.cluster = cluster
        self.config = config
        self.events: list[ScalingEvent] = []
        self._stopped = False
        self._last_action_at = float("-inf")

    def stop(self) -> None:
        """End the scaling loop after its current sleep."""
        self._stopped = True

    def process(self) -> typing.Generator[Event, object, None]:
        sim = self.cluster.sim
        while True:
            yield sim.timeout(self.config.interval)
            if self._stopped:
                return
            self._decide()

    def _decide(self) -> None:
        config = self.config
        sim = self.cluster.sim
        if sim.now - self._last_action_at < config.cooldown:
            return
        p99 = self.cluster.windowed_p99(config.window,
                                        config.min_window_requests)
        if p99 is None:
            return
        if p99 > config.scale_up_p99:
            machine = self.cluster.activate_standby()
            if machine is not None:
                self._last_action_at = sim.now
                self.events.append(ScalingEvent(sim.now, "scale-up",
                                                machine.name, p99))
        elif p99 < config.scale_down_p99:
            machine = self.cluster.drain_activated_standby()
            if machine is not None:
                self._last_action_at = sim.now
                self.events.append(ScalingEvent(sim.now, "scale-down",
                                                machine.name, p99))
