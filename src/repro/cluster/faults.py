"""Fault injection: machine, GPU and link faults mid-run.

A :class:`FaultInjector` replays a schedule of :class:`FaultEvent`\\ s
inside the cluster simulation.  Events come in three granularities:

* **machine** — ``crash`` / ``recover`` whole machines (PR 3);
* **GPU** — ``gpu_fail`` / ``gpu_recover`` a single device while the
  rest of the machine keeps serving;
* **link** — ``link_degrade`` (to ``factor`` x nominal bandwidth,
  rebalancing in-flight flows) / ``link_restore``.  Repeating degrade and
  restore events for the same link models a flapping link.

:func:`random_fault_schedule` builds a seeded schedule of
non-overlapping fault/heal pairs over the base fleet — the randomized
counterpart the property-based conservation tests drive with hundreds of
seeds.  The injector validates every event's target against the actual
fleet up front (a typo'd schedule fails loudly instead of silently
skipping every event); *state*-dependent skips — e.g. crashing a machine
that is already down — stay runtime behavior, recorded in ``log``.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.errors import WorkloadError
from repro.simkit import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster

__all__ = ["FaultEvent", "FaultInjector", "random_fault_schedule",
           "FAULT_ACTIONS", "DEVICE_FAULT_ACTIONS", "GRANULARITIES"]

FAULT_ACTIONS = ("crash", "recover", "gpu_fail", "gpu_recover",
                 "link_degrade", "link_restore")
#: Actions below machine granularity; their presence in a schedule makes
#: the cluster arm the servers' device-fault watch.
DEVICE_FAULT_ACTIONS = ("gpu_fail", "gpu_recover",
                        "link_degrade", "link_restore")
GRANULARITIES = ("machine", "device", "mixed")


@dataclasses.dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault action.

    ``gpu``, ``link`` and ``factor`` only apply to the device-granular
    actions; they are excluded from ordering so machine-only and mixed
    schedules sort the same way (by time, then machine, then action).
    """

    time: float
    machine_name: str
    action: str
    #: GPU index, for ``gpu_fail`` / ``gpu_recover``.
    gpu: int | None = dataclasses.field(default=None, compare=False)
    #: Link name (e.g. ``nvlink2->0``), for ``link_degrade`` / ``link_restore``.
    link: str | None = dataclasses.field(default=None, compare=False)
    #: Remaining bandwidth as a fraction of nominal, for ``link_degrade``.
    factor: float | None = dataclasses.field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise WorkloadError(f"unknown fault action {self.action!r}; "
                                f"options: {', '.join(FAULT_ACTIONS)}")
        if self.time < 0:
            raise WorkloadError(f"fault time must be >= 0, got {self.time}")
        if self.action in ("gpu_fail", "gpu_recover"):
            if self.gpu is None or self.gpu < 0:
                raise WorkloadError(
                    f"{self.action} needs a GPU index >= 0, got {self.gpu}")
        if self.action in ("link_degrade", "link_restore") and not self.link:
            raise WorkloadError(f"{self.action} needs a link name")
        if self.action == "link_degrade":
            if self.factor is None or not 0 < self.factor <= 1:
                raise WorkloadError(
                    f"link_degrade needs a bandwidth factor in (0, 1], "
                    f"got {self.factor}")

    @property
    def target(self) -> str:
        """Human-readable target for logs, e.g. ``m0/gpu2``."""
        if self.gpu is not None:
            return f"{self.machine_name}/gpu{self.gpu}"
        if self.link is not None:
            suffix = f" x{self.factor:.2f}" if self.factor is not None else ""
            return f"{self.machine_name}/{self.link}{suffix}"
        return self.machine_name


class FaultInjector:
    """Replays a fault schedule against a cluster (or any fault target).

    Construction validates every event's machine / GPU / link target
    against the actual fleet, raising :class:`~repro.errors.WorkloadError`
    on the first unknown target.

    The target is duck-typed: anything exposing ``sim``, ``machine(name)``
    (returning an object whose ``.machine`` is the hardware
    :class:`~repro.hw.machine.Machine`) and the six fault actions
    (``crash_machine``, ``recover_machine``, ``fail_gpu``, ``recover_gpu``,
    ``degrade_link``, ``restore_link``) can replay a schedule.  Besides
    :class:`~repro.cluster.cluster.Cluster`, the sharded-replay workers
    (:mod:`repro.shard`) replay per-shard sub-schedules through this same
    class, so fault semantics cannot drift between the two paths.
    Schedules themselves are plain frozen dataclasses — picklable, so a
    ``spawn``-started worker process can receive its sub-schedule and
    reconstruct identical behavior.
    """

    def __init__(self, cluster: "Cluster | typing.Any",
                 schedule: typing.Sequence[FaultEvent]) -> None:
        self.cluster = cluster
        self.schedule = sorted(schedule)
        self._validate(self.schedule)
        #: (event, applied) log — an event is skipped (not applied) when
        #: its target is not in a state the action makes sense for, e.g.
        #: crashing a machine that is already down, or failing a GPU on a
        #: machine that crashed in the meantime.
        self.log: list[tuple[FaultEvent, bool]] = []

    def _validate(self, schedule: typing.Sequence[FaultEvent]) -> None:
        for event in schedule:
            # Unknown machine names raise WorkloadError here.
            machine = self.cluster.machine(event.machine_name).machine
            if event.gpu is not None and event.gpu >= machine.gpu_count:
                raise WorkloadError(
                    f"fault event targets gpu{event.gpu} on "
                    f"{event.machine_name}, which has only "
                    f"{machine.gpu_count} GPUs")
            if event.link is not None and event.link not in machine.link_names():
                raise WorkloadError(
                    f"fault event targets unknown link {event.link!r} on "
                    f"{event.machine_name}; links: "
                    f"{', '.join(machine.link_names())}")

    def process(self) -> typing.Generator[Event, object, None]:
        cluster = self.cluster
        sim = cluster.sim
        base = sim.now
        for event in self.schedule:
            due = base + event.time
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            action = event.action
            if action == "crash":
                applied = cluster.crash_machine(event.machine_name)
            elif action == "recover":
                applied = cluster.recover_machine(event.machine_name)
            elif action == "gpu_fail":
                applied = cluster.fail_gpu(event.machine_name,
                                           typing.cast(int, event.gpu))
            elif action == "gpu_recover":
                applied = cluster.recover_gpu(event.machine_name,
                                              typing.cast(int, event.gpu))
            elif action == "link_degrade":
                applied = cluster.degrade_link(
                    event.machine_name, typing.cast(str, event.link),
                    typing.cast(float, event.factor))
            else:
                applied = cluster.restore_link(event.machine_name,
                                               typing.cast(str, event.link))
            self.log.append((event, applied))


def random_fault_schedule(machine_names: typing.Sequence[str],
                          num_faults: int, duration: float,
                          seed: int = 0, *,
                          granularity: str = "machine",
                          gpu_count: int = 0,
                          link_names: typing.Sequence[str] = ()
                          ) -> list[FaultEvent]:
    """A seeded schedule of *num_faults* fault/heal pairs.

    Faults land in the middle 60 % of the run with outages of 5-15 % of
    its duration.  Machines are picked round-robin over a seeded shuffle
    and a machine's next fault never starts before its previous heal, so
    the schedule is always applicable; it can still take several machines
    down simultaneously — the retry path (and, at the limit, bounded
    drops) is exactly what the injector exists to exercise.

    ``granularity`` selects the event mix: ``"machine"`` (the default;
    crash/recover pairs, byte-identical to the pre-device-fault
    behavior, so existing property-test seeds stay stable),
    ``"device"`` (GPU and link events only) or ``"mixed"`` (all three).
    Device granularities need ``gpu_count`` and/or ``link_names``
    describing the per-machine topology.
    """
    if num_faults < 0:
        raise WorkloadError(f"num_faults must be >= 0, got {num_faults}")
    if duration <= 0:
        raise WorkloadError(f"duration must be positive, got {duration}")
    if num_faults and not machine_names:
        raise WorkloadError("no machines to inject faults into")
    if granularity not in GRANULARITIES:
        raise WorkloadError(f"unknown granularity {granularity!r}; "
                            f"options: {', '.join(GRANULARITIES)}")
    rng = numpy.random.default_rng(seed)
    order = list(machine_names)
    rng.shuffle(order)
    busy_until = {name: 0.0 for name in order}
    events: list[FaultEvent] = []
    if granularity == "machine":
        # Kept verbatim (no extra rng draws) so schedules for a given
        # seed are identical to those before device faults existed.
        for k in range(num_faults):
            name = order[k % len(order)]
            earliest = max(0.1 * duration, busy_until[name])
            latest = 0.7 * duration
            if earliest >= latest:
                continue  # this machine's outages already fill the window
            start = float(rng.uniform(earliest, latest))
            outage = float(rng.uniform(0.05, 0.15)) * duration
            events.append(FaultEvent(start, name, "crash"))
            events.append(FaultEvent(start + outage, name, "recover"))
            busy_until[name] = start + outage
        return sorted(events)

    kinds: list[str] = []
    if gpu_count > 0:
        kinds.append("gpu")
    if link_names:
        kinds.append("link")
    if granularity == "mixed":
        kinds.append("machine")
    if not kinds:
        raise WorkloadError(
            f"granularity {granularity!r} needs gpu_count and/or link_names")
    for k in range(num_faults):
        name = order[k % len(order)]
        kind = kinds[int(rng.integers(len(kinds)))]
        earliest = max(0.1 * duration, busy_until[name])
        latest = 0.7 * duration
        if earliest >= latest:
            continue
        start = float(rng.uniform(earliest, latest))
        outage = float(rng.uniform(0.05, 0.15)) * duration
        if kind == "machine":
            events.append(FaultEvent(start, name, "crash"))
            events.append(FaultEvent(start + outage, name, "recover"))
        elif kind == "gpu":
            gpu = int(rng.integers(gpu_count))
            events.append(FaultEvent(start, name, "gpu_fail", gpu=gpu))
            events.append(FaultEvent(start + outage, name, "gpu_recover",
                                     gpu=gpu))
        else:
            link = link_names[int(rng.integers(len(link_names)))]
            factor = float(rng.uniform(0.05, 0.45))
            events.append(FaultEvent(start, name, "link_degrade", link=link,
                                     factor=factor))
            events.append(FaultEvent(start + outage, name, "link_restore",
                                     link=link))
        busy_until[name] = start + outage
    return sorted(events)
