"""Fault injection: crash and recover machines mid-run.

A :class:`FaultInjector` replays a schedule of :class:`FaultEvent`\\ s
inside the cluster simulation.  :func:`random_fault_schedule` builds a
seeded schedule of non-overlapping crash/recover pairs over the base
fleet — the randomized counterpart the property-based conservation test
drives with hundreds of seeds.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.errors import WorkloadError
from repro.simkit import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster

__all__ = ["FaultEvent", "FaultInjector", "random_fault_schedule"]

FAULT_ACTIONS = ("crash", "recover")


@dataclasses.dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault action."""

    time: float
    machine_name: str
    action: str

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise WorkloadError(f"unknown fault action {self.action!r}; "
                                f"options: {', '.join(FAULT_ACTIONS)}")
        if self.time < 0:
            raise WorkloadError(f"fault time must be >= 0, got {self.time}")


class FaultInjector:
    """Replays a fault schedule against a cluster."""

    def __init__(self, cluster: "Cluster",
                 schedule: typing.Sequence[FaultEvent]) -> None:
        self.cluster = cluster
        self.schedule = sorted(schedule)
        #: (time, event, applied) log — an event is skipped (not applied)
        #: when its machine is not in a state the action makes sense for,
        #: e.g. crashing a machine that is already down.
        self.log: list[tuple[FaultEvent, bool]] = []

    def process(self) -> typing.Generator[Event, object, None]:
        sim = self.cluster.sim
        base = sim.now
        for event in self.schedule:
            due = base + event.time
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            if event.action == "crash":
                applied = self.cluster.crash_machine(event.machine_name)
            else:
                applied = self.cluster.recover_machine(event.machine_name)
            self.log.append((event, applied))


def random_fault_schedule(machine_names: typing.Sequence[str],
                          num_faults: int, duration: float,
                          seed: int = 0) -> list[FaultEvent]:
    """A seeded schedule of *num_faults* crash/recover pairs.

    Crashes land in the middle 60 % of the run with outages of 5-15 % of
    its duration.  Machines are picked round-robin over a seeded shuffle
    and a machine's next crash never starts before its previous recovery,
    so the schedule is always applicable; it can still take several
    machines down simultaneously — the retry path (and, at the limit,
    bounded drops) is exactly what the injector exists to exercise.
    """
    if num_faults < 0:
        raise WorkloadError(f"num_faults must be >= 0, got {num_faults}")
    if duration <= 0:
        raise WorkloadError(f"duration must be positive, got {duration}")
    if num_faults and not machine_names:
        raise WorkloadError("no machines to inject faults into")
    rng = numpy.random.default_rng(seed)
    order = list(machine_names)
    rng.shuffle(order)
    busy_until = {name: 0.0 for name in order}
    events: list[FaultEvent] = []
    for k in range(num_faults):
        name = order[k % len(order)]
        earliest = max(0.1 * duration, busy_until[name])
        latest = 0.7 * duration
        if earliest >= latest:
            continue  # this machine's outages already fill the window
        start = float(rng.uniform(earliest, latest))
        outage = float(rng.uniform(0.05, 0.15)) * duration
        events.append(FaultEvent(start, name, "crash"))
        events.append(FaultEvent(start + outage, name, "recover"))
        busy_until[name] = start + outage
    return sorted(events)
