"""Request routing across replicas: who serves this request?

Three policies, in increasing awareness of serving economics:

* ``round-robin`` — rotate over replicas, blind to load and residency;
* ``least-loaded`` — fewest outstanding requests wins;
* ``affinity`` — cache-affinity with cold-start-aware spill.  Each
  machine's score is its estimated backlog (``pending_cost``) plus what
  *this* request would cost there: the plan's predicted warm latency if
  the instance is GPU-resident, the full predicted cold-start latency if
  not.  A warm replica therefore keeps its traffic until its backlog
  exceeds the planner's
  :attr:`~repro.core.plan.ExecutionPlan.provision_penalty`, at which
  point spilling to a cold machine is predicted cheaper than queueing —
  the routing-level analogue of the paper's cold-start/latency trade-off.
"""

from __future__ import annotations

import typing

from repro.cluster.machine import ClusterMachine
from repro.errors import WorkloadError
from repro.serving.workload import Request

__all__ = ["ROUTING_POLICIES", "Router"]

ROUTING_POLICIES = ("round-robin", "least-loaded", "affinity")


class Router:
    """Stateless-per-request replica selection with backlog accounting."""

    def __init__(self, machines: typing.Sequence[ClusterMachine],
                 policy: str = "affinity",
                 clock: typing.Callable[[], float] | None = None,
                 breaker_cooldown: float = 0.0) -> None:
        if policy not in ROUTING_POLICIES:
            raise WorkloadError(
                f"unknown routing policy {policy!r}; options: "
                f"{', '.join(ROUTING_POLICIES)}")
        if breaker_cooldown < 0:
            raise WorkloadError(
                f"breaker cooldown must be >= 0, got {breaker_cooldown}")
        self.machines = list(machines)
        self.policy = policy
        self._rr_counter = 0
        #: Outstanding charge per (machine, request) dispatch, so settles
        #: subtract exactly what was charged even if residency changed.
        self._charges: dict[tuple[str, int], float] = {}
        #: Circuit breaker over cold-start routing: a tripped machine (one
        #: with a recent degraded/aborted provision) receives no requests
        #: that would cold-start there for ``breaker_cooldown`` seconds,
        #: unless no alternative replica exists.  Disabled when no clock
        #: is supplied or the cooldown is zero.
        self._clock = clock
        self.breaker_cooldown = breaker_cooldown
        self.breaker_trips = 0
        self._breaker_until: dict[str, float] = {}

    def candidates(self, instance_name: str) -> list[ClusterMachine]:
        """Routable machines holding a replica of *instance_name*."""
        return [m for m in self.machines
                if m.routable and m.has_replica(instance_name)]

    def estimated_service(self, machine: ClusterMachine,
                          instance_name: str) -> float:
        """Predicted service time of one request on *machine* right now."""
        plan = machine.server.plan_of(instance_name)
        if machine.server.is_warm(instance_name):
            return plan.predicted_warm_latency
        return plan.predicted_latency

    def trip(self, machine_name: str) -> None:
        """Open the cold-start circuit breaker for one machine."""
        if self._clock is None or self.breaker_cooldown <= 0:
            return
        self.breaker_trips += 1
        self._breaker_until[machine_name] = (self._clock()
                                             + self.breaker_cooldown)

    def breaker_open(self, machine_name: str) -> bool:
        until = self._breaker_until.get(machine_name)
        if until is None:
            return False
        if typing.cast(typing.Callable, self._clock)() >= until:
            del self._breaker_until[machine_name]
            return False
        return True

    def route(self, request: Request) -> ClusterMachine | None:
        """Pick the replica for *request*, or ``None`` if none is up."""
        candidates = self.candidates(request.instance_name)
        if not candidates:
            return None
        candidates.sort(key=lambda m: m.name)
        if self._breaker_until:
            # Breaker-open machines are skipped only for requests that
            # would cold-start there — warm replicas keep their traffic —
            # and only while a replica elsewhere can take the request.
            filtered = [m for m in candidates
                        if m.server.is_warm(request.instance_name)
                        or not self.breaker_open(m.name)]
            if filtered:
                candidates = filtered
        if self.policy == "round-robin":
            choice = candidates[self._rr_counter % len(candidates)]
            self._rr_counter += 1
        elif self.policy == "least-loaded":
            choice = min(candidates,
                         key=lambda m: (m.outstanding, m.name))
        else:
            choice = min(
                candidates,
                key=lambda m: (m.pending_cost + self.estimated_service(
                    m, request.instance_name), m.name))
        return choice

    def charge(self, machine: ClusterMachine, request: Request) -> None:
        """Record the estimated backlog this dispatch adds to *machine*."""
        cost = self.estimated_service(machine, request.instance_name)
        self._charges[(machine.name, request.request_id)] = cost
        machine.charge(cost)

    def settle(self, machine: ClusterMachine, request: Request) -> None:
        """Remove a dispatch's backlog charge (completion or failure)."""
        cost = self._charges.pop((machine.name, request.request_id), 0.0)
        machine.settle(cost)
