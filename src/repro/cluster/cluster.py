"""The cluster: fleet construction, placement, dispatch, and reporting.

One :class:`~repro.simkit.sim.Simulator` drives every machine, so
cross-machine coordination (routing, retries, failover, autoscaling) is
ordinary event scheduling — no wall-clock races to reason about.

Request lifecycle:

1. the arrival process stamps ``submitted_at`` and hands the request to
   the :class:`~repro.cluster.router.Router`;
2. the chosen machine's :class:`~repro.serving.server.InferenceServer`
   queues and serves it; a completion callback settles the router's
   backlog charge and records cluster-wide metrics;
3. if the machine crashes first, the request is orphaned by
   ``fail_over()`` and retried on a surviving replica after exponential
   backoff, up to ``max_retries`` times; beyond that it is *dropped* —
   recorded, counted, and (under audit) proven to terminate the
   request's lifecycle exactly once.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

import numpy

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig, ScalingEvent
from repro.cluster.faults import (
    DEVICE_FAULT_ACTIONS,
    FaultEvent,
    FaultInjector,
)
from repro.cluster.machine import ClusterMachine, MachineState
from repro.cluster.router import ROUTING_POLICIES, Router
from repro.core.deepplan import DeepPlan, Strategy
from repro.errors import WorkloadError
from repro.hw.machine import Machine
from repro.hw.specs import MachineSpec
from repro.models.graph import ModelSpec
from repro.serving.metrics import DEFAULT_SLO, MetricsCollector, RequestRecord
from repro.serving.server import InferenceServer, ServerConfig
from repro.serving.workload import Request
from repro.simkit import Event, Simulator
from repro.units import MS

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.audit.cluster import ClusterAuditor

__all__ = ["Cluster", "ClusterConfig", "ClusterReport", "MachineStats"]


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """Fleet-level configuration."""

    #: Base fleet size (always-active machines).
    num_machines: int = 2
    #: Reserve machines the autoscaler may activate.
    num_standby: int = 0
    #: Replicas per logical instance across the base fleet.
    replication: int = 1
    #: Routing policy: round-robin, least-loaded, or affinity.
    policy: str = "affinity"
    strategy: "Strategy | str" = Strategy.PT_DHA
    slo: float = DEFAULT_SLO
    #: Warm the base fleet's caches before traffic (the paper's warm-up).
    prewarm: bool = True
    #: Failed dispatch attempts beyond the first before a request drops.
    max_retries: int = 3
    #: Base delay before a retry; doubles per subsequent failure.
    retry_backoff: float = 5 * MS
    #: Prove exactly-once request accounting across machine failures.
    audit: bool = False
    autoscale: AutoscalerConfig | None = None
    #: Per-request latency deadline; when set, servers shed requests
    #: whose predicted queue + service time would blow past it.
    deadline: float | None = None
    #: Seconds the router avoids routing cold starts to a machine after a
    #: degraded or aborted provision there (0 disables the breaker).
    breaker_cooldown: float = 5.0

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise WorkloadError(
                f"need at least one machine, got {self.num_machines}")
        if self.num_standby < 0:
            raise WorkloadError(
                f"num_standby must be >= 0, got {self.num_standby}")
        if self.replication < 1:
            raise WorkloadError(
                f"replication must be >= 1, got {self.replication}")
        if self.replication > self.num_machines:
            raise WorkloadError(
                f"replication {self.replication} exceeds the base fleet "
                f"of {self.num_machines} machine(s)")
        if self.policy not in ROUTING_POLICIES:
            raise WorkloadError(
                f"unknown routing policy {self.policy!r}; options: "
                f"{', '.join(ROUTING_POLICIES)}")
        if self.max_retries < 0:
            raise WorkloadError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff <= 0:
            raise WorkloadError(
                f"retry_backoff must be positive, got {self.retry_backoff}")
        if self.deadline is not None and self.deadline <= 0:
            raise WorkloadError(
                f"deadline must be positive, got {self.deadline}")
        if self.breaker_cooldown < 0:
            raise WorkloadError(
                f"breaker_cooldown must be >= 0, got {self.breaker_cooldown}")


@dataclasses.dataclass(frozen=True)
class MachineStats:
    """Per-machine breakdown for the cluster report."""

    name: str
    state: str
    served: int
    p99: float | None
    cold_start_rate: float
    busy_time: float
    #: GPU busy time over (run duration x GPU count).
    utilization: float
    crashes: int


@dataclasses.dataclass
class ClusterReport:
    """Outcome of one cluster run."""

    metrics: MetricsCollector
    per_machine: list[MachineStats]
    dropped: list[Request]
    retries: int
    duration: float
    submitted: int
    scaling_events: list[ScalingEvent]
    fault_log: list[tuple[FaultEvent, bool]]
    #: Plan-cache counters of the fleet's shared planner (zero when the
    #: planner runs without a cache).
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Requests shed at admission because their deadline was unmeetable.
    shed: list[Request] = dataclasses.field(default_factory=list)
    #: Cold starts completed on the degraded fallback plan.
    degraded_cold_starts: int = 0
    #: Parallel transmissions aborted by a device/link fault.
    aborted_provisions: int = 0

    @property
    def completed(self) -> int:
        return len(self.metrics.records)

    def summary(self) -> dict[str, float]:
        data = {
            "submitted": float(self.submitted),
            "completed": float(self.completed),
            "dropped": float(len(self.dropped)),
            "retries": float(self.retries),
            "machines": float(len(self.per_machine)),
            "crashes": float(sum(m.crashes for m in self.per_machine)),
            "plan_cache_hits": float(self.plan_cache_hits),
            "plan_cache_misses": float(self.plan_cache_misses),
        }
        # Degradation keys appear only when the run actually exercised
        # them, so fault-free summaries stay byte-identical.
        if self.shed:
            data["shed"] = float(len(self.shed))
        if self.degraded_cold_starts:
            data["degraded_cold_starts"] = float(self.degraded_cold_starts)
        if self.aborted_provisions:
            data["aborted_provisions"] = float(self.aborted_provisions)
        if self.metrics.records:
            data.update(
                p99_ms=self.metrics.p99_latency / MS,
                goodput=self.metrics.goodput,
                cold_start_rate=self.metrics.cold_start_rate,
            )
        return data


class Cluster:
    """A fleet of serving machines behind one router, on one simulator."""

    def __init__(self, spec: MachineSpec,
                 config: ClusterConfig = ClusterConfig(),
                 planner: DeepPlan | None = None) -> None:
        self.spec = spec
        self.config = config
        self.sim = Simulator()
        # One planner for the (homogeneous) fleet: plans are
        # machine-shape-specific, so every machine shares them.
        self.planner = planner if planner is not None else DeepPlan(spec)
        server_config = ServerConfig(strategy=config.strategy,
                                     slo=config.slo, prewarm=False,
                                     deadline=config.deadline)
        self.machines: list[ClusterMachine] = []
        for index in range(config.num_machines + config.num_standby):
            standby = index >= config.num_machines
            machine = Machine(self.sim, spec)
            server = InferenceServer(machine, self.planner, server_config)
            self.machines.append(ClusterMachine(
                name=f"m{index}", machine=machine, server=server,
                state=(MachineState.STANDBY if standby
                       else MachineState.ACTIVE),
                standby_origin=standby))
        self._by_name = {cm.name: cm for cm in self.machines}
        self.router = Router(self.machines, config.policy,
                             clock=lambda: self.sim.now,
                             breaker_cooldown=config.breaker_cooldown)
        self.metrics = MetricsCollector(slo=config.slo)
        self.autoscaler = (Autoscaler(self, config.autoscale)
                           if config.autoscale is not None else None)
        self.auditor: "ClusterAuditor | None" = None
        if config.audit:
            from repro.audit.cluster import ClusterAuditor
            self.auditor = ClusterAuditor(self)
        #: Logical instances: (name, model), in deployment order.
        self._instance_models: list[tuple[str, ModelSpec]] = []
        self._model_counts: collections.Counter[str] = collections.Counter()
        # -- per-run state --
        self._done: Event | None = None
        self._total = 0
        self._completed = 0
        self.dropped: list[Request] = []
        self.shed: list[Request] = []
        self.retries = 0
        self._failures: collections.Counter[int] = collections.Counter()
        #: External observers (the open-loop load generator registers
        #: here to track terminal outcomes of requests it submitted).
        self._completion_hooks: list[
            typing.Callable[[Request, RequestRecord], None]] = []
        self._shed_hooks: list[typing.Callable[[Request], None]] = []
        self._drop_hooks: list[typing.Callable[[Request], None]] = []
        for cm in self.machines:
            cm.server.add_completion_callback(self._make_on_complete(cm))
            cm.server.on_orphan = self._make_on_orphan(cm)
            cm.server.on_shed = self._make_on_shed(cm)
            cm.server.on_degraded = self._make_on_degraded(cm)

    # -- placement -------------------------------------------------------------------

    @property
    def instance_names(self) -> list[str]:
        return [name for name, _ in self._instance_models]

    def active_machines(self) -> list[ClusterMachine]:
        return [cm for cm in self.machines
                if cm.state is MachineState.ACTIVE]

    def machine(self, name: str) -> ClusterMachine:
        try:
            return self._by_name[name]
        except KeyError:
            raise WorkloadError(f"no machine {name!r} in the cluster") \
                from None

    def deploy(self, catalog: typing.Sequence[tuple[ModelSpec, int]]
               ) -> list[str]:
        """Place ``count`` logical instances of each model on the fleet.

        Every logical instance ``model#k`` gets ``config.replication``
        replicas, assigned round-robin over the base fleet so replicas of
        one instance land on distinct machines.  Returns the new logical
        instance names.
        """
        actives = [cm for cm in self.machines if not cm.standby_origin]
        created = []
        slot = len(self._instance_models)
        for model, count in catalog:
            if count < 1:
                raise WorkloadError(
                    f"instance count must be >= 1, got {count}")
            start = self._model_counts[model.name]
            for k in range(start, start + count):
                name = f"{model.name}#{k}"
                for r in range(self.config.replication):
                    actives[(slot + r) % len(actives)] \
                        .server.deploy_instance(model, name)
                self._instance_models.append((name, model))
                self._model_counts[model.name] += 1
                created.append(name)
                slot += 1
        return created

    # -- fleet transitions -------------------------------------------------------------

    def crash_machine(self, name: str) -> bool:
        """Crash *name*: orphan its work and retry it elsewhere.

        Returns False (no-op) if the machine is not currently running
        traffic (already down, or standby).
        """
        cm = self.machine(name)
        if cm.state not in (MachineState.ACTIVE, MachineState.DRAINING):
            return False
        cm.state = MachineState.DOWN
        cm.crashes += 1
        for request in cm.server.fail_over():
            self.router.settle(cm, request)
            self._attempt_failed(request, cm.name)
        return True

    def recover_machine(self, name: str) -> bool:
        """Bring a crashed machine back into rotation, cold."""
        cm = self.machine(name)
        if cm.state is not MachineState.DOWN:
            return False
        cm.server.recover()
        cm.state = MachineState.ACTIVE
        return True

    # -- device-granular faults --------------------------------------------------------

    def fail_gpu(self, name: str, gpu: int) -> bool:
        """Fail one GPU on *name*: abort its provisions, rehome its work.

        Unlike a machine crash, the rest of the machine keeps serving —
        orphans from the dead GPU retry (possibly on the same machine),
        and in-flight parallel transmissions touching it abort onto the
        degraded fallback plan.  No-op when the machine is down or the
        GPU already failed.
        """
        cm = self.machine(name)
        if cm.state is MachineState.DOWN:
            return False
        if not cm.machine.fail_gpu(gpu):
            return False
        cm.gpu_failures += 1
        for request in cm.server.handle_gpu_failure(gpu):
            self.router.settle(cm, request)
            self._attempt_failed(request, f"{cm.name}/gpu{gpu}")
        return True

    def recover_gpu(self, name: str, gpu: int) -> bool:
        """Bring a failed GPU back (cold) on a machine that is not down."""
        cm = self.machine(name)
        if cm.state is MachineState.DOWN:
            return False
        return cm.machine.recover_gpu(gpu)

    def degrade_link(self, name: str, link: str, factor: float) -> bool:
        """Degrade one link to *factor* x nominal bandwidth.

        In-flight flows rebalance immediately; parallel transmissions
        relying on the link abort onto the fallback plan when the factor
        drops below the server's degraded-link threshold.
        """
        cm = self.machine(name)
        if cm.state is MachineState.DOWN:
            return False
        if not cm.machine.degrade_link(link, factor):
            return False
        cm.server.handle_link_degradation(cm.machine.link(link))
        return True

    def restore_link(self, name: str, link: str) -> bool:
        """Restore a degraded link to nominal bandwidth."""
        cm = self.machine(name)
        if cm.state is MachineState.DOWN:
            return False
        return cm.machine.restore_link(link)

    def activate_standby(self) -> ClusterMachine | None:
        """Turn the next standby active, deploying the full catalog on it.

        The new machine's GPUs are cold: its first request per instance
        pays the provision penalty, which is why the affinity policy only
        spills there once warm backlogs exceed that penalty.
        """
        for cm in self.machines:
            if cm.state is MachineState.STANDBY:
                for name, model in self._instance_models:
                    if not cm.has_replica(name):
                        cm.server.deploy_instance(model, name)
                cm.state = MachineState.ACTIVE
                return cm
        return None

    def drain_activated_standby(self) -> ClusterMachine | None:
        """Start draining the most recently activated standby machine."""
        candidates = [cm for cm in self.machines
                      if cm.state is MachineState.ACTIVE and cm.standby_origin]
        if not candidates:
            return None
        cm = candidates[-1]
        cm.state = MachineState.DRAINING
        self.sim.process(self._drain_process(cm), name=f"drain-{cm.name}")
        return cm

    def _drain_process(self, cm: ClusterMachine
                       ) -> typing.Generator[Event, object, None]:
        yield cm.server.drain()
        if cm.state is not MachineState.DRAINING:
            return  # a crash interrupted the drain
        cm.state = MachineState.STANDBY
        cm.server.resume()

    # -- external observers (loadgen) --------------------------------------------------

    def add_completion_callback(
            self, callback: typing.Callable[[Request, RequestRecord], None]
    ) -> None:
        """Call *callback* with each request and its record on completion."""
        self._completion_hooks.append(callback)

    def remove_completion_callback(
            self, callback: typing.Callable[[Request, RequestRecord], None]
    ) -> None:
        self._completion_hooks.remove(callback)

    def add_shed_callback(self,
                          callback: typing.Callable[[Request], None]) -> None:
        """Call *callback* with each request shed by admission control."""
        self._shed_hooks.append(callback)

    def remove_shed_callback(
            self, callback: typing.Callable[[Request], None]) -> None:
        self._shed_hooks.remove(callback)

    def add_drop_callback(self,
                          callback: typing.Callable[[Request], None]) -> None:
        """Call *callback* with each request dropped after its last retry."""
        self._drop_hooks.append(callback)

    def remove_drop_callback(
            self, callback: typing.Callable[[Request], None]) -> None:
        self._drop_hooks.remove(callback)

    # -- signals ---------------------------------------------------------------------

    def windowed_p99(self, window: float,
                     min_requests: int = 1) -> float | None:
        """p99 latency over the trailing *window* seconds of completions.

        Returns ``None`` when fewer than *min_requests* completions fall
        in the window (the signal is too noisy to act on).
        """
        cutoff = self.sim.now - window
        # metrics.records is append-ordered, which is *nearly* but not
        # reliably finished_at-ordered: a retried or merged request is
        # recorded when its completion is reported, which can be after a
        # later-finishing one.  Breaking at the first stale record would
        # silently truncate the window, so the scan filters the whole
        # list instead.
        latencies = [record.latency for record in self.metrics.records
                     if record.finished_at >= cutoff]
        if len(latencies) < min_requests:
            return None
        return float(numpy.percentile(latencies, 99))

    # -- running ---------------------------------------------------------------------

    def start(self) -> None:
        """Start workers and prewarm the active fleet (idempotent).

        :meth:`run` does this implicitly.  Externally driven sessions —
        the open-loop load generator (:mod:`repro.loadgen`) — call this
        once up front and then :meth:`submit` at will.
        """
        for cm in self.machines:
            cm.server.start()
            if cm.state is MachineState.ACTIVE and self.config.prewarm:
                cm.server.prewarm()

    def submit(self, request: Request) -> bool:
        """Admit one externally generated request (the loadgen API).

        Stamps ``submitted_at`` when unset and routes the request;
        retries and drop accounting behave exactly as under :meth:`run`.
        Always returns ``True`` — cluster-level terminal outcomes
        (completion, shed, drop) are asynchronous and reported through
        the registered callbacks.
        """
        if request.submitted_at is None:
            request.submitted_at = self.sim.now
        self._total += 1
        if self.auditor is not None:
            self.auditor.on_submit(request)
        self._dispatch(request)
        return True

    def run(self, requests: typing.Sequence[Request],
            fault_schedule: typing.Sequence[FaultEvent] = ()
            ) -> ClusterReport:
        """Serve *requests* to termination (completed or dropped)."""
        if not self._instance_models:
            raise WorkloadError("no instances deployed")
        if not requests:
            raise WorkloadError("no requests to serve")
        known = {name for name, _ in self._instance_models}
        unknown = {r.instance_name for r in requests} - known
        if unknown:
            raise WorkloadError(f"requests target unknown instances: "
                                f"{sorted(unknown)[:5]}")
        self._total = len(requests)
        self._completed = 0
        self.dropped = []
        self.shed = []
        self.retries = 0
        self._failures = collections.Counter()
        done = self._done = self.sim.event(name="cluster-done")
        watch = any(event.action in DEVICE_FAULT_ACTIONS
                    for event in fault_schedule)
        for cm in self.machines:
            cm.server.failure_event = done
            cm.server.watch_device_faults = watch
            cm.server.start()
            if cm.state is MachineState.ACTIVE and self.config.prewarm:
                cm.server.prewarm()
        injector = FaultInjector(self, fault_schedule) \
            if fault_schedule else None
        if injector is not None:
            self.sim.process(injector.process(), name="fault-injector")
        if self.autoscaler is not None:
            self.sim.process(self.autoscaler.process(), name="autoscaler")
        start_time = self.sim.now
        self.sim.process(self._arrival_process(list(requests)),
                         name="cluster-arrivals")
        self.sim.run(done)
        duration = self.sim.now - start_time
        if self.autoscaler is not None:
            self.autoscaler.stop()
        # Run the simulator dry: phantom executions, pending recoveries
        # and drains finish, so the audit sees a quiesced fleet.
        self.sim.run()
        if self.auditor is not None:
            self.auditor.check_quiesce()
        return self._build_report(duration, injector)

    def _arrival_process(self, requests: list[Request]
                         ) -> typing.Generator[Event, object, None]:
        requests.sort(key=lambda r: r.arrival_time)
        base = self.sim.now
        for request in requests:
            due = base + request.arrival_time
            if due > self.sim.now:
                yield self.sim.timeout(due - self.sim.now)
            request.submitted_at = due
            if self.auditor is not None:
                self.auditor.on_submit(request)
            self._dispatch(request)

    def _dispatch(self, request: Request) -> None:
        machine = self.router.route(request)
        if machine is None:
            # Every replica is down or draining: count a failed attempt
            # and back off — a recovery may land before retries run out.
            self._attempt_failed(request, "unroutable")
            return
        self.router.charge(machine, request)
        if self.auditor is not None:
            self.auditor.on_dispatch(request, machine.name)
        machine.server.submit(request)

    def _attempt_failed(self, request: Request, where: str) -> None:
        if self.auditor is not None:
            self.auditor.on_failure(request, where)
        self._failures[request.request_id] += 1
        if self._failures[request.request_id] > self.config.max_retries:
            self.dropped.append(request)
            self.metrics.record_dropped()
            if self.auditor is not None:
                self.auditor.on_drop(request)
            for hook in list(self._drop_hooks):
                hook(request)
            self._check_done()
            return
        self.retries += 1
        delay = self.config.retry_backoff \
            * (2 ** (self._failures[request.request_id] - 1))
        self.sim.process(self._retry_process(request, delay),
                         name=f"retry{request.request_id}")

    def _retry_process(self, request: Request, delay: float
                       ) -> typing.Generator[Event, object, None]:
        yield self.sim.timeout(delay)
        self._dispatch(request)

    def _make_on_complete(self, cm: ClusterMachine
                          ) -> typing.Callable[[Request, RequestRecord], None]:
        def on_complete(request: Request, record: RequestRecord) -> None:
            self.router.settle(cm, request)
            self.metrics.record(record)
            if self.auditor is not None:
                self.auditor.on_complete(request, cm.name)
            self._completed += 1
            for hook in list(self._completion_hooks):
                hook(request, record)
            self._check_done()
        return on_complete

    def _make_on_orphan(self, cm: ClusterMachine
                        ) -> typing.Callable[[Request], None]:
        def on_orphan(request: Request) -> None:
            self.router.settle(cm, request)
            self._attempt_failed(request, cm.name)
        return on_orphan

    def _make_on_shed(self, cm: ClusterMachine
                      ) -> typing.Callable[[Request], None]:
        def on_shed(request: Request) -> None:
            # Shedding is terminal: the deadline is already unmeetable
            # here, and a retry elsewhere would only add queueing delay.
            self.router.settle(cm, request)
            self.shed.append(request)
            self.metrics.record_shed()
            if self.auditor is not None:
                self.auditor.on_shed(request, cm.name)
            for hook in list(self._shed_hooks):
                hook(request)
            self._check_done()
        return on_shed

    def _make_on_degraded(self, cm: ClusterMachine
                          ) -> typing.Callable[[Request], None]:
        def on_degraded(request: Request) -> None:
            cm.degraded_provisions += 1
            self.router.trip(cm.name)
        return on_degraded

    def _check_done(self) -> None:
        if (self._done is not None and not self._done.triggered
                and self._completed + len(self.dropped) + len(self.shed)
                >= self._total):
            self._done.succeed()

    # -- reporting -------------------------------------------------------------------

    def _build_report(self, duration: float,
                      injector: FaultInjector | None) -> ClusterReport:
        per_machine = []
        for cm in self.machines:
            server = cm.server
            gpu_seconds = duration * len(cm.machine.gpus)
            has_records = bool(server.metrics.records)
            per_machine.append(MachineStats(
                name=cm.name,
                state=cm.state.value,
                served=server.requests_served,
                p99=server.metrics.p99_latency if has_records else None,
                cold_start_rate=(server.metrics.cold_start_rate
                                 if has_records else 0.0),
                busy_time=server.busy_time,
                utilization=(server.busy_time / gpu_seconds
                             if gpu_seconds > 0 else 0.0),
                crashes=cm.crashes,
            ))
        plan_cache = self.planner.plan_cache
        return ClusterReport(
            metrics=self.metrics,
            per_machine=per_machine,
            dropped=list(self.dropped),
            retries=self.retries,
            duration=duration,
            submitted=self._total,
            scaling_events=(list(self.autoscaler.events)
                            if self.autoscaler is not None else []),
            fault_log=list(injector.log) if injector is not None else [],
            plan_cache_hits=plan_cache.hits if plan_cache is not None else 0,
            plan_cache_misses=(plan_cache.misses
                               if plan_cache is not None else 0),
            shed=list(self.shed),
            degraded_cold_starts=self.metrics.degraded_cold_starts,
            aborted_provisions=sum(cm.server.aborted_provisions
                                   for cm in self.machines),
        )
