"""Cluster-scale serving: a fleet of machines behind a request router.

The paper serves models from one multi-GPU machine; production fleets
put many such machines behind a router.  This package simulates that
tier on a single :class:`~repro.simkit.sim.Simulator`:

* :class:`ClusterMachine` pairs one :class:`~repro.hw.machine.Machine`
  with one :class:`~repro.serving.server.InferenceServer` and a
  lifecycle state (active / standby / draining / down);
* :class:`Router` picks a replica per request — round-robin,
  least-loaded, or cache-affinity with cold-start-aware spill driven by
  the planner's :attr:`~repro.core.plan.ExecutionPlan.provision_penalty`;
* :class:`FaultInjector` crashes and recovers machines mid-run;
  orphaned requests are retried on surviving replicas with bounded
  exponential backoff;
* :class:`Autoscaler` activates standby machines when windowed p99
  crosses a threshold and drains them back when load subsides;
* :class:`Cluster` ties it together and produces a
  :class:`ClusterReport` with per-machine breakdowns.

With ``ClusterConfig(audit=True)`` a
:class:`~repro.audit.cluster.ClusterAuditor` proves exactly-once
accounting: every submitted request completes exactly once cluster-wide
or is reported dropped after ``max_retries`` failed attempts.
"""

from repro.cluster.machine import ClusterMachine, MachineState
from repro.cluster.router import ROUTING_POLICIES, Router
from repro.cluster.faults import FaultEvent, FaultInjector, random_fault_schedule
from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.cluster import (
    Cluster,
    ClusterConfig,
    ClusterReport,
    MachineStats,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "Cluster",
    "ClusterConfig",
    "ClusterMachine",
    "ClusterReport",
    "FaultEvent",
    "FaultInjector",
    "MachineState",
    "MachineStats",
    "ROUTING_POLICIES",
    "Router",
    "random_fault_schedule",
]
