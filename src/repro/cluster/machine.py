"""One machine of the fleet: a server plus its lifecycle state."""

from __future__ import annotations

import dataclasses
import enum

from repro.hw.machine import Machine
from repro.serving.server import InferenceServer

__all__ = ["ClusterMachine", "MachineState"]


class MachineState(enum.Enum):
    """Where a machine sits in the fleet lifecycle.

    Only ``ACTIVE`` machines receive traffic.  ``STANDBY`` machines are
    provisioned but idle (the autoscaler's reserve pool); ``DRAINING``
    machines finish in-flight work before returning to standby; ``DOWN``
    machines have crashed and lost all GPU state.
    """

    ACTIVE = "active"
    STANDBY = "standby"
    DRAINING = "draining"
    DOWN = "down"


@dataclasses.dataclass
class ClusterMachine:
    """A named machine in the cluster with routing bookkeeping."""

    name: str
    machine: Machine
    server: InferenceServer
    state: MachineState = MachineState.ACTIVE
    #: Estimated seconds of queued + in-flight service, maintained by the
    #: router (charged on dispatch, settled on completion or failure).
    pending_cost: float = 0.0
    crashes: int = 0
    #: Machines that began life as standbys; only these are eligible for
    #: autoscaler scale-down (the base fleet never drains).
    standby_origin: bool = False
    #: Device-granular fault counters (machine-level crashes excluded).
    gpu_failures: int = 0
    #: Cold starts on this machine that completed on the degraded
    #: fallback plan (each also trips the router's circuit breaker).
    degraded_provisions: int = 0

    @property
    def routable(self) -> bool:
        return self.state is MachineState.ACTIVE

    @property
    def outstanding(self) -> int:
        return self.server.outstanding

    def has_replica(self, instance_name: str) -> bool:
        return instance_name in self.server.instances

    def charge(self, cost: float) -> None:
        self.pending_cost += cost

    def settle(self, cost: float) -> None:
        self.pending_cost = max(0.0, self.pending_cost - cost)
