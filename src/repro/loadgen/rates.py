"""Composable request-rate curves (requests/second as a function of time).

A :class:`RateFunction` describes the *intended* instantaneous arrival
rate of an open-loop traffic source.  Rate functions are closed under
addition and scalar multiplication, so realistic mixes compose
algebraically::

    diurnal = DiurnalRate(base=80.0, amplitude=0.5, period=3600.0)
    crowd = FlashCrowd(start=1200.0, duration=120.0, magnitude=400.0)
    regional = 0.3 * diurnal + crowd

Generators only need two queries: the exact rate at a point
(:meth:`RateFunction.rate`) and a finite upper bound over an interval
(:meth:`RateFunction.peak`), which drives Poisson thinning — candidates
are drawn at the peak rate and accepted with probability
``rate(t) / peak``.
"""

from __future__ import annotations

import typing

import numpy

from repro.errors import WorkloadError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.serving.maf import SyntheticTrace

__all__ = ["RateFunction", "ConstantRate", "DiurnalRate", "FlashCrowd",
           "TraceRate", "SumRate", "ScaledRate"]


class RateFunction:
    """Base class: a non-negative request rate over time."""

    def rate(self, t: float) -> float:
        """Instantaneous rate (req/s) at time *t*."""
        raise NotImplementedError

    def peak(self, t0: float, t1: float) -> float:
        """A finite upper bound on :meth:`rate` over ``[t0, t1)``.

        Tightness affects thinning efficiency only, never correctness —
        but the bound must never be exceeded.
        """
        raise NotImplementedError

    def __add__(self, other: "RateFunction") -> "RateFunction":
        if not isinstance(other, RateFunction):
            return NotImplemented
        return SumRate([self, other])

    def __mul__(self, factor: float) -> "RateFunction":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return ScaledRate(self, float(factor))

    __rmul__ = __mul__


class ConstantRate(RateFunction):
    """A flat rate: the steady-state / baseline tenant."""

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise WorkloadError(f"rate must be >= 0, got {rate}")
        self._rate = float(rate)

    def rate(self, t: float) -> float:
        return self._rate

    def peak(self, t0: float, t1: float) -> float:
        return self._rate

    def __repr__(self) -> str:
        return f"ConstantRate({self._rate})"


class DiurnalRate(RateFunction):
    """A sinusoidal day/night curve around a base rate.

    ``rate(t) = base * (1 + amplitude * sin(2*pi * (t - phase) / period))``
    — with ``amplitude`` in ``[0, 1]`` the curve never goes negative.
    """

    def __init__(self, base: float, amplitude: float = 0.5,
                 period: float = 86400.0, phase: float = 0.0) -> None:
        if base < 0:
            raise WorkloadError(f"base rate must be >= 0, got {base}")
        if not 0.0 <= amplitude <= 1.0:
            raise WorkloadError(
                f"amplitude must be in [0, 1], got {amplitude}")
        if period <= 0:
            raise WorkloadError(f"period must be positive, got {period}")
        self.base = float(base)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def rate(self, t: float) -> float:
        cycle = 2.0 * numpy.pi * (t - self.phase) / self.period
        return self.base * (1.0 + self.amplitude * float(numpy.sin(cycle)))

    def peak(self, t0: float, t1: float) -> float:
        return self.base * (1.0 + self.amplitude)

    def __repr__(self) -> str:
        return (f"DiurnalRate(base={self.base}, amplitude={self.amplitude}, "
                f"period={self.period})")


class FlashCrowd(RateFunction):
    """A rectangular burst: *magnitude* req/s over one time window.

    Added to a baseline, this models the flash-crowd overload that
    closed-loop harnesses famously under-measure.
    """

    def __init__(self, start: float, duration: float,
                 magnitude: float) -> None:
        if duration <= 0:
            raise WorkloadError(f"duration must be positive, got {duration}")
        if magnitude < 0:
            raise WorkloadError(f"magnitude must be >= 0, got {magnitude}")
        self.start = float(start)
        self.duration = float(duration)
        self.magnitude = float(magnitude)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def rate(self, t: float) -> float:
        return self.magnitude if self.start <= t < self.end else 0.0

    def peak(self, t0: float, t1: float) -> float:
        return self.magnitude if t0 < self.end and t1 > self.start else 0.0

    def __repr__(self) -> str:
        return (f"FlashCrowd(start={self.start}, duration={self.duration}, "
                f"magnitude={self.magnitude})")


class TraceRate(RateFunction):
    """A piecewise-constant rate replayed from per-bucket offered load."""

    def __init__(self, bucket_seconds: float,
                 values: typing.Sequence[float]) -> None:
        if bucket_seconds <= 0:
            raise WorkloadError(
                f"bucket_seconds must be positive, got {bucket_seconds}")
        if len(values) == 0:
            raise WorkloadError("need at least one bucket")
        array = numpy.asarray(values, dtype=float)
        if (array < 0).any():
            raise WorkloadError("bucket rates must be >= 0")
        self.bucket_seconds = float(bucket_seconds)
        self.values = array

    @classmethod
    def from_trace(cls, trace: "SyntheticTrace") -> "TraceRate":
        """The offered-load curve of a synthetic MAF trace as a rate."""
        return cls(trace.config.bucket_seconds, trace.offered_load)

    @property
    def duration(self) -> float:
        return len(self.values) * self.bucket_seconds

    def rate(self, t: float) -> float:
        if t < 0 or t >= self.duration:
            return 0.0
        return float(self.values[int(t // self.bucket_seconds)])

    def peak(self, t0: float, t1: float) -> float:
        first = max(0, int(t0 // self.bucket_seconds))
        last = min(len(self.values) - 1,
                   int(numpy.ceil(t1 / self.bucket_seconds)) - 1)
        if first > last:
            return 0.0
        return float(self.values[first:last + 1].max())

    def __repr__(self) -> str:
        return (f"TraceRate({len(self.values)} buckets x "
                f"{self.bucket_seconds} s)")


class SumRate(RateFunction):
    """The superposition of several rate functions."""

    def __init__(self, parts: typing.Sequence[RateFunction]) -> None:
        if not parts:
            raise WorkloadError("need at least one rate function")
        flat: list[RateFunction] = []
        for part in parts:
            if isinstance(part, SumRate):
                flat.extend(part.parts)
            else:
                flat.append(part)
        self.parts = tuple(flat)

    def rate(self, t: float) -> float:
        return sum(part.rate(t) for part in self.parts)

    def peak(self, t0: float, t1: float) -> float:
        return sum(part.peak(t0, t1) for part in self.parts)

    def __repr__(self) -> str:
        return f"SumRate({list(self.parts)!r})"


class ScaledRate(RateFunction):
    """A rate function multiplied by a non-negative scalar."""

    def __init__(self, inner: RateFunction, factor: float) -> None:
        if factor < 0:
            raise WorkloadError(f"factor must be >= 0, got {factor}")
        self.inner = inner
        self.factor = float(factor)

    def rate(self, t: float) -> float:
        return self.factor * self.inner.rate(t)

    def peak(self, t0: float, t1: float) -> float:
        return self.factor * self.inner.peak(t0, t1)

    def __repr__(self) -> str:
        return f"ScaledRate({self.inner!r}, {self.factor})"
