"""The load-generator driver: open- and closed-loop traffic frontends.

The driver submits requests to a live serving target (an
:class:`~repro.serving.server.InferenceServer` or a
:class:`~repro.cluster.cluster.Cluster`) through the target's real
``submit()`` API, on the target's own simulator clock:

* **open loop** — arrivals fire at their *intended* times regardless of
  completion backpressure, and every request's ``submitted_at`` is preset
  to its intended arrival, so latency includes any queueing the system
  imposed.  This is the coordinated-omission-safe measurement.
* **closed loop** — a shared pool of ``clients`` connections: a request
  is sent only when a connection is free, and ``submitted_at`` is
  stamped at the actual send.  This reproduces the naive benchmark
  harness whose arrivals stall whenever the system stalls — intended
  load silently evaporates exactly when the tail blows up, which is the
  bias this PR exists to expose.

Run both against the same seed and the same target configuration and the
difference in reported p99 *is* the coordinated-omission gap.

The driver keeps its own :class:`~repro.serving.metrics.MetricsCollector`
(with shed/dropped accounting and a latency histogram), so one serving
target can be measured by several generator runs without mixing results.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.cluster.cluster import Cluster
from repro.errors import WorkloadError
from repro.loadgen.traffic import Arrival
from repro.serving.metrics import MetricsCollector
from repro.serving.histogram import LatencyHistogram
from repro.serving.server import InferenceServer
from repro.serving.workload import Request

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.serving.metrics import RequestRecord
    from repro.simkit import Event, Simulator

__all__ = ["LoadGenConfig", "LoadGen", "LoadGenReport"]

MODES = ("open", "closed")


@dataclasses.dataclass(frozen=True)
class LoadGenConfig:
    """Knobs of one load-generation run."""

    #: Arrivals are generated over ``[0, duration)`` (seconds).
    duration: float
    #: "open" (arrivals fire on schedule) or "closed" (a connection pool
    #: gates sends on completions).
    mode: str = "open"
    #: Connection-pool size for closed-loop mode (ignored when open).
    clients: int = 4
    #: Optional cap on the number of arrivals taken from the traffic
    #: source (useful for smoke runs over long traces).
    max_requests: int | None = None
    #: Batch size stamped on every generated request; must match the
    #: batch size the target's plans were deployed with.
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise WorkloadError(
                f"duration must be positive, got {self.duration}")
        if self.mode not in MODES:
            raise WorkloadError(f"unknown mode {self.mode!r}; "
                                f"options: {', '.join(MODES)}")
        if self.clients < 1:
            raise WorkloadError(
                f"clients must be >= 1, got {self.clients}")
        if self.max_requests is not None and self.max_requests < 1:
            raise WorkloadError(
                f"max_requests must be >= 1, got {self.max_requests}")
        if self.batch_size < 1:
            raise WorkloadError(
                f"batch_size must be >= 1, got {self.batch_size}")


@dataclasses.dataclass
class LoadGenReport:
    """Outcome of one generator run against one target."""

    mode: str
    #: The driver's own collector: completion records, shed/dropped
    #: counters, and the run's latency histogram.
    metrics: MetricsCollector
    #: Arrivals taken from the traffic source.
    offered: int
    #: Requests handed to the target's ``submit()`` (== offered once the
    #: run finishes; shed-at-admission counts as submitted).
    submitted: int
    completed: int
    shed: int
    dropped: int
    #: Simulated seconds from the first arrival until the last terminal
    #: outcome.
    duration: float
    #: Per-QoS-class latency histograms over the completions.
    by_qos: dict[str, LatencyHistogram] = dataclasses.field(
        default_factory=dict)

    def summary(self) -> dict[str, float]:
        data = self.metrics.summary()
        data.update(offered=float(self.offered),
                    submitted=float(self.submitted),
                    duration=self.duration)
        return data


class _ServerTarget:
    """Adapter: drive one InferenceServer."""

    def __init__(self, server: InferenceServer) -> None:
        self.server = server
        self.sim: "Simulator" = server.sim
        self.slo = server.config.slo
        self._on_complete: typing.Callable[
            [Request, "RequestRecord"], None] | None = None
        self._prev_on_shed: typing.Callable[[Request], None] | None = None

    def instance_names(self) -> set[str]:
        return set(self.server.instances)

    def prepare(self, failure_event: "Event") -> None:
        if self.server.config.prewarm:
            self.server.prewarm()
        self.server.start()
        self.server.failure_event = failure_event

    def attach(self,
               on_complete: typing.Callable[[Request, "RequestRecord"], None],
               on_shed: typing.Callable[[Request], None],
               on_drop: typing.Callable[[Request], None]) -> None:
        self._on_complete = on_complete
        self.server.add_completion_callback(on_complete)
        prev = self._prev_on_shed = self.server.on_shed

        def chained(request: Request) -> None:
            if prev is not None:
                prev(request)
            on_shed(request)

        self.server.on_shed = chained
        # A standalone server never drops: shedding is its only
        # non-completion terminal outcome.

    def detach(self) -> None:
        if self._on_complete is not None:
            self.server.remove_completion_callback(self._on_complete)
            self._on_complete = None
        self.server.on_shed = self._prev_on_shed
        self.server.failure_event = None

    def submit(self, request: Request) -> None:
        self.server.submit(request)


class _ClusterTarget:
    """Adapter: drive a Cluster through its router."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.sim: "Simulator" = cluster.sim
        self.slo = cluster.config.slo
        self._callbacks: tuple | None = None

    def instance_names(self) -> set[str]:
        return {name for name, _ in self.cluster._instance_models}

    def prepare(self, failure_event: "Event") -> None:
        self.cluster.start()
        for cm in self.cluster.machines:
            cm.server.failure_event = failure_event

    def attach(self,
               on_complete: typing.Callable[[Request, "RequestRecord"], None],
               on_shed: typing.Callable[[Request], None],
               on_drop: typing.Callable[[Request], None]) -> None:
        self._callbacks = (on_complete, on_shed, on_drop)
        self.cluster.add_completion_callback(on_complete)
        self.cluster.add_shed_callback(on_shed)
        self.cluster.add_drop_callback(on_drop)

    def detach(self) -> None:
        if self._callbacks is None:
            return
        on_complete, on_shed, on_drop = self._callbacks
        self.cluster.remove_completion_callback(on_complete)
        self.cluster.remove_shed_callback(on_shed)
        self.cluster.remove_drop_callback(on_drop)
        self._callbacks = None
        for cm in self.cluster.machines:
            cm.server.failure_event = None

    def submit(self, request: Request) -> None:
        self.cluster.submit(request)


class LoadGen:
    """Drives one serving target with one traffic source."""

    def __init__(self, target: "InferenceServer | Cluster",
                 traffic: typing.Any, config: LoadGenConfig) -> None:
        if isinstance(target, InferenceServer):
            self.target: "_ServerTarget | _ClusterTarget" = \
                _ServerTarget(target)
        elif isinstance(target, Cluster):
            self.target = _ClusterTarget(target)
        else:
            raise WorkloadError(
                f"target must be an InferenceServer or Cluster, "
                f"got {type(target).__name__}")
        if not hasattr(traffic, "arrivals"):
            raise WorkloadError(
                f"traffic source {type(traffic).__name__} has no "
                f"arrivals(duration) method")
        self.traffic = traffic
        self.config = config
        # -- per-run state --
        self._metrics: MetricsCollector | None = None
        self._by_qos: dict[str, LatencyHistogram] = {}
        self._in_flight = 0
        self._submitted = 0
        self._completed = 0
        self._shed = 0
        self._dropped = 0
        self._offered = 0
        self._generator_done = False
        self._done: "Event | None" = None
        self._slot: "Event | None" = None

    def run(self) -> LoadGenReport:
        """Drive the target until every offered request is terminal."""
        sim = self.target.sim
        metrics = self._metrics = MetricsCollector(slo=self.target.slo)
        self._by_qos = {}
        self._in_flight = self._submitted = 0
        self._completed = self._shed = self._dropped = self._offered = 0
        self._generator_done = False
        self._slot = None
        done = self._done = sim.event(name="loadgen-done")
        self.target.prepare(done)
        self.target.attach(self._on_complete, self._on_shed, self._on_drop)
        start = sim.now
        sim.process(self._traffic_process(start), name="loadgen")
        try:
            sim.run(done)
        finally:
            self.target.detach()
            self._done = None
        # Run the simulator dry so pending phantoms/retries/recoveries in
        # the target quiesce before anyone audits it.
        sim.run()
        return LoadGenReport(
            mode=self.config.mode,
            metrics=metrics,
            offered=self._offered,
            submitted=self._submitted,
            completed=self._completed,
            shed=self._shed,
            dropped=self._dropped,
            duration=sim.now - start,
            by_qos=dict(self._by_qos),
        )

    # -- the traffic process ---------------------------------------------------------

    def _traffic_process(self, base: float
                         ) -> typing.Generator["Event", object, None]:
        sim = self.target.sim
        config = self.config
        known = self.target.instance_names()
        arrivals = self.traffic.arrivals(config.duration)
        if config.max_requests is not None:
            arrivals = itertools.islice(arrivals, config.max_requests)
        offered_any = False
        for request_id, arrival in enumerate(arrivals):
            offered_any = True
            self._offered += 1
            if arrival.instance not in known:
                self._fail(WorkloadError(
                    f"traffic targets unknown instance {arrival.instance!r}"))
                return
            due = base + arrival.time
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            if config.mode == "closed":
                # The connection pool: wait for a free client before
                # sending.  Intended arrivals that pass while we wait are
                # simply sent late — the omission the open loop avoids.
                while self._in_flight >= config.clients:
                    self._slot = sim.event(name="loadgen-slot")
                    yield self._slot
                    self._slot = None
            request = self._make_request(request_id, arrival)
            if config.mode == "open":
                # Latency is measured from the *intended* arrival, not
                # from whenever the harness got around to sending.
                request.submitted_at = due
            self._in_flight += 1
            self._submitted += 1
            try:
                self.target.submit(request)
            except Exception as error:
                self._fail(error)
                return
        if not offered_any:
            self._fail(WorkloadError(
                f"traffic source produced no arrivals within "
                f"{config.duration} s"))
            return
        self._generator_done = True
        self._check_done()

    def _make_request(self, request_id: int, arrival: Arrival) -> Request:
        return Request(request_id=request_id,
                       instance_name=arrival.instance,
                       arrival_time=arrival.time,
                       batch_size=self.config.batch_size,
                       qos=arrival.qos)

    def _fail(self, error: Exception) -> None:
        if self._done is not None and not self._done.triggered:
            self._done.fail(error)

    # -- terminal-outcome callbacks ----------------------------------------------------

    def _on_complete(self, request: Request, record: "RequestRecord") -> None:
        assert self._metrics is not None
        self._metrics.record(record)
        qos_hist = self._by_qos.get(record.qos)
        if qos_hist is None:
            qos_hist = self._by_qos[record.qos] = LatencyHistogram()
        qos_hist.add(record.latency)
        self._completed += 1
        self._settle()

    def _on_shed(self, request: Request) -> None:
        assert self._metrics is not None
        self._metrics.record_shed()
        self._shed += 1
        self._settle()

    def _on_drop(self, request: Request) -> None:
        assert self._metrics is not None
        self._metrics.record_dropped()
        self._dropped += 1
        self._settle()

    def _settle(self) -> None:
        self._in_flight -= 1
        if self._slot is not None and not self._slot.triggered:
            self._slot.succeed()
        self._check_done()

    def _check_done(self) -> None:
        if (self._generator_done and self._done is not None
                and not self._done.triggered
                and self._completed + self._shed + self._dropped
                >= self._submitted):
            self._done.succeed()
