"""Open-loop traffic frontend for the serving system (coordinated omission).

Benchmark harnesses that wait for a response before sending the next
request (*closed loop*) stop offering load exactly when the system
stalls: the stalled seconds produce no samples, so the reported tail is
biased low — *coordinated omission*.  This package generates traffic the
way the outside world does: arrivals fire on schedule whether or not the
system keeps up, and latency is measured from the intended arrival time.

Pieces:

* :mod:`repro.loadgen.rates` — composable rate curves (constant,
  diurnal, flash crowd, trace replay; closed under ``+`` and ``*``);
* :mod:`repro.loadgen.traffic` — deterministic arrival streams over
  weighted instance sets and QoS classes (thinned inhomogeneous
  Poisson), plus trace replay and lazy merging;
* :mod:`repro.loadgen.driver` — the :class:`LoadGen` driver: open-loop
  and closed-loop modes against a live
  :class:`~repro.serving.server.InferenceServer` or
  :class:`~repro.cluster.cluster.Cluster`, reporting through an
  HDR-histogram-backed metrics collector.
"""

from repro.loadgen.rates import (ConstantRate, DiurnalRate, FlashCrowd,
                                 RateFunction, ScaledRate, SumRate, TraceRate)
from repro.loadgen.traffic import (Arrival, MergedTraffic, SyntheticTraffic,
                                   TraceTraffic, TrafficClass)
from repro.loadgen.driver import LoadGen, LoadGenConfig, LoadGenReport

__all__ = [
    "Arrival",
    "ConstantRate",
    "DiurnalRate",
    "FlashCrowd",
    "LoadGen",
    "LoadGenConfig",
    "LoadGenReport",
    "MergedTraffic",
    "RateFunction",
    "ScaledRate",
    "SumRate",
    "SyntheticTraffic",
    "TraceRate",
    "TraceTraffic",
    "TrafficClass",
]
