"""The ``deepplan`` command-line tool.

Mirrors the paper's standalone planner tool plus a few inspection and
simulation commands::

    deepplan models                       # list the model zoo
    deepplan topo --machine p3.8xlarge    # show the machine topology
    deepplan plan --model bert-base --strategy pt+dha
    deepplan infer --model bert-base      # simulate one cold-start
    deepplan serve --model bert-base --instances 140 --rate 100
    deepplan serve ... --audit           # run with invariant auditing on
    deepplan audit --cases 20            # differential-execution suite
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.analysis import format_table
from repro.core import DeepPlan, ExecMethod, Strategy
from repro.engine import run_single_inference
from repro.hw.machine import Machine
from repro.hw.specs import machine_presets
from repro.models import MODEL_NAMES, build_model
from repro.serving import InferenceServer, PoissonWorkload, ServerConfig
from repro.simkit import Simulator
from repro.units import MB, MS

__all__ = ["main"]


def _add_machine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--machine", default="p3.8xlarge",
                        choices=sorted(machine_presets()),
                        help="machine preset (default: the paper's testbed)")


def _add_model_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="bert-base", choices=MODEL_NAMES,
                        help="model from the paper's zoo")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="deepplan",
        description="DeepPlan (EuroSys '23) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo")

    topo = sub.add_parser("topo", help="show a machine preset's topology")
    _add_machine_arg(topo)

    plan = sub.add_parser("plan", help="generate an execution plan")
    _add_machine_arg(plan)
    _add_model_arg(plan)
    plan.add_argument("--strategy", default="pt+dha",
                      choices=[s.value for s in Strategy])
    plan.add_argument("--batch", type=int, default=1)
    plan.add_argument("--show-layers", type=int, default=0, metavar="N",
                      help="also print the first N per-layer decisions")
    plan.add_argument("--output", metavar="FILE",
                      help="save the deployable plan as JSON")

    infer = sub.add_parser("infer", help="simulate a cold-start inference")
    _add_machine_arg(infer)
    _add_model_arg(infer)
    infer.add_argument("--strategy", default=None,
                       choices=[s.value for s in Strategy],
                       help="default: compare all five strategies")
    infer.add_argument("--batch", type=int, default=1)
    infer.add_argument("--gantt", action="store_true",
                       help="render an ASCII timeline per strategy")

    serve = sub.add_parser("serve", help="simulate a serving scenario")
    _add_machine_arg(serve)
    _add_model_arg(serve)
    serve.add_argument("--strategy", default="pt+dha",
                       choices=[s.value for s in Strategy])
    serve.add_argument("--instances", type=int, default=120)
    serve.add_argument("--rate", type=float, default=100.0,
                       help="aggregate request rate (req/s)")
    serve.add_argument("--requests", type=int, default=1000)
    serve.add_argument("--slo-ms", type=float, default=100.0)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--eviction", default="lru",
                       choices=("lru", "lfu", "fifo", "random"))
    serve.add_argument("--homing", default="round-robin",
                       choices=("round-robin", "least-loaded"))
    serve.add_argument("--audit", action="store_true",
                       help="enable the runtime invariant-audit layer; the "
                            "run fails loudly on any conservation violation")

    cluster = sub.add_parser(
        "cluster", help="simulate a multi-machine serving fleet")
    _add_machine_arg(cluster)
    _add_model_arg(cluster)
    cluster.add_argument("--strategy", default="pt+dha",
                         choices=[s.value for s in Strategy])
    cluster.add_argument("--machines", type=int, default=2,
                         help="base fleet size")
    cluster.add_argument("--standby", type=int, default=0,
                         help="standby machines the autoscaler may activate")
    cluster.add_argument("--replication", type=int, default=2,
                         help="replicas per logical instance")
    cluster.add_argument("--policy", default="affinity",
                         choices=("round-robin", "least-loaded", "affinity"))
    cluster.add_argument("--instances", type=int, default=24,
                         help="logical instances of the model")
    cluster.add_argument("--trace", default="poisson",
                         choices=("poisson", "maf"))
    cluster.add_argument("--rate", type=float, default=100.0,
                         help="aggregate request rate (req/s)")
    cluster.add_argument("--requests", type=int, default=1000,
                         help="request count (poisson trace)")
    cluster.add_argument("--duration", type=float, default=120.0,
                         help="trace duration in seconds (maf trace)")
    cluster.add_argument("--faults", type=int, default=0,
                         help="random crash/recover pairs to inject")
    cluster.add_argument("--max-retries", type=int, default=3)
    cluster.add_argument("--slo-ms", type=float, default=100.0)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--autoscale", action="store_true",
                         help="enable the windowed-p99 autoscaler")
    cluster.add_argument("--audit", action="store_true",
                         help="prove exactly-once request accounting "
                              "across machine failures")

    replay = sub.add_parser(
        "replay", help="sharded parallel trace replay (epoch-synchronized "
                       "multiprocessing with a serial differential oracle)")
    _add_machine_arg(replay)
    _add_model_arg(replay)
    replay.add_argument("--strategy", default="pt+dha",
                        choices=[s.value for s in Strategy])
    replay.add_argument("--shards", type=int, default=2,
                        help="machine groups (= simulator instances)")
    replay.add_argument("--backend", default="process",
                        choices=("serial", "process"),
                        help="serial = in-process oracle; process = one "
                             "spawn worker per shard")
    replay.add_argument("--lockstep", action="store_true",
                        help="disable route-ahead pipelining (issue each "
                             "epoch only after the previous one is "
                             "collected; outcomes are identical either "
                             "way)")
    replay.add_argument("--adaptive-epochs", action="store_true",
                        help="grow/shrink the epoch length with observed "
                             "work (deterministic; changes the epoch grid "
                             "and therefore retry timing)")
    replay.add_argument("--epoch-ms", type=float, default=100.0,
                        help="synchronization quantum in milliseconds")
    replay.add_argument("--machines", type=int, default=4,
                        help="base fleet size")
    replay.add_argument("--replication", type=int, default=2,
                        help="replicas per logical instance")
    replay.add_argument("--policy", default="affinity",
                        choices=("round-robin", "least-loaded", "affinity"))
    replay.add_argument("--instances", type=int, default=24,
                        help="logical instances of the model")
    replay.add_argument("--trace", default="poisson",
                        choices=("poisson", "maf"))
    replay.add_argument("--rate", type=float, default=100.0,
                        help="aggregate request rate (req/s)")
    replay.add_argument("--requests", type=int, default=1000,
                        help="request count (poisson trace)")
    replay.add_argument("--duration", type=float, default=120.0,
                        help="trace duration in seconds (maf trace)")
    replay.add_argument("--faults", type=int, default=0,
                        help="random crash/recover pairs to inject")
    replay.add_argument("--max-retries", type=int, default=3)
    replay.add_argument("--slo-ms", type=float, default=100.0)
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--check", action="store_true",
                        help="also run the single-process serial reference "
                             "and verify the outcomes are bit-identical")
    replay.add_argument("--audit", action="store_true",
                        help="enable per-shard conservation ledgers plus "
                             "the servers' invariant-audit layer")
    replay.add_argument("--chaos-workers", type=int, default=0,
                        metavar="N",
                        help="inject N seeded random worker faults "
                             "(kill/stall/corrupt at random epochs; "
                             "process backend only) to exercise "
                             "crash recovery")
    replay.add_argument("--chaos-spec", default="",
                        help="explicit chaos events as "
                             "kind@shard:epoch[:duration],... "
                             "(e.g. kill@0:2,stall@1:3:5.0); combined "
                             "with --chaos-workers")
    replay.add_argument("--worker-timeout", type=float, default=30.0,
                        help="supervision deadline in seconds per worker "
                             "pipe interaction (0 disables supervision)")
    replay.add_argument("--max-worker-restarts", type=int, default=3,
                        help="respawn budget per worker before the "
                             "replay fails (or falls back)")
    replay.add_argument("--serial-fallback", action="store_true",
                        help="rerun on the in-process serial backend if "
                             "a worker exhausts its restart budget")
    replay.add_argument("--watchdog", type=float, default=0.0,
                        metavar="SECS",
                        help="dump all thread stacks via faulthandler "
                             "and exit if the command runs longer than "
                             "SECS (CI hang debugging)")

    chaos = sub.add_parser(
        "chaos", help="replay a seeded device/link fault schedule and "
                      "print a degradation report")
    _add_machine_arg(chaos)
    _add_model_arg(chaos)
    chaos.add_argument("--strategy", default="pt+dha",
                       choices=[s.value for s in Strategy])
    chaos.add_argument("--machines", type=int, default=2)
    chaos.add_argument("--replication", type=int, default=2)
    chaos.add_argument("--instances", type=int, default=12,
                       help="logical instances of the model")
    chaos.add_argument("--rate", type=float, default=50.0,
                       help="aggregate request rate (req/s)")
    chaos.add_argument("--requests", type=int, default=500)
    chaos.add_argument("--faults", type=int, default=6,
                       help="random fault/heal pairs to inject")
    chaos.add_argument("--granularity", default="device",
                       choices=("machine", "device", "mixed"))
    chaos.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline; enables load shedding")
    chaos.add_argument("--max-retries", type=int, default=3)
    chaos.add_argument("--slo-ms", type=float, default=100.0)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--no-audit", action="store_true",
                       help="skip the exactly-once accounting audit")

    loadgen = sub.add_parser(
        "loadgen", help="drive a server with the open-loop traffic "
                        "frontend (coordinated-omission-safe latency)")
    _add_machine_arg(loadgen)
    _add_model_arg(loadgen)
    loadgen.add_argument("--strategy", default="pt+dha",
                         choices=[s.value for s in Strategy])
    loadgen.add_argument("--instances", type=int, default=64)
    loadgen.add_argument("--pattern", default="steady",
                         choices=("steady", "diurnal", "flash", "mix"),
                         help="traffic shape: constant, day/night curve, "
                              "flash-crowd burst, or a QoS-class mix")
    loadgen.add_argument("--mode", default="open",
                         choices=("open", "closed", "both"),
                         help="arrival discipline; 'both' runs each mode "
                              "on a fresh server with the same traffic "
                              "seed and prints the omission gap")
    loadgen.add_argument("--rate", type=float, default=80.0,
                         help="mean aggregate request rate (req/s)")
    loadgen.add_argument("--duration", type=float, default=30.0,
                         help="seconds of traffic to generate")
    loadgen.add_argument("--clients", type=int, default=4,
                         help="closed-loop connection-pool size")
    loadgen.add_argument("--max-requests", type=int, default=None,
                         help="cap on generated arrivals (smoke runs)")
    loadgen.add_argument("--slo-ms", type=float, default=100.0)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--histogram", action="store_true",
                         help="print the full ASCII latency histogram")
    loadgen.add_argument("--audit", action="store_true",
                         help="enable the runtime invariant-audit layer")

    audit = sub.add_parser(
        "audit", help="run the differential-execution audit suite")
    _add_machine_arg(audit)
    audit.add_argument("--cases", type=int, default=20,
                       help="seeded model/strategy combinations to run")
    audit.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    command = typing.cast(str, args.command)
    handler = {
        "models": _cmd_models,
        "topo": _cmd_topo,
        "plan": _cmd_plan,
        "infer": _cmd_infer,
        "serve": _cmd_serve,
        "cluster": _cmd_cluster,
        "replay": _cmd_replay,
        "chaos": _cmd_chaos,
        "loadgen": _cmd_loadgen,
        "audit": _cmd_audit,
    }[command]
    try:
        return handler(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _cmd_models(args: argparse.Namespace) -> int:
    rows = []
    for name in MODEL_NAMES:
        model = build_model(name)
        rows.append([name, model.family, len(model.layers),
                     model.param_count / 1e6, model.param_bytes / MB,
                     model.seq_len])
    print(format_table(
        ["model", "family", "layers", "params (M)", "size (MiB)", "seq"],
        rows, title="Model zoo (paper Section 5.1)"))
    return 0


def _cmd_topo(args: argparse.Namespace) -> int:
    spec = machine_presets()[args.machine]()
    machine = Machine(Simulator(), spec)
    print(machine.describe())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    spec = machine_presets()[args.machine]()
    planner = DeepPlan(spec)
    model = build_model(args.model)
    plan = planner.plan(model, args.strategy, batch_size=args.batch)
    print(plan.summary())
    if args.output:
        from repro.core.serialization import save_plan
        save_plan(plan, args.output)
        print(f"\nsaved deployable plan to {args.output}")
    if args.show_layers:
        indices = model.loadable_indices()[:args.show_layers]
        rows = [[model.layers[i].name, model.layers[i].kind.value,
                 model.layers[i].param_bytes / MB,
                 "load" if plan.method(i) is ExecMethod.LOAD else "dha"]
                for i in indices]
        print()
        print(format_table(["layer", "kind", "size (MiB)", "method"], rows))
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    spec = machine_presets()[args.machine]()
    planner = DeepPlan(spec)
    model = build_model(args.model)
    strategies = ([Strategy.parse(args.strategy)] if args.strategy
                  else list(Strategy))
    rows = []
    baseline_ms = None
    gantts = []
    for strategy in strategies:
        result = run_single_inference(spec, model, strategy,
                                      batch_size=args.batch, planner=planner)
        latency_ms = result.latency / MS
        if strategy is Strategy.BASELINE:
            baseline_ms = latency_ms
        speedup = baseline_ms / latency_ms if baseline_ms else float("nan")
        rows.append([strategy.value, latency_ms, result.total_stall / MS,
                     speedup])
        if args.gantt:
            from repro.analysis.gantt import render_gantt
            gantts.append(f"[{strategy.value}]\n{render_gantt(result)}")
    for block in gantts:
        print(block)
        print()
    print(format_table(
        ["strategy", "latency (ms)", "stall (ms)", "speedup vs baseline"],
        rows, title=f"{args.model} cold-start on {args.machine} "
                    f"(batch {args.batch})"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    spec = machine_presets()[args.machine]()
    planner = DeepPlan(spec)
    model = build_model(args.model)
    machine = Machine(Simulator(), spec)
    server = InferenceServer(machine, planner, ServerConfig(
        strategy=args.strategy, slo=args.slo_ms * MS,
        eviction_policy=args.eviction, homing=args.homing,
        audit=args.audit))
    server.deploy([(model, args.instances)])
    workload = PoissonWorkload(list(server.instances), rate=args.rate,
                               num_requests=args.requests, seed=args.seed)
    report = server.run(workload.generate())
    summary = report.summary()
    rows = [[key, value] for key, value in summary.items()]
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.instances}x {args.model} @ {args.rate} req/s "
              f"({args.strategy}, SLO {args.slo_ms:.0f} ms)"))
    if args.audit and server.auditor is not None:
        print(f"\naudit: {server.auditor.checks} invariant checks, "
              f"0 violations")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.analysis.cluster import format_cluster_report
    from repro.cluster import (
        AutoscalerConfig,
        Cluster,
        ClusterConfig,
        random_fault_schedule,
    )
    from repro.serving.workload import TraceWorkload

    spec = machine_presets()[args.machine]()
    config = ClusterConfig(
        num_machines=args.machines,
        num_standby=args.standby,
        replication=min(args.replication, args.machines),
        policy=args.policy,
        strategy=args.strategy,
        slo=args.slo_ms * MS,
        max_retries=args.max_retries,
        audit=args.audit,
        autoscale=AutoscalerConfig() if args.autoscale else None,
    )
    cluster = Cluster(spec, config)
    model = build_model(args.model)
    names = cluster.deploy([(model, args.instances)])
    if args.trace == "maf":
        from repro.serving.maf import MAFTraceConfig, synthesize_maf_trace
        trace = synthesize_maf_trace(names, MAFTraceConfig(
            duration=args.duration, target_rps=args.rate, seed=args.seed))
        requests = TraceWorkload(trace.arrivals).generate()
        duration = args.duration
    else:
        workload = PoissonWorkload(names, rate=args.rate,
                                   num_requests=args.requests,
                                   seed=args.seed)
        requests = workload.generate()
        duration = requests[-1].arrival_time
    schedule = random_fault_schedule(
        [m.name for m in cluster.machines[:args.machines]],
        args.faults, duration, seed=args.seed)
    report = cluster.run(requests, fault_schedule=schedule)
    print(format_cluster_report(report))
    if args.audit and cluster.auditor is not None:
        print(f"\naudit: {cluster.auditor.checks} invariant checks, "
              f"{len(cluster.auditor.violations)} violations — every "
              f"request completed exactly once or was dropped after "
              f"{args.max_retries + 1} failed attempts")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.shard import parse_chaos_spec, random_chaos_plan

    chaos = parse_chaos_spec(args.chaos_spec)
    if args.chaos_workers > 0:
        # Random faults across the first ~min(50, expected epoch count)
        # epochs so they land inside the replay, not past quiesce.
        max_epoch = max(1, min(50, int(
            (args.requests / max(args.rate, 1.0)) / (args.epoch_ms * MS))))
        chaos += random_chaos_plan(
            args.chaos_workers, args.shards, max_epoch, seed=args.seed,
            stall_duration=(1.5 * args.worker_timeout
                            if args.worker_timeout > 0 else 1.0))
    if chaos and args.backend != "process":
        print("chaos injection targets worker processes; use "
              "--backend process", file=sys.stderr)
        return 1
    if args.watchdog > 0:
        # CI hang debugging: if the replay wedges past the watchdog,
        # dump every thread's stack and exit instead of timing out the
        # whole job with no evidence.  Cancelled on normal completion.
        import faulthandler
        faulthandler.dump_traceback_later(args.watchdog, exit=True)
    try:
        return _run_replay(args, chaos)
    finally:
        if args.watchdog > 0:
            import faulthandler
            faulthandler.cancel_dump_traceback_later()


def _run_replay(args: argparse.Namespace, chaos: tuple) -> int:
    from repro.cluster import ClusterConfig, random_fault_schedule
    from repro.serving.workload import TraceWorkload
    from repro.shard import ShardConfig, ShardedReplay

    spec = machine_presets()[args.machine]()
    config = ClusterConfig(
        num_machines=args.machines,
        replication=min(args.replication, args.machines),
        policy=args.policy,
        strategy=args.strategy,
        slo=args.slo_ms * MS,
        max_retries=args.max_retries,
        audit=args.audit,
        # The cold-start circuit breaker is a continuous-time control
        # loop the epoch broker does not replicate; ShardedReplay
        # rejects configs that enable it.
        breaker_cooldown=0.0,
    )

    def build(num_shards: int, backend: str,
              chaos_events: tuple = ()) -> ShardedReplay:
        replay = ShardedReplay(spec, config, ShardConfig(
            num_shards=num_shards, backend=backend,
            epoch_length=args.epoch_ms * MS,
            pipelined=not args.lockstep,
            adaptive_epochs=args.adaptive_epochs,
            worker_timeout=args.worker_timeout,
            # An N-event chaos plan may concentrate on one shard, so
            # the budget never undercuts the injection count.
            max_worker_restarts=max(args.max_worker_restarts,
                                    len(chaos_events)),
            serial_fallback=args.serial_fallback,
            chaos=chaos_events if backend == "process" else ()))
        replay.deploy([(args.model, args.instances)])
        return replay

    replay = build(args.shards, args.backend, chaos)
    names = replay.instance_names
    if args.trace == "maf":
        from repro.serving.maf import MAFTraceConfig, synthesize_maf_trace
        trace = synthesize_maf_trace(names, MAFTraceConfig(
            duration=args.duration, target_rps=args.rate, seed=args.seed))
        requests = TraceWorkload(trace.arrivals).generate()
        duration = args.duration
    else:
        requests = PoissonWorkload(names, rate=args.rate,
                                   num_requests=args.requests,
                                   seed=args.seed).generate()
        duration = requests[-1].arrival_time
    schedule = random_fault_schedule(
        [f"m{i}" for i in range(args.machines)],
        args.faults, duration, seed=args.seed)
    report = replay.run(requests, fault_schedule=schedule)
    rows = [[key, value] for key, value in report.summary().items()]
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.shards}-shard {args.backend} replay of "
              f"{args.instances}x {args.model} on {args.machines} machines "
              f"({args.policy}, epoch {args.epoch_ms:.0f} ms)"))
    for ledger in report.shard_ledgers:
        print(f"  shard {ledger.shard_id}: {ledger.delivered} delivered = "
              f"{ledger.completed} completed + {ledger.shed} shed + "
              f"{ledger.orphaned} orphaned")
    if chaos:
        print(f"  chaos: {len(chaos)} injected fault(s) -> "
              f"{report.worker_restarts} worker restart(s), "
              f"{report.replayed_epochs} epoch(s) replayed in recovery"
              + (" [serial fallback]" if report.serial_fallback else ""))
    if args.check:
        # The reference never sees the chaos plan: it proves the
        # crash-injected run recovered onto the crash-free trajectory.
        reference = build(1, "serial").run(requests, fault_schedule=schedule)
        if report.outcome_signature() == reference.outcome_signature():
            print(f"\ndifferential check: {args.shards}-shard {args.backend} "
                  f"replay is bit-identical to the single-process reference "
                  f"({len(requests)} requests"
                  + (f", {len(chaos)} injected fault(s)" if chaos else "")
                  + ")")
        else:
            print("\ndifferential check FAILED: sharded outcomes diverge "
                  "from the single-process reference", file=sys.stderr)
            return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.analysis.cluster import format_cluster_report
    from repro.cluster import (
        Cluster,
        ClusterConfig,
        random_fault_schedule,
    )

    spec = machine_presets()[args.machine]()
    config = ClusterConfig(
        num_machines=args.machines,
        replication=min(args.replication, args.machines),
        strategy=args.strategy,
        slo=args.slo_ms * MS,
        max_retries=args.max_retries,
        audit=not args.no_audit,
        deadline=(args.deadline_ms * MS
                  if args.deadline_ms is not None else None),
    )
    cluster = Cluster(spec, config)
    model = build_model(args.model)
    names = cluster.deploy([(model, args.instances)])
    workload = PoissonWorkload(names, rate=args.rate,
                               num_requests=args.requests, seed=args.seed)
    requests = workload.generate()
    machine0 = cluster.machines[0].machine
    schedule = random_fault_schedule(
        [m.name for m in cluster.machines],
        args.faults, requests[-1].arrival_time, seed=args.seed,
        granularity=args.granularity,
        gpu_count=spec.gpu_count,
        link_names=machine0.link_names())
    report = cluster.run(requests, fault_schedule=schedule)
    print(format_cluster_report(report))
    accounted = report.completed + len(report.dropped) + len(report.shed)
    print(f"\nconservation: {report.submitted} submitted = "
          f"{report.completed} completed + {len(report.dropped)} dropped "
          f"+ {len(report.shed)} shed"
          f"{'' if accounted == report.submitted else '  [VIOLATED]'}")
    if cluster.auditor is not None:
        print(f"audit: {cluster.auditor.checks} invariant checks, "
              f"{len(cluster.auditor.violations)} violations")
    if accounted != report.submitted:
        print("error: requests dropped without accounting", file=sys.stderr)
        return 1
    return 0


def _loadgen_traffic(pattern: str, rate: float, duration: float,
                     instances: list[str], seed: int) -> typing.Any:
    from repro.loadgen import (
        ConstantRate,
        DiurnalRate,
        FlashCrowd,
        SyntheticTraffic,
        TrafficClass,
    )
    if pattern == "steady":
        classes = [TrafficClass("steady", ConstantRate(rate), instances)]
    elif pattern == "diurnal":
        # One full day/night cycle compressed into the run.
        classes = [TrafficClass(
            "diurnal", DiurnalRate(rate, amplitude=0.6, period=duration),
            instances)]
    elif pattern == "flash":
        burst = FlashCrowd(start=0.3 * duration,
                           duration=max(2.0, 0.1 * duration),
                           magnitude=10.0 * rate)
        classes = [TrafficClass("flash", ConstantRate(0.5 * rate) + burst,
                                instances)]
    else:  # mix: two QoS tenants over disjoint regional instance sets
        half = max(1, len(instances) // 2)
        burst = FlashCrowd(start=0.5 * duration,
                           duration=max(2.0, 0.1 * duration),
                           magnitude=5.0 * rate)
        classes = [
            TrafficClass(
                "premium",
                DiurnalRate(0.5 * rate, amplitude=0.5, period=duration),
                instances[:half], qos="premium"),
            TrafficClass("batch", ConstantRate(0.5 * rate) + burst,
                         instances[half:], qos="batch"),
        ]
    return SyntheticTraffic(classes, seed=seed)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.analysis import format_histogram
    from repro.loadgen import LoadGen, LoadGenConfig

    spec = machine_presets()[args.machine]()
    planner = DeepPlan(spec)
    model = build_model(args.model)
    modes = ("open", "closed") if args.mode == "both" else (args.mode,)
    reports = {}
    exit_code = 0
    for mode in modes:
        # A fresh machine/server per mode: both modes then see identical
        # initial state and (via the shared seed) identical intended
        # arrivals, so any difference in reported latency is purely the
        # measurement discipline.
        machine = Machine(Simulator(), spec)
        server = InferenceServer(machine, planner, ServerConfig(
            strategy=args.strategy, slo=args.slo_ms * MS, audit=args.audit))
        server.deploy([(model, args.instances)])
        traffic = _loadgen_traffic(args.pattern, args.rate, args.duration,
                                   list(server.instances), args.seed)
        config = LoadGenConfig(duration=args.duration, mode=mode,
                               clients=args.clients,
                               max_requests=args.max_requests)
        report = LoadGen(server, traffic, config).run()
        reports[mode] = report
        summary = report.summary()
        rows = [[key, value] for key, value in summary.items()]
        print(format_table(
            ["metric", "value"], rows,
            title=f"{mode}-loop {args.pattern} traffic @ {args.rate} req/s "
                  f"for {args.duration:.0f} s (seed {args.seed})"))
        if args.histogram and report.metrics.records:
            print()
            print(format_histogram(report.metrics.histogram,
                                   title=f"{mode}-loop latency distribution"))
        for qos, hist in sorted(report.by_qos.items()):
            if len(report.by_qos) > 1:
                print(f"  qos {qos}: p99 {hist.percentile(99) / MS:.2f} ms "
                      f"({hist.total} requests)")
        if args.audit and server.auditor is not None:
            violations = server.auditor.check_quiesce(
                raise_on_violation=False)
            print(f"  audit: {server.auditor.checks} invariant checks, "
                  f"{len(violations)} violations")
            if violations:
                exit_code = 1
        accounted = report.completed + report.shed + report.dropped
        if accounted != report.offered:
            print(f"error: {report.offered} offered but only {accounted} "
                  f"accounted for", file=sys.stderr)
            exit_code = 1
        print()
    if len(modes) == 2:
        open_p99 = reports["open"].metrics.p99_latency
        closed_p99 = reports["closed"].metrics.p99_latency
        gap = open_p99 / closed_p99 if closed_p99 > 0 else float("inf")
        print(f"coordinated-omission gap: open p99 {open_p99 / MS:.2f} ms "
              f"vs closed p99 {closed_p99 / MS:.2f} ms ({gap:.1f}x) — the "
              f"closed loop stopped offering load whenever the system "
              f"stalled")
    return exit_code


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.audit import run_differential_suite
    from repro.audit.differential import TIME_TOLERANCE

    spec = machine_presets()[args.machine]()
    results = run_differential_suite(num_cases=args.cases, seed=args.seed,
                                     machine_spec=spec)
    rows = []
    for r in results:
        rows.append([r.case.strategy, r.case.batch_size, r.model_name,
                     r.num_layers, f"{r.cold_divergence:.1e}",
                     f"{r.warm_divergence:.1e}", f"{r.prediction_ratio:.4f}",
                     len(r.violations), "ok" if r.agrees else "FAIL"])
    print(format_table(
        ["strategy", "batch", "model", "layers", "cold div (s)",
         "warm div (s)", "sim/pred", "violations", "verdict"],
        rows, title=f"differential audit: coalesced vs per-layer paths "
                    f"on {args.machine} (tolerance {TIME_TOLERANCE:g} s)"))
    failed = [r for r in results if not r.agrees]
    bracket = [r for r in results if not r.prediction_brackets]
    print(f"\n{len(results) - len(failed)}/{len(results)} cases agree; "
          f"{len(bracket)} outside the prediction bracket")
    for r in failed:
        for v in r.violations[:5]:
            print(f"  {r.model_name}: {v}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
