"""Sharded trace replay: the coordinator, both backends, and the report.

:class:`ShardedReplay` partitions the fleet into contiguous machine
groups, builds one :class:`~repro.shard.worker.ShardWorker` recipe per
group, and drives them through bounded time epochs: route at the
boundary, let every shard simulate one epoch ahead (safe because the
router→machine latency guarantees no message lands earlier), ingest the
outcomes, reconcile conservation, repeat until every request is
terminal.

Two backends execute the identical protocol:

* ``serial`` — every shard steps in this process, in shard order.  This
  is the **differential oracle**: with ``num_shards=1`` it is a plain
  single-simulator replay, and because outcomes are independent of the
  grouping (see :mod:`repro.shard.worker`), any shard count must
  reproduce its results bit for bit;
* ``process`` — one ``spawn``-started worker per shard, exchanging
  columnar epoch messages (:func:`~repro.shard.protocol.pack_epoch`)
  over pipes.  Spawn (not fork) is deliberate: workers must prove they
  can rebuild identical state from the picklable
  :class:`~repro.shard.protocol.WorkerInit` alone, which is exactly what
  the determinism tests assert.

The route-ahead pipeline: because every delivery decided at boundary
``k`` is due no earlier than ``k + router_latency`` — inside epoch
``k+1`` — the broker can route epoch ``k+1`` *before* it has seen
epoch ``k``'s outcomes.  The drive loop therefore plans one epoch
ahead: routing for boundary ``k`` consumes machine snapshots from
boundary ``k-1``, and retries of epoch-``k`` failures queue for
boundary ``k+2``.  Both drive modes execute this same protocol —
``pipelined=True`` streams the planned epoch's commands to the workers
immediately and collects outcomes in arrival order (so fast shards
start epoch ``k+1`` while slow ones finish ``k``), ``pipelined=False``
holds the commands until all of epoch ``k`` is collected — so their
outcomes are bit-identical; only the wall-clock overlap differs.
Outcomes are *ingested* in shard-id order regardless of arrival order,
keeping the broker's bookkeeping canonical.

The process backend is crash-tolerant: every worker interaction runs
under a supervision deadline (``ShardConfig.worker_timeout``, kept
honest by heartbeat frames), faults classify into the typed
:mod:`repro.shard.supervision` hierarchy instead of hangs or raw
``EOFError``, and recoverable faults — death, wedge, poisoned frame —
trigger a respawn with bounded exponential backoff followed by a
journal fast-forward to the exact pre-crash boundary.  Because shard
state is a pure function of ``(WorkerInit, epoch commands)``, the
recovered replay stays bit-identical to a crash-free run; the
:class:`~repro.shard.supervision.ChaosEvent` harness exists to prove
that differentially rather than assume it.

Global metrics are *rebuilt*, not merged: float summation is
association-sensitive, so the report's collector is reconstructed from
all completion records in canonical ``(finished_at, request_id)`` order
— per-shard histograms are still merged and cross-checked against it
count-for-count.
"""

from __future__ import annotations

import collections
import dataclasses
import math
import multiprocessing
import multiprocessing.connection
import os
import struct
import time
import typing

from repro.audit.shard import (
    GlobalLedger,
    ShardLedger,
    reconcile,
    resume_divergence,
)
from repro.cluster.cluster import ClusterConfig
from repro.cluster.faults import DEVICE_FAULT_ACTIONS, FaultEvent
from repro.errors import WorkloadError
from repro.hw.specs import MachineSpec
from repro.models.graph import ModelSpec
from repro.models.zoo import build_model
from repro.serving.histogram import LatencyHistogram, merge_histograms
from repro.serving.metrics import MetricsCollector
from repro.serving.server import ServerConfig
from repro.serving.workload import Request
from repro.shard.broker import EpochBroker, PendingRequest
from repro.shard.protocol import (
    Completion,
    Delivery,
    EpochOutcome,
    ShardConfig,
    ShardFinal,
    ShedNotice,
    WorkerInit,
    pack_epoch,
    unpack_heartbeat,
    unpack_outcome,
)
from repro.shard.supervision import (
    ENV_CHAOS,
    RECOVERABLE_FAULTS,
    CommandJournal,
    ShardDeterminismError,
    ShardRecoveryExhaustedError,
    WorkerCrashError,
    WorkerProtocolError,
    WorkerTimeoutError,
    parse_chaos_spec,
    resolve_worker_error,
)
from repro.shard.worker import ShardWorker, shard_entry
from repro.units import MS

__all__ = ["ShardedReplay", "ShardedReport", "partition_machines"]

Outcome = tuple[typing.Any, ...]


def partition_machines(names: typing.Sequence[str],
                       num_shards: int) -> list[tuple[str, ...]]:
    """Split *names* into contiguous groups with sizes differing by <= 1."""
    if num_shards < 1:
        raise WorkloadError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > len(names):
        raise WorkloadError(
            f"cannot split {len(names)} machine(s) into {num_shards} shards")
    base, extra = divmod(len(names), num_shards)
    groups, start = [], 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        groups.append(tuple(names[start:start + size]))
        start += size
    return groups


@dataclasses.dataclass
class ShardedReport:
    """Outcome of one sharded replay."""

    #: Canonical global collector, rebuilt from records sorted by
    #: ``(finished_at, request_id)`` — identical for every shard count.
    metrics: MetricsCollector
    ledger: GlobalLedger
    shard_ledgers: list[ShardLedger]
    #: Per-shard latency histograms (mergeable; their merge matches the
    #: canonical histogram count-for-count).
    shard_histograms: list[LatencyHistogram]
    finals: list[ShardFinal]
    completions: list[Completion]
    sheds: list[ShedNotice]
    dropped: list[PendingRequest]
    epochs: int
    duration: float
    num_shards: int
    backend: str
    #: Worker processes respawned after a crash/wedge/poisoned frame.
    worker_restarts: int = 0
    #: Journalled epochs re-executed to fast-forward respawned workers.
    replayed_epochs: int = 0
    #: True when the process replay exhausted its restart budget and
    #: this report came from the opt-in serial rerun instead.
    serial_fallback: bool = False

    @property
    def completed(self) -> int:
        return len(self.metrics.records)

    def merged_histogram(self) -> LatencyHistogram:
        """The order-insensitive merge of the per-shard histograms."""
        return merge_histograms(self.shard_histograms)

    def outcome_signature(self) -> tuple[Outcome, ...]:
        """Every request's exact terminal outcome, in request-id order.

        Two replays of one trace are *bit-identical* iff their
        signatures compare equal: completions carry the serving machine
        and the exact submit/start/finish timestamps, sheds their
        machine and time, drops just the fact (their attempt count is
        pinned at ``max_retries + 1`` by construction).
        """
        rows: list[Outcome] = []
        for completion in self.completions:
            record = completion.record
            rows.append((record.request_id, "completed",
                         completion.machine_name, record.submitted_at,
                         record.started_at, record.finished_at,
                         record.cold_start, record.degraded))
        for shed in self.sheds:
            rows.append((shed.request_id, "shed", shed.machine_name,
                         shed.time))
        for pending in self.dropped:
            rows.append((pending.request_id, "dropped"))
        return tuple(sorted(rows))

    def summary(self) -> dict[str, float]:
        data = {
            "submitted": float(self.ledger.submitted),
            "completed": float(self.completed),
            "dropped": float(self.ledger.dropped),
            "shed": float(self.ledger.shed),
            "retries": float(self.ledger.retries),
            "epochs": float(self.epochs),
            "shards": float(self.num_shards),
            "worker_restarts": float(self.worker_restarts),
            "replayed_epochs": float(self.replayed_epochs),
        }
        if self.metrics.records:
            data.update(p99_ms=self.metrics.p99_latency / MS,
                        goodput=self.metrics.goodput,
                        cold_start_rate=self.metrics.cold_start_rate)
        return data


class _SerialShard:
    """In-process shard driver (the oracle backend).

    Commands queue and execute lazily at collection, so the pipelined
    drive can issue epoch ``k+1`` before collecting epoch ``k`` exactly
    as it does against process workers — a worker process would buffer
    the command in its pipe the same way.
    """

    #: In-process shards cannot crash independently of the coordinator,
    #: so their recovery counters are identically zero.
    restarts = 0
    replayed_epochs = 0

    def __init__(self, init: WorkerInit) -> None:
        self.worker = ShardWorker(init)
        self._commands: collections.deque[tuple[float, list[Delivery]]] = \
            collections.deque()

    def begin_epoch(self, horizon: float,
                    deliveries: list[Delivery]) -> None:
        self._commands.append((horizon, deliveries))

    def poll(self) -> bool:
        """An outcome can be produced without blocking."""
        return True

    def wait_handle(self) -> typing.Any:
        return None

    def collect_epoch(self) -> EpochOutcome:
        horizon, deliveries = self._commands.popleft()
        return self.worker.run_epoch(horizon, deliveries)

    def finish(self) -> ShardFinal:
        return self.worker.finish()

    def stop(self) -> None:
        pass


#: Extra deadline slack while a worker boots: spawn plus model planning
#: can legitimately take far longer than one epoch's compute.
_SPAWN_GRACE = 30.0
#: Seconds granted at each escalation step of :func:`_stop_process`.
_STOP_GRACE = 5.0
#: Ceiling on the exponential restart backoff.
_MAX_BACKOFF = 5.0
#: Pipe-poll slice while supervising; bounds deadline-check latency.
_POLL_SLICE = 0.25

#: Exceptions the columnar decoders can raise on a truncated or
#: corrupted frame — numpy's ``frombuffer`` and the struct module do not
#: funnel through :class:`~repro.errors.WorkloadError`.
_DECODE_ERRORS = (WorkloadError, ValueError, IndexError, KeyError,
                  UnicodeDecodeError, struct.error)


def _stop_process(process: typing.Any,
                  grace: float = _STOP_GRACE) -> "int | None":
    """Reap *process* with escalation: join → terminate → kill.

    Each step gets *grace* seconds before the next; ``kill`` cannot be
    ignored, so the final unbounded join always returns.  ``Process.join``
    alone keeps the process object's sentinel fd open, so repeated
    replays used to accumulate two fds per shard per run —
    ``Process.close`` releases it.  Returns the exit code (``None`` if
    the process never started).
    """
    if process.pid is not None:
        process.join(timeout=grace)
        if process.is_alive():
            process.terminate()
            process.join(timeout=grace)
        if process.is_alive():
            # SIGTERM ignored or blocked: a polite stop must still
            # never leave a zombie behind.
            process.kill()
            process.join()
    exitcode = process.exitcode
    process.close()
    return exitcode


class _ProcessShard:
    """Pipe-connected, supervised spawn-process shard driver.

    Epoch commands and outcomes travel as packed columnar messages
    (:func:`~repro.shard.protocol.pack_epoch` /
    :func:`~repro.shard.protocol.pack_outcome`); the low-rate
    ready/finish/stop control messages stay plain pickles.

    Supervision: every receive is bounded by
    ``ShardConfig.worker_timeout`` measured from the worker's last frame
    — heartbeats acknowledging each epoch command keep the liveness
    clock honest while a deep command backlog drains.  Faults are
    classified into the :mod:`repro.shard.supervision` hierarchy, and
    the recoverable ones (death, wedge, poisoned frame) trigger respawn
    with bounded exponential backoff plus a journal fast-forward that
    restores the worker to its exact pre-crash boundary; the replayed
    epochs' ledgers are cross-checked against the journal so a
    divergent recovery is caught, not propagated.
    """

    def __init__(self, init: WorkerInit, context: typing.Any,
                 config: ShardConfig) -> None:
        self.shard_id = init.shard_id
        self._context = context
        self._config = config
        self._journal = CommandJournal(init)
        #: Recovery counters surfaced in ``ShardedReport.summary()``.
        self.restarts = 0
        self.replayed_epochs = 0
        self._process: typing.Any = None
        self._conn: typing.Any = None
        #: Non-heartbeat frames drained off the pipe by :meth:`_pump`.
        self._inbox: collections.deque[tuple[typing.Any, ...]] = \
            collections.deque()
        self._eof = False
        self._last_signal = time.monotonic()
        try:
            self._spawn(init)
        except BaseException:
            # Partial construction must not leak the pipe fds or the
            # worker process: release everything before re-raising.
            self.stop()
            raise

    # -- liveness and receive --------------------------------------------------------

    def _spawn(self, init: WorkerInit) -> None:
        self._conn, child = self._context.Pipe()
        self._inbox.clear()
        self._eof = False
        try:
            self._process = self._context.Process(
                target=shard_entry, args=(child, init),
                name=f"repro-shard{init.shard_id}", daemon=True)
            self._process.start()
        finally:
            child.close()
        self._last_signal = time.monotonic()
        self._recv("ready", extra_grace=_SPAWN_GRACE)

    def _pump(self) -> None:
        """Drain every frame already sitting in the pipe into the inbox.

        Heartbeats are consumed here: they advance the liveness clock
        and never reach callers.  A beat that fails to decode becomes a
        ``("poisoned", ...)`` sentinel so the fault surfaces as a typed
        error on the next receive instead of being dropped.
        """
        while self._conn is not None and not self._eof:
            try:
                if not self._conn.poll(0):
                    return
                message = self._conn.recv()
            except (EOFError, OSError):
                self._eof = True
                return
            self._last_signal = time.monotonic()
            if message[0] == "beat":
                try:
                    unpack_heartbeat(message[1])
                except Exception:
                    self._inbox.append(("poisoned", "heartbeat"))
                continue
            self._inbox.append(message)

    def _exitcode(self) -> "int | None":
        if self._process is None:
            return None
        self._process.join(timeout=1.0)
        return self._process.exitcode

    def _recv(self, kind: str, extra_grace: float = 0.0) -> typing.Any:
        """Receive the next ``kind`` frame under the supervision deadline.

        Raises a typed fault instead of blocking forever:
        :class:`WorkerCrashError` on EOF,
        :class:`WorkerTimeoutError` when no frame (heartbeats included)
        arrives within ``worker_timeout + extra_grace`` seconds,
        :class:`WorkerProtocolError` on poisoned or out-of-order
        frames, and the resolved worker-side exception for ``error``
        frames.  A ``worker_timeout`` of 0 disables the deadline.
        """
        timeout = self._config.worker_timeout
        deadline = timeout + extra_grace
        while True:
            self._pump()
            if self._inbox:
                message = self._inbox.popleft()
                if message[0] == "poisoned":
                    raise WorkerProtocolError(
                        self.shard_id,
                        f"worker sent a poisoned {message[1]} frame")
                if message[0] == "error":
                    if len(message) == 4:
                        raise resolve_worker_error(
                            self.shard_id, message[1], message[2],
                            message[3])
                    raise WorkerProtocolError(
                        self.shard_id,
                        f"worker sent a malformed error frame: "
                        f"{message[:2]!r}...")
                if message[0] != kind:
                    raise WorkerProtocolError(
                        self.shard_id,
                        f"protocol error: expected {kind!r}, got "
                        f"{message[0]!r}")
                return message[1] if len(message) > 1 else None
            if self._eof:
                raise WorkerCrashError(
                    self.shard_id, self._exitcode(),
                    context=f"while the broker waited for {kind!r}")
            if timeout > 0:
                waited = time.monotonic() - self._last_signal
                if waited >= deadline:
                    raise WorkerTimeoutError(self.shard_id, deadline,
                                             kind)
                self._conn.poll(min(_POLL_SLICE, deadline - waited))
            else:
                self._conn.poll(None)

    # -- recovery --------------------------------------------------------------------

    def _abort_worker(self) -> None:
        """Tear down the current (presumed dead or wedged) incarnation."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self._process is not None:
            _stop_process(self._process)
            self._process = None
        self._inbox.clear()
        self._eof = False

    def _fast_forward(self) -> None:
        """Replay the journal into a freshly spawned worker.

        Strict request-response below the acked boundary — send command
        ``i``, then receive and verify outcome ``i`` — keeps the pipe
        from filling with unread outcome frames (a bulk resend could
        deadlock both ends on a large journal).  Commands past the
        acked boundary are streamed without waiting, restoring exactly
        the in-flight state the dead worker had under the pipelined
        drive.  Each replayed outcome's ledger must match the journal:
        shard state is a pure function of (init, commands), so any
        divergence means the bit-identity contract is broken and
        recovery must not continue.
        """
        journal = self._journal
        for index, packed in enumerate(journal.commands):
            try:
                self._conn.send(("epoch", packed))
            except (OSError, ValueError):
                raise WorkerCrashError(
                    self.shard_id, self._exitcode(),
                    context="during fast-forward") from None
            if index >= journal.acked:
                continue
            payload = self._recv("outcome")
            try:
                outcome = unpack_outcome(payload)
            except _DECODE_ERRORS:
                raise WorkerProtocolError(
                    self.shard_id,
                    f"fast-forward outcome for epoch {index} failed to "
                    f"decode") from None
            violations = resume_divergence(
                journal.ledgers[index], outcome.ledger,
                shard_id=self.shard_id, epoch=index)
            if violations:
                detail = "; ".join(v.detail for v in violations)
                raise ShardDeterminismError(
                    self.shard_id,
                    f"fast-forward diverged from the journal at epoch "
                    f"{index}: {detail}")
            self.replayed_epochs += 1

    def _recover(self, fault: BaseException) -> None:
        """Respawn and fast-forward after a recoverable *fault*.

        Bounded exponential backoff between attempts; after
        ``max_worker_restarts`` total respawns the replay degrades to a
        clean :class:`ShardRecoveryExhaustedError` carrying the last
        fault as its ``__cause__``.  Non-recoverable faults raised
        during fast-forward (worker-side exceptions, determinism
        divergence) propagate immediately — a respawn would fail
        identically.
        """
        while True:
            self._abort_worker()
            if self.restarts >= self._config.max_worker_restarts:
                raise ShardRecoveryExhaustedError(
                    self.shard_id, self.restarts, fault) from fault
            self.restarts += 1
            backoff = min(
                self._config.restart_backoff * 2 ** (self.restarts - 1),
                _MAX_BACKOFF)
            if backoff > 0:
                time.sleep(backoff)
            try:
                self._spawn(self._journal.respawn_init())
                self._fast_forward()
                return
            except RECOVERABLE_FAULTS as next_fault:
                fault = next_fault

    # -- the shard-driver protocol ---------------------------------------------------

    def begin_epoch(self, horizon: float,
                    deliveries: list[Delivery]) -> None:
        packed = pack_epoch(horizon, deliveries)
        self._journal.record_command(packed)
        try:
            self._conn.send(("epoch", packed))
        except (OSError, ValueError):
            # The command is already journalled, so recovery's
            # fast-forward delivers it — do not resend here.
            self._recover(WorkerCrashError(
                self.shard_id, self._exitcode(),
                context="while the broker sent an epoch command"))

    def poll(self) -> bool:
        """A frame — or evidence of a fault — is ready without blocking."""
        self._pump()
        if self._inbox or self._eof:
            return True
        timeout = self._config.worker_timeout
        return (timeout > 0
                and time.monotonic() - self._last_signal >= timeout)

    def wait_handle(self) -> typing.Any:
        return self._conn

    def collect_epoch(self) -> EpochOutcome:
        while True:
            try:
                payload = self._recv("outcome")
            except RECOVERABLE_FAULTS as fault:
                self._recover(fault)
                continue
            try:
                outcome = unpack_outcome(payload)
            except _DECODE_ERRORS:
                # The chaos harness's "corrupt" kind lands here: the
                # frame arrived but will not decode.  The journal still
                # holds the command, so a respawned worker recomputes
                # and resends this epoch's outcome.
                self._recover(WorkerProtocolError(
                    self.shard_id,
                    "outcome frame failed to decode (truncated or "
                    "corrupt)"))
                continue
            self._journal.record_outcome(outcome.ledger.copy())
            return outcome

    def finish(self) -> ShardFinal:
        while True:
            try:
                self._conn.send(("finish",))
            except (OSError, ValueError):
                self._recover(WorkerCrashError(
                    self.shard_id, self._exitcode(),
                    context="while the broker requested finals"))
                continue
            try:
                final = self._recv("final")
            except RECOVERABLE_FAULTS as fault:
                # finish is not journalled (it is idempotent given the
                # journal): recover to the last boundary and re-ask.
                self._recover(fault)
                continue
            return typing.cast(ShardFinal, final)

    def stop(self) -> None:
        """Shut down and release the pipe and the process (idempotent)."""
        if self._conn is not None:
            try:
                self._conn.send(("stop",))
            except (OSError, BrokenPipeError, ValueError):
                pass
            self._conn.close()
            self._conn = None
        if self._process is not None:
            _stop_process(self._process)
            self._process = None


class ShardedReplay:
    """Epoch-synchronized replay of one trace over a partitioned fleet."""

    def __init__(self, spec: MachineSpec,
                 config: ClusterConfig = ClusterConfig(),
                 shard: ShardConfig = ShardConfig()) -> None:
        if config.num_standby:
            raise WorkloadError(
                "sharded replay covers the base fleet only; standby "
                "machines (and the autoscaler) need the single-simulator "
                "cluster")
        if config.autoscale is not None:
            raise WorkloadError(
                "autoscaling is a continuous-time control loop; sharded "
                "replay does not replicate it — use the single-simulator "
                "cluster")
        if config.breaker_cooldown > 0:
            raise WorkloadError(
                "the cold-start circuit breaker is a continuous-time "
                "control loop the epoch broker does not replicate; pass "
                "breaker_cooldown=0 (the ClusterConfig default enables "
                "it) or use the single-simulator cluster")
        if shard.num_shards > config.num_machines:
            raise WorkloadError(
                f"{shard.num_shards} shards need at least that many "
                f"machines, got {config.num_machines}")
        self.spec = spec
        self.config = config
        self.shard = shard
        # Chaos: the explicit config plus (process backend only) the
        # REPRO_SHARD_CHAOS environment spec.  Env-injected chaos never
        # touches the serial oracle, so a chaos-injected process run can
        # still be differentially checked against it in-process.
        chaos = tuple(shard.chaos)
        if shard.backend == "process":
            env_spec = os.environ.get(ENV_CHAOS, "")
            if env_spec:
                chaos += parse_chaos_spec(env_spec)
        for event in chaos:
            if event.shard_id >= shard.num_shards:
                raise WorkloadError(
                    f"chaos event targets shard {event.shard_id} but "
                    f"the replay has {shard.num_shards} shard(s)")
        self._chaos = chaos
        self.machine_names = tuple(f"m{i}"
                                   for i in range(config.num_machines))
        self.groups = partition_machines(self.machine_names,
                                         shard.num_shards)
        self._shard_of = {name: index
                          for index, group in enumerate(self.groups)
                          for name in group}
        #: (machine, instance, model) placements in global deploy order.
        self._placements: list[tuple[str, str, str]] = []
        self._instance_models: dict[str, str] = {}
        self._replicas: dict[str, list[str]] = {}
        self._model_counts: dict[str, int] = {}
        self._slot = 0

    # -- placement (mirrors Cluster.deploy round-robin) -------------------------------

    @property
    def instance_names(self) -> list[str]:
        return list(self._instance_models)

    def deploy(self, catalog: typing.Sequence[tuple[ModelSpec | str, int]]
               ) -> list[str]:
        """Place ``count`` logical instances of each model on the fleet.

        Accepts zoo model names or :class:`~repro.models.graph.ModelSpec`
        objects (only the name travels to the workers — each shard
        rebuilds the model from the zoo, so a passed spec must *be* its
        zoo entry: a customized spec would be silently swapped for the
        zoo's version and is rejected instead).  Replica assignment is
        the same round-robin the single-simulator cluster uses, so a
        given catalog produces the same placement either way.
        """
        created = []
        for model, count in catalog:
            if isinstance(model, str):
                model_name = model
            else:
                model_name = model.name
                try:
                    zoo_model = build_model(model_name)
                except KeyError:
                    raise WorkloadError(
                        f"sharded replay rebuilds models from the zoo by "
                        f"name, and {model_name!r} is not a zoo model; "
                        f"custom ModelSpecs need the single-simulator "
                        f"cluster") from None
                if model != zoo_model:
                    raise WorkloadError(
                        f"ModelSpec {model_name!r} differs from the zoo "
                        f"model of the same name; the workers rebuild "
                        f"models from the zoo, so a customized spec would "
                        f"be silently substituted — use the "
                        f"single-simulator cluster for custom models")
            if count < 1:
                raise WorkloadError(
                    f"instance count must be >= 1, got {count}")
            start = self._model_counts.get(model_name, 0)
            for k in range(start, start + count):
                instance = f"{model_name}#{k}"
                replicas = []
                for r in range(self.config.replication):
                    machine = self.machine_names[
                        (self._slot + r) % len(self.machine_names)]
                    replicas.append(machine)
                    self._placements.append((machine, instance, model_name))
                self._instance_models[instance] = model_name
                self._replicas[instance] = replicas
                self._model_counts[model_name] = k + 1
                created.append(instance)
                self._slot += 1
        return created

    # -- the epoch loop ---------------------------------------------------------------

    def _worker_inits(self, fault_schedule: typing.Sequence[FaultEvent]
                      ) -> list[WorkerInit]:
        known = set(self.machine_names)
        for event in fault_schedule:
            if event.machine_name not in known:
                raise WorkloadError(f"fault event targets unknown machine "
                                    f"{event.machine_name!r}")
        watch = any(event.action in DEVICE_FAULT_ACTIONS
                    for event in fault_schedule)
        server = ServerConfig(strategy=self.config.strategy,
                              slo=self.config.slo, prewarm=False,
                              deadline=self.config.deadline,
                              audit=self.config.audit)
        inits = []
        for shard_id, group in enumerate(self.groups):
            members = set(group)
            inits.append(WorkerInit(
                shard_id=shard_id,
                spec=self.spec,
                machine_names=group,
                placements=tuple(p for p in self._placements
                                 if p[0] in members),
                server=server,
                prewarm=self.config.prewarm,
                audit=self.config.audit,
                fault_schedule=tuple(e for e in fault_schedule
                                     if e.machine_name in members),
                watch_device_faults=watch,
                # Serial shards never read init.chaos (injection lives
                # in the process entry point), so attaching it
                # unconditionally keeps the oracle chaos-free for free.
                chaos=tuple(e for e in self._chaos
                            if e.shard_id == shard_id)))
        return inits

    def run(self, requests: typing.Sequence[Request],
            fault_schedule: typing.Sequence[FaultEvent] = ()
            ) -> ShardedReport:
        """Serve *requests* to termination (completed, shed, or dropped).

        With ``ShardConfig.serial_fallback`` on, a process-backend run
        whose restart budget is exhausted is rerun once on the serial
        backend — the same protocol, bit-identical outcomes — and the
        returned report is flagged ``serial_fallback=True``.
        """
        if not self._placements:
            raise WorkloadError("no instances deployed")
        if not requests:
            raise WorkloadError("no requests to serve")
        unknown = ({r.instance_name for r in requests}
                   - set(self._instance_models))
        if unknown:
            raise WorkloadError(f"requests target unknown instances: "
                                f"{sorted(unknown)[:5]}")
        try:
            return self._execute(requests, fault_schedule,
                                 self.shard.backend)
        except ShardRecoveryExhaustedError:
            if not self.shard.serial_fallback:
                raise
            report = self._execute(requests, fault_schedule, "serial")
            return dataclasses.replace(report, serial_fallback=True)

    def _execute(self, requests: typing.Sequence[Request],
                 fault_schedule: typing.Sequence[FaultEvent],
                 backend: str) -> ShardedReport:
        broker = EpochBroker(
            spec=self.spec, policy=self.config.policy,
            strategy=self.config.strategy,
            instance_models=self._instance_models,
            replicas=self._replicas,
            machine_names=self.machine_names,
            max_retries=self.config.max_retries,
            retry_backoff=self.config.retry_backoff,
            router_latency=self.shard.router_latency)
        for request in requests:
            broker.submit(request)
        inits = self._worker_inits(fault_schedule)
        # Build incrementally inside the try so a failure constructing
        # shard k still stops (and releases the fds of) shards 0..k-1.
        shards: list[typing.Any] = []
        try:
            if backend == "process":
                context = multiprocessing.get_context("spawn")
                for init in inits:
                    shards.append(_ProcessShard(init, context,
                                                self.shard))
            else:
                for init in inits:
                    shards.append(_SerialShard(init))
            return self._drive(broker, shards, backend)
        finally:
            for shard in shards:
                shard.stop()

    def _plan_epoch(self, broker: EpochBroker, now: float,
                    epoch_length: float, shards: list[typing.Any]
                    ) -> "tuple[float, list[list[Delivery]], int] | None":
        """Route one epoch at boundary *now*; ``None`` when quiesced.

        Returns ``(horizon, per-shard deliveries, routed count)``.  The
        plan is a pure function of broker state, so the planning
        sequence — including idle fast-forward jumps — is identical for
        every grouping, backend and drive mode.
        """
        if broker.done():
            return None
        routed = broker.route_epoch(now)
        if broker.done():
            # route_epoch can quiesce the replay by itself: every
            # remaining pending request was dropped as unroutable
            # (retries exhausted with all its replicas down) and
            # nothing is in flight, so there is no epoch left to
            # simulate — and no next_ready to fast-forward to.  The
            # preflight entry booked for the aborted epoch is empty and
            # inert.
            return None
        routed_count = sum(len(d) for d in routed.values())
        if not routed_count and broker.outstanding_total == 0:
            # Nothing in flight and the next retry/arrival is in the
            # future: jump the whole fleet to the epoch-grid boundary
            # that can route it.  Relative to *now* because the grid is
            # no longer global under adaptive epoch lengths.
            horizon = now + epoch_length * math.ceil(
                (broker.next_ready - now) / epoch_length)
            if horizon <= now:
                horizon = now + epoch_length
        else:
            horizon = now + epoch_length
        per_shard: list[list[Delivery]] = [[] for _ in shards]
        for machine_name, deliveries in routed.items():
            per_shard[self._shard_of[machine_name]].extend(deliveries)
        for deliveries in per_shard:
            deliveries.sort(key=lambda d: (d.deliver_at, d.request_id))
        return horizon, per_shard, routed_count

    def _adapted_length(self, epoch_length: float, work: int) -> float:
        """One deterministic step of the adaptive epoch controller.

        Doubles when the last planning cycle carried under half the
        work target, halves when it carried over twice the target —
        exact binary scaling, bounded by the lookahead floor and
        ``ShardConfig.epoch_ceiling``.  *work* is a global count
        (routed deliveries plus outcome events), so every shard count
        and backend takes the identical step sequence.
        """
        target = self.shard.epoch_work_target
        if work > 2 * target:
            shrunk = epoch_length * 0.5
            if shrunk >= self.shard.router_latency:
                return shrunk
        elif 2 * work < target:
            grown = epoch_length * 2.0
            if grown <= self.shard.epoch_ceiling:
                return grown
        return epoch_length

    def _collect_epoch(self, shards: list[typing.Any],
                       pipelined: bool) -> list[EpochOutcome]:
        """Collect one outcome per shard, sorted by shard id.

        The lock-step drive blocks on each shard in order; the
        pipelined drive drains whichever shards have reported (the
        overlap win: unpacking fast shards' outcomes while slow ones
        still simulate) and sleeps on the pipes only when none are
        ready.  Under supervision the sleep is sliced so a worker that
        wedges without closing its pipe still trips its deadline
        (``_ProcessShard.poll`` reports deadline expiry as readiness
        and ``collect_epoch`` turns it into recovery or a typed fault).
        """
        if not pipelined:
            return [shard.collect_epoch() for shard in shards]
        supervised = self.shard.worker_timeout > 0
        remaining = dict(enumerate(shards))
        outcomes: list[EpochOutcome] = []
        while remaining:
            progressed = False
            for index in sorted(remaining):
                if remaining[index].poll():
                    outcomes.append(remaining.pop(index).collect_epoch())
                    progressed = True
            if remaining and not progressed:
                multiprocessing.connection.wait(
                    [shard.wait_handle()
                     for shard in remaining.values()],
                    timeout=_POLL_SLICE if supervised else None)
        outcomes.sort(key=lambda outcome: outcome.shard_id)
        return outcomes

    def _drive(self, broker: EpochBroker, shards: list[typing.Any],
               backend: str) -> ShardedReport:
        pipelined = self.shard.pipelined
        epoch_length = self.shard.epoch_length
        completions: list[Completion] = []
        sheds: list[ShedNotice] = []
        horizon_time, epochs = 0.0, 0
        #: Outcome events of the most recently ingested epoch — the
        #: feedback half of the adaptive controller's work signal.
        last_events = 0
        ledgers: list[ShardLedger] = [ShardLedger(shard_id=i)
                                      for i in range(len(shards))]

        def issue(plan: tuple[float, list[list[Delivery]], int]) -> None:
            horizon, per_shard, _ = plan
            for shard, deliveries in zip(shards, per_shard):
                shard.begin_epoch(horizon, deliveries)

        queue: collections.deque[tuple[float, list[list[Delivery]], int]] \
            = collections.deque()
        plan = self._plan_epoch(broker, 0.0, epoch_length, shards)
        if plan is not None:
            epochs += 1
            queue.append(plan)
            issue(plan)
        while queue:
            current = queue[0]
            horizon = current[0]
            if self.shard.adaptive_epochs:
                epoch_length = self._adapted_length(
                    epoch_length, current[2] + last_events)
            # Route one epoch ahead of the one in flight: its snapshots
            # date from the boundary *before* `current`'s outcomes.
            nxt = self._plan_epoch(broker, horizon, epoch_length, shards)
            if nxt is not None:
                epochs += 1
                if epochs > self.shard.max_epochs:
                    raise WorkloadError(
                        f"replay did not quiesce within "
                        f"{self.shard.max_epochs} epochs")
                queue.append(nxt)
                if pipelined:
                    issue(nxt)
            outcomes = self._collect_epoch(shards, pipelined)
            for outcome in outcomes:
                broker.ingest(outcome)
                completions.extend(outcome.completions)
                sheds.extend(outcome.sheds)
                ledgers[outcome.shard_id] = outcome.ledger
            last_events = sum(len(o.completions) + len(o.failures)
                              + len(o.sheds) for o in outcomes)
            for outcome in outcomes:
                broker.check_shard(outcome)
            reconcile(broker.ledger, ledgers,
                      pending=broker.pending_count,
                      outstanding=broker.outstanding_total,
                      in_transit=broker.in_transit_total)
            broker.retire_epoch()
            queue.popleft()
            if nxt is not None and not pipelined:
                issue(nxt)
            horizon_time = horizon
        finals = [shard.finish() for shard in shards]
        ledgers = [final.ledger for final in finals]
        reconcile(broker.ledger, ledgers, pending=0, outstanding=0)
        records = sorted((c.record for c in completions),
                         key=lambda r: (r.finished_at, r.request_id))
        metrics = MetricsCollector.from_records(
            records, slo=self.config.slo,
            shed=broker.ledger.shed, dropped=broker.ledger.dropped)
        shard_histograms = [LatencyHistogram.from_dict(final.histogram)
                            for final in finals]
        self._check_histograms(metrics, shard_histograms)
        return ShardedReport(
            metrics=metrics,
            ledger=broker.ledger,
            shard_ledgers=ledgers,
            shard_histograms=shard_histograms,
            finals=finals,
            completions=completions,
            sheds=sheds,
            dropped=list(broker.dropped),
            epochs=epochs,
            duration=horizon_time,
            num_shards=len(shards),
            backend=backend,
            worker_restarts=sum(s.restarts for s in shards),
            replayed_epochs=sum(s.replayed_epochs for s in shards))

    @staticmethod
    def _check_histograms(metrics: MetricsCollector,
                          shard_histograms: list[LatencyHistogram]) -> None:
        """The shards' merged histogram must match the canonical one.

        Bucket counts, totals and min/max are order-insensitive, so they
        must agree exactly; only the running ``sum`` may differ in its
        last bits (float addition is not associative), which is exactly
        why the canonical collector is rebuilt instead of merged.
        """
        merged = merge_histograms(shard_histograms)
        canonical = metrics.histogram
        if (merged.counts != canonical.counts
                or merged.total != canonical.total):
            raise WorkloadError(
                "per-shard histograms disagree with the canonical global "
                "histogram — the sharded replay lost or duplicated a "
                "completion")
