"""Sharded trace replay: the coordinator, both backends, and the report.

:class:`ShardedReplay` partitions the fleet into contiguous machine
groups, builds one :class:`~repro.shard.worker.ShardWorker` recipe per
group, and drives them through bounded time epochs: route at the
boundary, let every shard simulate one epoch ahead (safe because the
router→machine latency guarantees no message lands earlier), ingest the
outcomes, reconcile conservation, repeat until every request is
terminal.

Two backends execute the identical protocol:

* ``serial`` — every shard steps in this process, in shard order.  This
  is the **differential oracle**: with ``num_shards=1`` it is a plain
  single-simulator replay, and because outcomes are independent of the
  grouping (see :mod:`repro.shard.worker`), any shard count must
  reproduce its results bit for bit;
* ``process`` — one ``spawn``-started worker per shard, exchanging
  columnar epoch messages (:func:`~repro.shard.protocol.pack_epoch`)
  over pipes.  Spawn (not fork) is deliberate: workers must prove they
  can rebuild identical state from the picklable
  :class:`~repro.shard.protocol.WorkerInit` alone, which is exactly what
  the determinism tests assert.

The route-ahead pipeline: because every delivery decided at boundary
``k`` is due no earlier than ``k + router_latency`` — inside epoch
``k+1`` — the broker can route epoch ``k+1`` *before* it has seen
epoch ``k``'s outcomes.  The drive loop therefore plans one epoch
ahead: routing for boundary ``k`` consumes machine snapshots from
boundary ``k-1``, and retries of epoch-``k`` failures queue for
boundary ``k+2``.  Both drive modes execute this same protocol —
``pipelined=True`` streams the planned epoch's commands to the workers
immediately and collects outcomes in arrival order (so fast shards
start epoch ``k+1`` while slow ones finish ``k``), ``pipelined=False``
holds the commands until all of epoch ``k`` is collected — so their
outcomes are bit-identical; only the wall-clock overlap differs.
Outcomes are *ingested* in shard-id order regardless of arrival order,
keeping the broker's bookkeeping canonical.

Global metrics are *rebuilt*, not merged: float summation is
association-sensitive, so the report's collector is reconstructed from
all completion records in canonical ``(finished_at, request_id)`` order
— per-shard histograms are still merged and cross-checked against it
count-for-count.
"""

from __future__ import annotations

import collections
import dataclasses
import math
import multiprocessing
import multiprocessing.connection
import typing

from repro.audit.shard import GlobalLedger, ShardLedger, reconcile
from repro.cluster.cluster import ClusterConfig
from repro.cluster.faults import DEVICE_FAULT_ACTIONS, FaultEvent
from repro.errors import WorkloadError
from repro.hw.specs import MachineSpec
from repro.models.graph import ModelSpec
from repro.models.zoo import build_model
from repro.serving.histogram import LatencyHistogram, merge_histograms
from repro.serving.metrics import MetricsCollector
from repro.serving.server import ServerConfig
from repro.serving.workload import Request
from repro.shard.broker import EpochBroker, PendingRequest
from repro.shard.protocol import (
    Completion,
    Delivery,
    EpochOutcome,
    ShardConfig,
    ShardFinal,
    ShedNotice,
    WorkerInit,
    pack_epoch,
    unpack_outcome,
)
from repro.shard.worker import ShardWorker, shard_entry
from repro.units import MS

__all__ = ["ShardedReplay", "ShardedReport", "partition_machines"]

Outcome = tuple[typing.Any, ...]


def partition_machines(names: typing.Sequence[str],
                       num_shards: int) -> list[tuple[str, ...]]:
    """Split *names* into contiguous groups with sizes differing by <= 1."""
    if num_shards < 1:
        raise WorkloadError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > len(names):
        raise WorkloadError(
            f"cannot split {len(names)} machine(s) into {num_shards} shards")
    base, extra = divmod(len(names), num_shards)
    groups, start = [], 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        groups.append(tuple(names[start:start + size]))
        start += size
    return groups


@dataclasses.dataclass
class ShardedReport:
    """Outcome of one sharded replay."""

    #: Canonical global collector, rebuilt from records sorted by
    #: ``(finished_at, request_id)`` — identical for every shard count.
    metrics: MetricsCollector
    ledger: GlobalLedger
    shard_ledgers: list[ShardLedger]
    #: Per-shard latency histograms (mergeable; their merge matches the
    #: canonical histogram count-for-count).
    shard_histograms: list[LatencyHistogram]
    finals: list[ShardFinal]
    completions: list[Completion]
    sheds: list[ShedNotice]
    dropped: list[PendingRequest]
    epochs: int
    duration: float
    num_shards: int
    backend: str

    @property
    def completed(self) -> int:
        return len(self.metrics.records)

    def merged_histogram(self) -> LatencyHistogram:
        """The order-insensitive merge of the per-shard histograms."""
        return merge_histograms(self.shard_histograms)

    def outcome_signature(self) -> tuple[Outcome, ...]:
        """Every request's exact terminal outcome, in request-id order.

        Two replays of one trace are *bit-identical* iff their
        signatures compare equal: completions carry the serving machine
        and the exact submit/start/finish timestamps, sheds their
        machine and time, drops just the fact (their attempt count is
        pinned at ``max_retries + 1`` by construction).
        """
        rows: list[Outcome] = []
        for completion in self.completions:
            record = completion.record
            rows.append((record.request_id, "completed",
                         completion.machine_name, record.submitted_at,
                         record.started_at, record.finished_at,
                         record.cold_start, record.degraded))
        for shed in self.sheds:
            rows.append((shed.request_id, "shed", shed.machine_name,
                         shed.time))
        for pending in self.dropped:
            rows.append((pending.request_id, "dropped"))
        return tuple(sorted(rows))

    def summary(self) -> dict[str, float]:
        data = {
            "submitted": float(self.ledger.submitted),
            "completed": float(self.completed),
            "dropped": float(self.ledger.dropped),
            "shed": float(self.ledger.shed),
            "retries": float(self.ledger.retries),
            "epochs": float(self.epochs),
            "shards": float(self.num_shards),
        }
        if self.metrics.records:
            data.update(p99_ms=self.metrics.p99_latency / MS,
                        goodput=self.metrics.goodput,
                        cold_start_rate=self.metrics.cold_start_rate)
        return data


class _SerialShard:
    """In-process shard driver (the oracle backend).

    Commands queue and execute lazily at collection, so the pipelined
    drive can issue epoch ``k+1`` before collecting epoch ``k`` exactly
    as it does against process workers — a worker process would buffer
    the command in its pipe the same way.
    """

    def __init__(self, init: WorkerInit) -> None:
        self.worker = ShardWorker(init)
        self._commands: collections.deque[tuple[float, list[Delivery]]] = \
            collections.deque()

    def begin_epoch(self, horizon: float,
                    deliveries: list[Delivery]) -> None:
        self._commands.append((horizon, deliveries))

    def poll(self) -> bool:
        """An outcome can be produced without blocking."""
        return True

    def wait_handle(self) -> typing.Any:
        return None

    def collect_epoch(self) -> EpochOutcome:
        horizon, deliveries = self._commands.popleft()
        return self.worker.run_epoch(horizon, deliveries)

    def finish(self) -> ShardFinal:
        return self.worker.finish()

    def stop(self) -> None:
        pass


class _ProcessShard:
    """Pipe-connected spawn-process shard driver.

    Epoch commands and outcomes travel as packed columnar messages
    (:func:`~repro.shard.protocol.pack_epoch` /
    :func:`~repro.shard.protocol.pack_outcome`); the low-rate
    ready/finish/stop control messages stay plain pickles.
    """

    def __init__(self, init: WorkerInit,
                 context: typing.Any) -> None:
        self.shard_id = init.shard_id
        self._process: typing.Any = None
        self._conn, child = context.Pipe()
        try:
            self._process = context.Process(
                target=shard_entry, args=(child, init),
                name=f"repro-shard{init.shard_id}", daemon=True)
            self._process.start()
            child.close()
            self._expect("ready")
        except BaseException:
            # Partial construction must not leak the pipe fds or the
            # worker process: release everything before re-raising.
            child.close()
            self.stop()
            raise

    def _expect(self, kind: str) -> typing.Any:
        try:
            message = self._conn.recv()
        except EOFError:
            raise WorkloadError(
                f"shard {self.shard_id} worker exited unexpectedly "
                f"(exit code {self._process.exitcode})") from None
        if message[0] == "error":
            raise WorkloadError(f"shard worker failed: {message[1]}")
        if message[0] != kind:
            raise WorkloadError(
                f"shard {self.shard_id} protocol error: expected "
                f"{kind!r}, got {message[0]!r}")
        return message[1] if len(message) > 1 else None

    def begin_epoch(self, horizon: float,
                    deliveries: list[Delivery]) -> None:
        self._conn.send(("epoch", pack_epoch(horizon, deliveries)))

    def poll(self) -> bool:
        """A message (outcome or worker error) is waiting on the pipe."""
        return self._conn.poll(0)

    def wait_handle(self) -> typing.Any:
        return self._conn

    def collect_epoch(self) -> EpochOutcome:
        return unpack_outcome(self._expect("outcome"))

    def finish(self) -> ShardFinal:
        self._conn.send(("finish",))
        return typing.cast(ShardFinal, self._expect("final"))

    def stop(self) -> None:
        """Shut down and release the pipe and the process (idempotent).

        ``Process.join`` alone keeps the process object's sentinel fd
        open, so repeated replays used to accumulate two fds per shard
        per run; ``Process.close`` releases it.
        """
        if self._conn is not None:
            try:
                self._conn.send(("stop",))
            except (OSError, BrokenPipeError, ValueError):
                pass
            self._conn.close()
            self._conn = None
        if self._process is not None:
            if self._process.pid is not None:
                self._process.join(timeout=30)
                if self._process.is_alive():  # pragma: no cover - backstop
                    self._process.terminate()
                    self._process.join()
            self._process.close()
            self._process = None


class ShardedReplay:
    """Epoch-synchronized replay of one trace over a partitioned fleet."""

    def __init__(self, spec: MachineSpec,
                 config: ClusterConfig = ClusterConfig(),
                 shard: ShardConfig = ShardConfig()) -> None:
        if config.num_standby:
            raise WorkloadError(
                "sharded replay covers the base fleet only; standby "
                "machines (and the autoscaler) need the single-simulator "
                "cluster")
        if config.autoscale is not None:
            raise WorkloadError(
                "autoscaling is a continuous-time control loop; sharded "
                "replay does not replicate it — use the single-simulator "
                "cluster")
        if config.breaker_cooldown > 0:
            raise WorkloadError(
                "the cold-start circuit breaker is a continuous-time "
                "control loop the epoch broker does not replicate; pass "
                "breaker_cooldown=0 (the ClusterConfig default enables "
                "it) or use the single-simulator cluster")
        if shard.num_shards > config.num_machines:
            raise WorkloadError(
                f"{shard.num_shards} shards need at least that many "
                f"machines, got {config.num_machines}")
        self.spec = spec
        self.config = config
        self.shard = shard
        self.machine_names = tuple(f"m{i}"
                                   for i in range(config.num_machines))
        self.groups = partition_machines(self.machine_names,
                                         shard.num_shards)
        self._shard_of = {name: index
                          for index, group in enumerate(self.groups)
                          for name in group}
        #: (machine, instance, model) placements in global deploy order.
        self._placements: list[tuple[str, str, str]] = []
        self._instance_models: dict[str, str] = {}
        self._replicas: dict[str, list[str]] = {}
        self._model_counts: dict[str, int] = {}
        self._slot = 0

    # -- placement (mirrors Cluster.deploy round-robin) -------------------------------

    @property
    def instance_names(self) -> list[str]:
        return list(self._instance_models)

    def deploy(self, catalog: typing.Sequence[tuple[ModelSpec | str, int]]
               ) -> list[str]:
        """Place ``count`` logical instances of each model on the fleet.

        Accepts zoo model names or :class:`~repro.models.graph.ModelSpec`
        objects (only the name travels to the workers — each shard
        rebuilds the model from the zoo, so a passed spec must *be* its
        zoo entry: a customized spec would be silently swapped for the
        zoo's version and is rejected instead).  Replica assignment is
        the same round-robin the single-simulator cluster uses, so a
        given catalog produces the same placement either way.
        """
        created = []
        for model, count in catalog:
            if isinstance(model, str):
                model_name = model
            else:
                model_name = model.name
                try:
                    zoo_model = build_model(model_name)
                except KeyError:
                    raise WorkloadError(
                        f"sharded replay rebuilds models from the zoo by "
                        f"name, and {model_name!r} is not a zoo model; "
                        f"custom ModelSpecs need the single-simulator "
                        f"cluster") from None
                if model != zoo_model:
                    raise WorkloadError(
                        f"ModelSpec {model_name!r} differs from the zoo "
                        f"model of the same name; the workers rebuild "
                        f"models from the zoo, so a customized spec would "
                        f"be silently substituted — use the "
                        f"single-simulator cluster for custom models")
            if count < 1:
                raise WorkloadError(
                    f"instance count must be >= 1, got {count}")
            start = self._model_counts.get(model_name, 0)
            for k in range(start, start + count):
                instance = f"{model_name}#{k}"
                replicas = []
                for r in range(self.config.replication):
                    machine = self.machine_names[
                        (self._slot + r) % len(self.machine_names)]
                    replicas.append(machine)
                    self._placements.append((machine, instance, model_name))
                self._instance_models[instance] = model_name
                self._replicas[instance] = replicas
                self._model_counts[model_name] = k + 1
                created.append(instance)
                self._slot += 1
        return created

    # -- the epoch loop ---------------------------------------------------------------

    def _worker_inits(self, fault_schedule: typing.Sequence[FaultEvent]
                      ) -> list[WorkerInit]:
        known = set(self.machine_names)
        for event in fault_schedule:
            if event.machine_name not in known:
                raise WorkloadError(f"fault event targets unknown machine "
                                    f"{event.machine_name!r}")
        watch = any(event.action in DEVICE_FAULT_ACTIONS
                    for event in fault_schedule)
        server = ServerConfig(strategy=self.config.strategy,
                              slo=self.config.slo, prewarm=False,
                              deadline=self.config.deadline,
                              audit=self.config.audit)
        inits = []
        for shard_id, group in enumerate(self.groups):
            members = set(group)
            inits.append(WorkerInit(
                shard_id=shard_id,
                spec=self.spec,
                machine_names=group,
                placements=tuple(p for p in self._placements
                                 if p[0] in members),
                server=server,
                prewarm=self.config.prewarm,
                audit=self.config.audit,
                fault_schedule=tuple(e for e in fault_schedule
                                     if e.machine_name in members),
                watch_device_faults=watch))
        return inits

    def run(self, requests: typing.Sequence[Request],
            fault_schedule: typing.Sequence[FaultEvent] = ()
            ) -> ShardedReport:
        """Serve *requests* to termination (completed, shed, or dropped)."""
        if not self._placements:
            raise WorkloadError("no instances deployed")
        if not requests:
            raise WorkloadError("no requests to serve")
        unknown = ({r.instance_name for r in requests}
                   - set(self._instance_models))
        if unknown:
            raise WorkloadError(f"requests target unknown instances: "
                                f"{sorted(unknown)[:5]}")
        broker = EpochBroker(
            spec=self.spec, policy=self.config.policy,
            strategy=self.config.strategy,
            instance_models=self._instance_models,
            replicas=self._replicas,
            machine_names=self.machine_names,
            max_retries=self.config.max_retries,
            retry_backoff=self.config.retry_backoff,
            router_latency=self.shard.router_latency)
        for request in requests:
            broker.submit(request)
        inits = self._worker_inits(fault_schedule)
        # Build incrementally inside the try so a failure constructing
        # shard k still stops (and releases the fds of) shards 0..k-1.
        shards: list[typing.Any] = []
        try:
            if self.shard.backend == "process":
                context = multiprocessing.get_context("spawn")
                for init in inits:
                    shards.append(_ProcessShard(init, context))
            else:
                for init in inits:
                    shards.append(_SerialShard(init))
            return self._drive(broker, shards)
        finally:
            for shard in shards:
                shard.stop()

    def _plan_epoch(self, broker: EpochBroker, now: float,
                    epoch_length: float, shards: list[typing.Any]
                    ) -> "tuple[float, list[list[Delivery]], int] | None":
        """Route one epoch at boundary *now*; ``None`` when quiesced.

        Returns ``(horizon, per-shard deliveries, routed count)``.  The
        plan is a pure function of broker state, so the planning
        sequence — including idle fast-forward jumps — is identical for
        every grouping, backend and drive mode.
        """
        if broker.done():
            return None
        routed = broker.route_epoch(now)
        if broker.done():
            # route_epoch can quiesce the replay by itself: every
            # remaining pending request was dropped as unroutable
            # (retries exhausted with all its replicas down) and
            # nothing is in flight, so there is no epoch left to
            # simulate — and no next_ready to fast-forward to.  The
            # preflight entry booked for the aborted epoch is empty and
            # inert.
            return None
        routed_count = sum(len(d) for d in routed.values())
        if not routed_count and broker.outstanding_total == 0:
            # Nothing in flight and the next retry/arrival is in the
            # future: jump the whole fleet to the epoch-grid boundary
            # that can route it.  Relative to *now* because the grid is
            # no longer global under adaptive epoch lengths.
            horizon = now + epoch_length * math.ceil(
                (broker.next_ready - now) / epoch_length)
            if horizon <= now:
                horizon = now + epoch_length
        else:
            horizon = now + epoch_length
        per_shard: list[list[Delivery]] = [[] for _ in shards]
        for machine_name, deliveries in routed.items():
            per_shard[self._shard_of[machine_name]].extend(deliveries)
        for deliveries in per_shard:
            deliveries.sort(key=lambda d: (d.deliver_at, d.request_id))
        return horizon, per_shard, routed_count

    def _adapted_length(self, epoch_length: float, work: int) -> float:
        """One deterministic step of the adaptive epoch controller.

        Doubles when the last planning cycle carried under half the
        work target, halves when it carried over twice the target —
        exact binary scaling, bounded by the lookahead floor and
        ``ShardConfig.epoch_ceiling``.  *work* is a global count
        (routed deliveries plus outcome events), so every shard count
        and backend takes the identical step sequence.
        """
        target = self.shard.epoch_work_target
        if work > 2 * target:
            shrunk = epoch_length * 0.5
            if shrunk >= self.shard.router_latency:
                return shrunk
        elif 2 * work < target:
            grown = epoch_length * 2.0
            if grown <= self.shard.epoch_ceiling:
                return grown
        return epoch_length

    @staticmethod
    def _collect_epoch(shards: list[typing.Any],
                       pipelined: bool) -> list[EpochOutcome]:
        """Collect one outcome per shard, sorted by shard id.

        The lock-step drive blocks on each shard in order; the
        pipelined drive drains whichever shards have reported (the
        overlap win: unpacking fast shards' outcomes while slow ones
        still simulate) and sleeps on the pipes only when none are
        ready.
        """
        if not pipelined:
            return [shard.collect_epoch() for shard in shards]
        remaining = dict(enumerate(shards))
        outcomes: list[EpochOutcome] = []
        while remaining:
            progressed = False
            for index in sorted(remaining):
                if remaining[index].poll():
                    outcomes.append(remaining.pop(index).collect_epoch())
                    progressed = True
            if remaining and not progressed:
                multiprocessing.connection.wait(
                    [shard.wait_handle() for shard in remaining.values()])
        outcomes.sort(key=lambda outcome: outcome.shard_id)
        return outcomes

    def _drive(self, broker: EpochBroker,
               shards: list[typing.Any]) -> ShardedReport:
        pipelined = self.shard.pipelined
        epoch_length = self.shard.epoch_length
        completions: list[Completion] = []
        sheds: list[ShedNotice] = []
        time, epochs = 0.0, 0
        #: Outcome events of the most recently ingested epoch — the
        #: feedback half of the adaptive controller's work signal.
        last_events = 0
        ledgers: list[ShardLedger] = [ShardLedger(shard_id=i)
                                      for i in range(len(shards))]

        def issue(plan: tuple[float, list[list[Delivery]], int]) -> None:
            horizon, per_shard, _ = plan
            for shard, deliveries in zip(shards, per_shard):
                shard.begin_epoch(horizon, deliveries)

        queue: collections.deque[tuple[float, list[list[Delivery]], int]] \
            = collections.deque()
        plan = self._plan_epoch(broker, 0.0, epoch_length, shards)
        if plan is not None:
            epochs += 1
            queue.append(plan)
            issue(plan)
        while queue:
            current = queue[0]
            horizon = current[0]
            if self.shard.adaptive_epochs:
                epoch_length = self._adapted_length(
                    epoch_length, current[2] + last_events)
            # Route one epoch ahead of the one in flight: its snapshots
            # date from the boundary *before* `current`'s outcomes.
            nxt = self._plan_epoch(broker, horizon, epoch_length, shards)
            if nxt is not None:
                epochs += 1
                if epochs > self.shard.max_epochs:
                    raise WorkloadError(
                        f"replay did not quiesce within "
                        f"{self.shard.max_epochs} epochs")
                queue.append(nxt)
                if pipelined:
                    issue(nxt)
            outcomes = self._collect_epoch(shards, pipelined)
            for outcome in outcomes:
                broker.ingest(outcome)
                completions.extend(outcome.completions)
                sheds.extend(outcome.sheds)
                ledgers[outcome.shard_id] = outcome.ledger
            last_events = sum(len(o.completions) + len(o.failures)
                              + len(o.sheds) for o in outcomes)
            for outcome in outcomes:
                broker.check_shard(outcome)
            reconcile(broker.ledger, ledgers,
                      pending=broker.pending_count,
                      outstanding=broker.outstanding_total,
                      in_transit=broker.in_transit_total)
            broker.retire_epoch()
            queue.popleft()
            if nxt is not None and not pipelined:
                issue(nxt)
            time = horizon
        finals = [shard.finish() for shard in shards]
        ledgers = [final.ledger for final in finals]
        reconcile(broker.ledger, ledgers, pending=0, outstanding=0)
        records = sorted((c.record for c in completions),
                         key=lambda r: (r.finished_at, r.request_id))
        metrics = MetricsCollector.from_records(
            records, slo=self.config.slo,
            shed=broker.ledger.shed, dropped=broker.ledger.dropped)
        shard_histograms = [LatencyHistogram.from_dict(final.histogram)
                            for final in finals]
        self._check_histograms(metrics, shard_histograms)
        return ShardedReport(
            metrics=metrics,
            ledger=broker.ledger,
            shard_ledgers=ledgers,
            shard_histograms=shard_histograms,
            finals=finals,
            completions=completions,
            sheds=sheds,
            dropped=list(broker.dropped),
            epochs=epochs,
            duration=time,
            num_shards=len(shards),
            backend=self.shard.backend)

    @staticmethod
    def _check_histograms(metrics: MetricsCollector,
                          shard_histograms: list[LatencyHistogram]) -> None:
        """The shards' merged histogram must match the canonical one.

        Bucket counts, totals and min/max are order-insensitive, so they
        must agree exactly; only the running ``sum`` may differ in its
        last bits (float addition is not associative), which is exactly
        why the canonical collector is rebuilt instead of merged.
        """
        merged = merge_histograms(shard_histograms)
        canonical = metrics.histogram
        if (merged.counts != canonical.counts
                or merged.total != canonical.total):
            raise WorkloadError(
                "per-shard histograms disagree with the canonical global "
                "histogram — the sharded replay lost or duplicated a "
                "completion")
