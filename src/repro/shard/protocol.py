"""Wire types of the epoch-synchronized sharding protocol.

Everything in this module is a plain frozen dataclass of primitives —
picklable under the ``spawn`` start method, so worker processes receive
*values*, never live simulator state.  The protocol has four message
kinds:

* :class:`WorkerInit` — everything a worker needs to deterministically
  reconstruct its machine group from scratch: the machine spec, machine
  names, the instance placement (by model *name*, rebuilt from the zoo
  in-process), the server configuration, and the shard's fault
  sub-schedule;
* :class:`Delivery` — one routed request: the broker's dispatch
  decision, due at ``deliver_at`` (the routing instant plus the
  router→machine latency that provides the conservative lookahead);
* :class:`EpochOutcome` — what a shard reports back at each horizon:
  completions, failed attempts (orphans), sheds, one
  :class:`MachineSnapshot` per machine (the routing state for the next
  epoch), and its running :class:`~repro.audit.shard.ShardLedger`;
* :class:`ShardFinal` — the quiesce payload: the shard's merged latency
  histogram, per-machine statistics, and audit counters.

Lookahead discipline: a message created by routing at epoch boundary
``k·E`` is never due before ``k·E + router_latency``, and failures
observed during epoch ``k`` are re-routed no earlier than boundary
``(k+1)·E``.  Both rules hold for *any* partition of machines into
shards, which is what makes outcomes independent of the shard count.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.audit.shard import ShardLedger
from repro.cluster.faults import FaultEvent
from repro.errors import WorkloadError
from repro.hw.specs import MachineSpec
from repro.serving.metrics import RequestRecord
from repro.serving.server import ServerConfig
from repro.units import MS

__all__ = ["ShardConfig", "WorkerInit", "Delivery", "Completion",
           "AttemptFailure", "ShedNotice", "MachineSnapshot",
           "EpochOutcome", "MachineFinal", "ShardFinal", "BACKENDS"]

BACKENDS = ("serial", "process")


@dataclasses.dataclass(frozen=True)
class ShardConfig:
    """How to split and synchronize one replay."""

    #: Number of machine groups (= simulator instances = workers).
    num_shards: int = 1
    #: Synchronization quantum: shards run freely for this many seconds
    #: between barrier exchanges.  Longer epochs amortize the barrier
    #: but quantize retry re-routing more coarsely.
    epoch_length: float = 100 * MS
    #: Router→machine network latency — the conservative lookahead
    #: window.  Every dispatch decided at an epoch boundary is delivered
    #: at least this much later, so a shard can simulate a whole epoch
    #: without ever seeing a message from the same epoch's decisions.
    router_latency: float = 1 * MS
    #: ``serial`` steps every shard in this process (the differential
    #: oracle); ``process`` runs one spawn-started worker per shard.
    backend: str = "serial"
    #: Hard cap on epochs (defends against a schedule that can never
    #: quiesce; generous because epochs are short).
    max_epochs: int = 2_000_000

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise WorkloadError(
                f"num_shards must be >= 1, got {self.num_shards}")
        if self.epoch_length <= 0:
            raise WorkloadError(
                f"epoch_length must be positive, got {self.epoch_length}")
        if self.router_latency <= 0:
            raise WorkloadError(
                f"router_latency must be positive, got {self.router_latency}")
        if self.router_latency > self.epoch_length:
            raise WorkloadError(
                f"epoch_length ({self.epoch_length}) must be at least the "
                f"router latency ({self.router_latency}): the lookahead "
                f"window bounds how far a shard may run ahead")
        if self.backend not in BACKENDS:
            raise WorkloadError(f"unknown backend {self.backend!r}; "
                                f"options: {', '.join(BACKENDS)}")
        if self.max_epochs < 1:
            raise WorkloadError(
                f"max_epochs must be >= 1, got {self.max_epochs}")


@dataclasses.dataclass(frozen=True)
class WorkerInit:
    """Deterministic construction recipe for one shard."""

    shard_id: int
    spec: MachineSpec
    machine_names: tuple[str, ...]
    #: (machine_name, instance_name, model_name) in global deploy order.
    placements: tuple[tuple[str, str, str], ...]
    server: ServerConfig
    prewarm: bool
    audit: bool
    fault_schedule: tuple[FaultEvent, ...] = ()
    #: Whether servers wrap cold starts in abortable watch processes.
    #: Computed from the *global* fault schedule (any device-granular
    #: action arms every machine, as in the single-simulator cluster) —
    #: deriving it per shard would make event scheduling order, and so
    #: outcomes, depend on the grouping.
    watch_device_faults: bool = False


@dataclasses.dataclass(frozen=True)
class Delivery:
    """One routed request on its way to a machine."""

    request_id: int
    instance_name: str
    machine_name: str
    #: Run-relative arrival offset from the original trace.
    arrival_time: float
    #: Absolute original submission time (latency is measured from here
    #: across retries, exactly as in the single-simulator cluster).
    submitted_at: float
    #: Absolute time the machine receives the request.
    deliver_at: float
    batch_size: int = 1
    qos: str = "standard"
    #: Failed attempts so far (0 for the first dispatch).
    attempt: int = 0


@dataclasses.dataclass(frozen=True)
class Completion:
    """A request finished on one of the shard's machines."""

    machine_name: str
    record: RequestRecord


@dataclasses.dataclass(frozen=True)
class AttemptFailure:
    """A dispatched request came back without completing (orphaned)."""

    request_id: int
    #: Simulated time the attempt failed (crash, dead GPU, or delivery
    #: to a machine that went down in the meantime).
    time: float
    where: str


@dataclasses.dataclass(frozen=True)
class ShedNotice:
    """Admission control turned a request away (terminal)."""

    request_id: int
    machine_name: str
    time: float


@dataclasses.dataclass(frozen=True)
class MachineSnapshot:
    """One machine's routing-relevant state at an epoch horizon."""

    name: str
    #: :class:`~repro.cluster.machine.MachineState` value.
    state: str
    #: GPU-resident (warm) instance names.
    warm: frozenset[str]
    #: ``server.outstanding`` at the horizon (conservation cross-check).
    outstanding: int


@dataclasses.dataclass
class EpochOutcome:
    """Everything a shard reports at one epoch horizon."""

    shard_id: int
    horizon: float
    completions: list[Completion]
    failures: list[AttemptFailure]
    sheds: list[ShedNotice]
    snapshots: list[MachineSnapshot]
    ledger: ShardLedger


@dataclasses.dataclass
class MachineFinal:
    """Per-machine statistics for the final report."""

    name: str
    state: str
    served: int
    busy_time: float
    crashes: int
    gpu_failures: int


@dataclasses.dataclass
class ShardFinal:
    """A shard's quiesce payload."""

    shard_id: int
    #: Serialized per-shard :class:`~repro.serving.histogram.LatencyHistogram`.
    histogram: dict[str, typing.Any]
    ledger: ShardLedger
    machines: list[MachineFinal]
    #: Invariant checks executed by the shard's machine auditors.
    audit_checks: int
