"""Wire types of the epoch-synchronized sharding protocol.

Everything in this module is a plain frozen dataclass of primitives —
picklable under the ``spawn`` start method, so worker processes receive
*values*, never live simulator state.  The protocol has four message
kinds:

* :class:`WorkerInit` — everything a worker needs to deterministically
  reconstruct its machine group from scratch: the machine spec, machine
  names, the instance placement (by model *name*, rebuilt from the zoo
  in-process), the server configuration, and the shard's fault
  sub-schedule;
* :class:`Delivery` — one routed request: the broker's dispatch
  decision, due at ``deliver_at`` (the routing instant plus the
  router→machine latency that provides the conservative lookahead);
* :class:`EpochOutcome` — what a shard reports back at each horizon:
  completions, failed attempts (orphans), sheds, one
  :class:`MachineSnapshot` per machine (the routing state for the next
  epoch), and its running :class:`~repro.audit.shard.ShardLedger`;
* :class:`ShardFinal` — the quiesce payload: the shard's merged latency
  histogram, per-machine statistics, and audit counters.

A fifth, out-of-band kind carries no simulation state: heartbeat frames
(:func:`pack_heartbeat`) are sent by a worker when it dequeues an epoch
command, so the coordinator's supervision layer
(:mod:`repro.shard.supervision`) can tell a busy worker from a wedged
one without ever blocking unbounded on a pipe.

Lookahead discipline: a message created by routing at epoch boundary
``k·E`` is never due before ``k·E + router_latency``, and failures
observed during epoch ``k`` are re-routed no earlier than one epoch
*after* the boundary that learns about them.  Both rules hold for
*any* partition of machines into shards, which is what makes outcomes
independent of the shard count.

Columnar wire encoding
----------------------

The frozen dataclasses are the API surface (and what the serial oracle
passes around in-process), but the ``process`` backend does not pickle
them one by one: :func:`pack_epoch` / :func:`pack_outcome` flatten a
whole epoch batch into little-endian numpy record arrays behind a
versioned header, with one deduplicated string table per message.  A
pickled frozen :class:`Delivery` costs ~230 bytes; a packed row costs
45 plus its string-table amortization — an order of magnitude fewer
bytes per epoch, and the decode side rebuilds the exact dataclasses
(floats round-trip bit-for-bit: the columns are IEEE-754 doubles, the
same representation Python floats use in memory).
"""

from __future__ import annotations

import dataclasses
import struct
import typing

import numpy

from repro.audit.shard import ShardLedger
from repro.cluster.faults import FaultEvent
from repro.errors import WorkloadError
from repro.hw.specs import MachineSpec
from repro.serving.metrics import RequestRecord
from repro.serving.server import ServerConfig
from repro.shard.supervision import ChaosEvent
from repro.units import MS

__all__ = ["ShardConfig", "WorkerInit", "Delivery", "Completion",
           "AttemptFailure", "ShedNotice", "MachineSnapshot",
           "EpochOutcome", "MachineFinal", "ShardFinal", "BACKENDS",
           "WIRE_VERSION", "pack_epoch", "unpack_epoch",
           "pack_outcome", "unpack_outcome",
           "pack_heartbeat", "unpack_heartbeat"]

BACKENDS = ("serial", "process")


@dataclasses.dataclass(frozen=True)
class ShardConfig:
    """How to split and synchronize one replay."""

    #: Number of machine groups (= simulator instances = workers).
    num_shards: int = 1
    #: Synchronization quantum: shards run freely for this many seconds
    #: between barrier exchanges.  Longer epochs amortize the barrier
    #: but quantize retry re-routing more coarsely.
    epoch_length: float = 100 * MS
    #: Router→machine network latency — the conservative lookahead
    #: window.  Every dispatch decided at an epoch boundary is delivered
    #: at least this much later, so a shard can simulate a whole epoch
    #: without ever seeing a message from the same epoch's decisions.
    router_latency: float = 1 * MS
    #: ``serial`` steps every shard in this process (the differential
    #: oracle); ``process`` runs one spawn-started worker per shard.
    backend: str = "serial"
    #: Hard cap on epochs (defends against a schedule that can never
    #: quiesce; generous because epochs are short).
    max_epochs: int = 2_000_000
    #: Stream each epoch's commands to the workers as soon as routing
    #: decides them (the route-ahead pipeline), so a worker starts its
    #: next epoch without waiting for slower shards to finish theirs.
    #: ``False`` holds every command until the previous epoch's
    #: outcomes are all collected — the lock-step reference schedule.
    #: Both settings execute the identical routing protocol and produce
    #: bit-identical outcomes; the flag only moves wall-clock work.
    pipelined: bool = True
    #: Adapt ``epoch_length`` between the lookahead floor
    #: (``router_latency``) and ``max_epoch_length`` so each epoch
    #: carries roughly ``epoch_work_target`` protocol events.  The
    #: adaptation is a pure function of the (grouping-independent)
    #: per-epoch work counts, so every shard count and backend walks
    #: the identical boundary grid.
    adaptive_epochs: bool = False
    #: Protocol events (deliveries + completions + failures + sheds)
    #: the adaptive controller aims to carry per epoch.
    epoch_work_target: int = 256
    #: Upper bound for adaptive epoch growth; ``0`` derives
    #: ``64 * epoch_length``.
    max_epoch_length: float = 0.0
    #: Supervision deadline (wall-clock seconds) on every worker pipe
    #: interaction with the ``process`` backend: if no frame — outcome
    #: or heartbeat — arrives within this window, the worker is
    #: classified wedged (:class:`~repro.shard.supervision.WorkerTimeoutError`)
    #: and killed.  The worker heartbeats when it dequeues each epoch
    #: command, so the deadline effectively bounds one epoch's wall
    #: time.  ``0`` disables supervision (legacy blocking receives).
    worker_timeout: float = 60.0
    #: Respawn budget per worker: a crashed/wedged/poisoned worker is
    #: restarted (with bounded exponential backoff) and fast-forwarded
    #: from the command journal up to this many times before the replay
    #: fails with a typed
    #: :class:`~repro.shard.supervision.ShardRecoveryExhaustedError`.
    max_worker_restarts: int = 3
    #: Base of the restart backoff: restart *n* sleeps
    #: ``restart_backoff * 2**(n-1)`` wall seconds, capped at 5 s.
    restart_backoff: float = 0.05
    #: Opt-in degraded mode: when a process-backend replay exhausts its
    #: restart budget, rerun the whole replay on the serial backend
    #: (chaos injection stripped) instead of failing.
    serial_fallback: bool = False
    #: Injected worker faults for the chaos harness (``process``
    #: backend only); see :class:`~repro.shard.supervision.ChaosEvent`.
    chaos: tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise WorkloadError(
                f"num_shards must be >= 1, got {self.num_shards}")
        if self.epoch_length <= 0:
            raise WorkloadError(
                f"epoch_length must be positive, got {self.epoch_length}")
        if self.router_latency <= 0:
            raise WorkloadError(
                f"router_latency must be positive, got {self.router_latency}")
        if self.router_latency > self.epoch_length:
            raise WorkloadError(
                f"epoch_length ({self.epoch_length}) must be at least the "
                f"router latency ({self.router_latency}): the lookahead "
                f"window bounds how far a shard may run ahead")
        if self.backend not in BACKENDS:
            raise WorkloadError(f"unknown backend {self.backend!r}; "
                                f"options: {', '.join(BACKENDS)}")
        if self.max_epochs < 1:
            raise WorkloadError(
                f"max_epochs must be >= 1, got {self.max_epochs}")
        if self.epoch_work_target < 1:
            raise WorkloadError(
                f"epoch_work_target must be >= 1, got "
                f"{self.epoch_work_target}")
        if self.max_epoch_length < 0:
            raise WorkloadError(
                f"max_epoch_length must be >= 0, got "
                f"{self.max_epoch_length}")
        if 0 < self.max_epoch_length < self.epoch_length:
            raise WorkloadError(
                f"max_epoch_length ({self.max_epoch_length}) must be at "
                f"least epoch_length ({self.epoch_length})")
        if self.worker_timeout < 0:
            raise WorkloadError(
                f"worker_timeout must be >= 0, got {self.worker_timeout}")
        if self.max_worker_restarts < 0:
            raise WorkloadError(
                f"max_worker_restarts must be >= 0, got "
                f"{self.max_worker_restarts}")
        if self.restart_backoff < 0:
            raise WorkloadError(
                f"restart_backoff must be >= 0, got "
                f"{self.restart_backoff}")
        if self.chaos and self.backend != "process":
            raise WorkloadError(
                "chaos injection targets worker processes; it needs "
                "backend='process' (the serial oracle must stay "
                "fault-free to serve as the differential reference)")

    @property
    def epoch_ceiling(self) -> float:
        """The adaptive controller's upper bound on the epoch length."""
        if self.max_epoch_length > 0:
            return self.max_epoch_length
        return 64.0 * self.epoch_length


@dataclasses.dataclass(frozen=True)
class WorkerInit:
    """Deterministic construction recipe for one shard."""

    shard_id: int
    spec: MachineSpec
    machine_names: tuple[str, ...]
    #: (machine_name, instance_name, model_name) in global deploy order.
    placements: tuple[tuple[str, str, str], ...]
    server: ServerConfig
    prewarm: bool
    audit: bool
    fault_schedule: tuple[FaultEvent, ...] = ()
    #: Whether servers wrap cold starts in abortable watch processes.
    #: Computed from the *global* fault schedule (any device-granular
    #: action arms every machine, as in the single-simulator cluster) —
    #: deriving it per shard would make event scheduling order, and so
    #: outcomes, depend on the grouping.
    watch_device_faults: bool = False
    #: Injected worker faults for this shard (chaos harness; fired by
    #: ``shard_entry``'s command loop, ignored by the serial oracle).
    chaos: tuple[ChaosEvent, ...] = ()


@dataclasses.dataclass(frozen=True)
class Delivery:
    """One routed request on its way to a machine."""

    request_id: int
    instance_name: str
    machine_name: str
    #: Run-relative arrival offset from the original trace.
    arrival_time: float
    #: Absolute original submission time (latency is measured from here
    #: across retries, exactly as in the single-simulator cluster).
    submitted_at: float
    #: Absolute time the machine receives the request.
    deliver_at: float
    batch_size: int = 1
    qos: str = "standard"
    #: Failed attempts so far (0 for the first dispatch).
    attempt: int = 0


@dataclasses.dataclass(frozen=True)
class Completion:
    """A request finished on one of the shard's machines."""

    machine_name: str
    record: RequestRecord


@dataclasses.dataclass(frozen=True)
class AttemptFailure:
    """A dispatched request came back without completing (orphaned)."""

    request_id: int
    #: Simulated time the attempt failed (crash, dead GPU, or delivery
    #: to a machine that went down in the meantime).
    time: float
    where: str


@dataclasses.dataclass(frozen=True)
class ShedNotice:
    """Admission control turned a request away (terminal)."""

    request_id: int
    machine_name: str
    time: float


@dataclasses.dataclass(frozen=True)
class MachineSnapshot:
    """One machine's routing-relevant state at an epoch horizon."""

    name: str
    #: :class:`~repro.cluster.machine.MachineState` value.
    state: str
    #: GPU-resident (warm) instance names.
    warm: frozenset[str]
    #: ``server.outstanding`` at the horizon (conservation cross-check).
    outstanding: int


@dataclasses.dataclass
class EpochOutcome:
    """Everything a shard reports at one epoch horizon."""

    shard_id: int
    horizon: float
    completions: list[Completion]
    failures: list[AttemptFailure]
    sheds: list[ShedNotice]
    snapshots: list[MachineSnapshot]
    ledger: ShardLedger


@dataclasses.dataclass
class MachineFinal:
    """Per-machine statistics for the final report."""

    name: str
    state: str
    served: int
    busy_time: float
    crashes: int
    gpu_failures: int


@dataclasses.dataclass
class ShardFinal:
    """A shard's quiesce payload."""

    shard_id: int
    #: Serialized per-shard :class:`~repro.serving.histogram.LatencyHistogram`.
    histogram: dict[str, typing.Any]
    ledger: ShardLedger
    machines: list[MachineFinal]
    #: Invariant checks executed by the shard's machine auditors.
    audit_checks: int


# --------------------------------------------------------------------------
# Columnar wire encoding
#
# Layout of every packed message:
#
#   header   <4sHH>   magic ``RSHD``, wire version, message kind
#   scalars  (kind-specific: horizon, shard_id, row counts)
#   strings  one deduplicated table: <I> count, <I> blob length,
#            ``\x00``-joined UTF-8 blob
#   columns  little-endian packed numpy record arrays; string-valued
#            fields hold <i4> indices into the table
#
# All numeric columns are wide enough to be lossless (<i8> ids, <f8>
# times — the in-memory representation of Python floats), so unpacking
# rebuilds the exact frozen dataclasses the serial oracle passes
# around.  Row order is preserved verbatim.

WIRE_VERSION = 2

_MAGIC = b"RSHD"
_HEADER = struct.Struct("<4sHH")
_KIND_EPOCH = 1
_KIND_OUTCOME = 2
_KIND_HEARTBEAT = 3

_DELIVERY_DTYPE = numpy.dtype([
    ("request_id", "<i8"), ("instance", "<i4"), ("machine", "<i4"),
    ("arrival", "<f8"), ("submitted", "<f8"), ("deliver", "<f8"),
    ("batch", "<i4"), ("qos", "<i4"), ("attempt", "<i4")])

_COMPLETION_DTYPE = numpy.dtype([
    ("machine", "<i4"), ("request_id", "<i8"), ("instance", "<i4"),
    ("arrival", "<f8"), ("submitted", "<f8"), ("started", "<f8"),
    ("finished", "<f8"), ("cold", "u1"), ("degraded", "u1"),
    ("qos", "<i4")])

_FAILURE_DTYPE = numpy.dtype([
    ("request_id", "<i8"), ("time", "<f8"), ("where", "<i4")])

_SHED_DTYPE = numpy.dtype([
    ("request_id", "<i8"), ("machine", "<i4"), ("time", "<f8")])

_SNAPSHOT_DTYPE = numpy.dtype([
    ("name", "<i4"), ("state", "<i4"), ("outstanding", "<i8")])

_WARM_DTYPE = numpy.dtype([("snapshot", "<i4"), ("instance", "<i4")])

_EPOCH_SCALARS = struct.Struct("<dI")
_OUTCOME_SCALARS = struct.Struct("<qd5I6q")
_STRINGS_HEADER = struct.Struct("<II")


class _StringTable:
    """Deduplicating accumulator for a message's string column values."""

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self.strings: list[str] = []

    def add(self, value: str) -> int:
        slot = self._index.get(value)
        if slot is None:
            slot = self._index[value] = len(self.strings)
            self.strings.append(value)
        return slot

    def pack(self) -> bytes:
        blob = "\x00".join(self.strings).encode("utf-8")
        return _STRINGS_HEADER.pack(len(self.strings), len(blob)) + blob


def _unpack_strings(buf: bytes, offset: int) -> tuple[list[str], int]:
    count, size = _STRINGS_HEADER.unpack_from(buf, offset)
    offset += _STRINGS_HEADER.size
    blob = bytes(buf[offset:offset + size]).decode("utf-8")
    strings = blob.split("\x00") if count else []
    if len(strings) != count:
        raise WorkloadError(
            f"corrupt wire message: string table declares {count} "
            f"entries but decodes to {len(strings)}")
    return strings, offset + size


def _check_header(buf: bytes, kind: int) -> int:
    if len(buf) < _HEADER.size:
        raise WorkloadError(
            f"corrupt wire message: {len(buf)} bytes is shorter than "
            f"the {_HEADER.size}-byte header")
    magic, version, got_kind = _HEADER.unpack_from(buf, 0)
    if magic != _MAGIC:
        raise WorkloadError(
            f"corrupt wire message: bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WorkloadError(
            f"wire version mismatch: peer speaks v{version}, this "
            f"process speaks v{WIRE_VERSION} — coordinator and workers "
            f"must run the same build")
    if got_kind != kind:
        raise WorkloadError(
            f"unexpected wire message kind {got_kind} (wanted {kind})")
    return _HEADER.size


_HEARTBEAT_SCALARS = struct.Struct("<qq")


def pack_heartbeat(shard_id: int, epoch_index: int) -> bytes:
    """A liveness frame: the worker dequeued its ``epoch_index``-th command.

    Heartbeats reset the broker's supervision deadline, letting it
    distinguish a worker that accepted a command and is simulating from
    one that is wedged or dead.
    """
    return (_HEADER.pack(_MAGIC, WIRE_VERSION, _KIND_HEARTBEAT)
            + _HEARTBEAT_SCALARS.pack(shard_id, epoch_index))


def unpack_heartbeat(buf: bytes) -> tuple[int, int]:
    """Rebuild ``(shard_id, epoch_index)`` from :func:`pack_heartbeat`."""
    offset = _check_header(buf, _KIND_HEARTBEAT)
    if len(buf) < offset + _HEARTBEAT_SCALARS.size:
        raise WorkloadError(
            f"corrupt heartbeat frame: {len(buf)} bytes is shorter than "
            f"the {offset + _HEARTBEAT_SCALARS.size}-byte frame")
    return _HEARTBEAT_SCALARS.unpack_from(buf, offset)


def pack_epoch(horizon: float, deliveries: list[Delivery]) -> bytes:
    """Flatten one epoch command into a columnar byte string."""
    table = _StringTable()
    rows = numpy.empty(len(deliveries), dtype=_DELIVERY_DTYPE)
    for i, d in enumerate(deliveries):
        rows[i] = (d.request_id, table.add(d.instance_name),
                   table.add(d.machine_name), d.arrival_time,
                   d.submitted_at, d.deliver_at, d.batch_size,
                   table.add(d.qos), d.attempt)
    return b"".join((
        _HEADER.pack(_MAGIC, WIRE_VERSION, _KIND_EPOCH),
        _EPOCH_SCALARS.pack(horizon, len(deliveries)),
        table.pack(),
        rows.tobytes()))


def unpack_epoch(buf: bytes) -> tuple[float, list[Delivery]]:
    """Rebuild ``(horizon, deliveries)`` from :func:`pack_epoch` bytes."""
    offset = _check_header(buf, _KIND_EPOCH)
    horizon, count = _EPOCH_SCALARS.unpack_from(buf, offset)
    offset += _EPOCH_SCALARS.size
    strings, offset = _unpack_strings(buf, offset)
    rows = numpy.frombuffer(buf, dtype=_DELIVERY_DTYPE, count=count,
                            offset=offset)
    deliveries = [
        Delivery(request_id=rid, instance_name=strings[inst],
                 machine_name=strings[mach], arrival_time=arrival,
                 submitted_at=submitted, deliver_at=deliver,
                 batch_size=batch, qos=strings[qos], attempt=attempt)
        for rid, inst, mach, arrival, submitted, deliver, batch, qos,
        attempt in zip(
            rows["request_id"].tolist(), rows["instance"].tolist(),
            rows["machine"].tolist(), rows["arrival"].tolist(),
            rows["submitted"].tolist(), rows["deliver"].tolist(),
            rows["batch"].tolist(), rows["qos"].tolist(),
            rows["attempt"].tolist())]
    return horizon, deliveries


def pack_outcome(outcome: EpochOutcome) -> bytes:
    """Flatten one :class:`EpochOutcome` into a columnar byte string."""
    table = _StringTable()
    completions = numpy.empty(len(outcome.completions),
                              dtype=_COMPLETION_DTYPE)
    for i, c in enumerate(outcome.completions):
        r = c.record
        completions[i] = (table.add(c.machine_name), r.request_id,
                          table.add(r.instance_name), r.arrival_time,
                          r.submitted_at, r.started_at, r.finished_at,
                          r.cold_start, r.degraded, table.add(r.qos))
    failures = numpy.empty(len(outcome.failures), dtype=_FAILURE_DTYPE)
    for i, f in enumerate(outcome.failures):
        failures[i] = (f.request_id, f.time, table.add(f.where))
    sheds = numpy.empty(len(outcome.sheds), dtype=_SHED_DTYPE)
    for i, s in enumerate(outcome.sheds):
        sheds[i] = (s.request_id, table.add(s.machine_name), s.time)
    snapshots = numpy.empty(len(outcome.snapshots), dtype=_SNAPSHOT_DTYPE)
    warm_pairs: list[tuple[int, int]] = []
    for i, snap in enumerate(outcome.snapshots):
        snapshots[i] = (table.add(snap.name), table.add(snap.state),
                        snap.outstanding)
        # Frozensets iterate in hash order; sort so the bytes (though
        # not the decoded frozensets) are deterministic too.
        warm_pairs.extend((i, table.add(name))
                          for name in sorted(snap.warm))
    warm = numpy.array(warm_pairs or [], dtype=_WARM_DTYPE)
    ledger = outcome.ledger
    return b"".join((
        _HEADER.pack(_MAGIC, WIRE_VERSION, _KIND_OUTCOME),
        _OUTCOME_SCALARS.pack(
            outcome.shard_id, outcome.horizon,
            len(completions), len(failures), len(sheds),
            len(snapshots), len(warm_pairs),
            ledger.shard_id, ledger.scheduled, ledger.delivered,
            ledger.completed, ledger.shed, ledger.orphaned),
        table.pack(),
        completions.tobytes(), failures.tobytes(), sheds.tobytes(),
        snapshots.tobytes(), warm.tobytes()))


def unpack_outcome(buf: bytes) -> EpochOutcome:
    """Rebuild an :class:`EpochOutcome` from :func:`pack_outcome` bytes."""
    offset = _check_header(buf, _KIND_OUTCOME)
    (shard_id, horizon, n_completions, n_failures, n_sheds, n_snapshots,
     n_warm, ledger_shard, scheduled, delivered, completed, shed,
     orphaned) = _OUTCOME_SCALARS.unpack_from(buf, offset)
    offset += _OUTCOME_SCALARS.size
    strings, offset = _unpack_strings(buf, offset)

    rows = numpy.frombuffer(buf, dtype=_COMPLETION_DTYPE,
                            count=n_completions, offset=offset)
    offset += n_completions * _COMPLETION_DTYPE.itemsize
    completions = [
        Completion(machine_name=strings[mach], record=RequestRecord(
            request_id=rid, instance_name=strings[inst],
            arrival_time=arrival, submitted_at=submitted,
            started_at=started, finished_at=finished,
            cold_start=bool(cold), degraded=bool(degraded),
            qos=strings[qos]))
        for mach, rid, inst, arrival, submitted, started, finished,
        cold, degraded, qos in zip(
            rows["machine"].tolist(), rows["request_id"].tolist(),
            rows["instance"].tolist(), rows["arrival"].tolist(),
            rows["submitted"].tolist(), rows["started"].tolist(),
            rows["finished"].tolist(), rows["cold"].tolist(),
            rows["degraded"].tolist(), rows["qos"].tolist())]

    rows = numpy.frombuffer(buf, dtype=_FAILURE_DTYPE, count=n_failures,
                            offset=offset)
    offset += n_failures * _FAILURE_DTYPE.itemsize
    failures = [AttemptFailure(request_id=rid, time=time,
                               where=strings[where])
                for rid, time, where in zip(
                    rows["request_id"].tolist(), rows["time"].tolist(),
                    rows["where"].tolist())]

    rows = numpy.frombuffer(buf, dtype=_SHED_DTYPE, count=n_sheds,
                            offset=offset)
    offset += n_sheds * _SHED_DTYPE.itemsize
    sheds = [ShedNotice(request_id=rid, machine_name=strings[mach],
                        time=time)
             for rid, mach, time in zip(
                 rows["request_id"].tolist(), rows["machine"].tolist(),
                 rows["time"].tolist())]

    rows = numpy.frombuffer(buf, dtype=_SNAPSHOT_DTYPE, count=n_snapshots,
                            offset=offset)
    offset += n_snapshots * _SNAPSHOT_DTYPE.itemsize
    warm_rows = numpy.frombuffer(buf, dtype=_WARM_DTYPE, count=n_warm,
                                 offset=offset)
    warm_by_snapshot: dict[int, list[str]] = {}
    for snap_idx, inst in zip(warm_rows["snapshot"].tolist(),
                              warm_rows["instance"].tolist()):
        warm_by_snapshot.setdefault(snap_idx, []).append(strings[inst])
    snapshots = [
        MachineSnapshot(name=strings[name], state=strings[state],
                        warm=frozenset(warm_by_snapshot.get(i, ())),
                        outstanding=outstanding)
        for i, (name, state, outstanding) in enumerate(zip(
            rows["name"].tolist(), rows["state"].tolist(),
            rows["outstanding"].tolist()))]

    ledger = ShardLedger(
        shard_id=ledger_shard, scheduled=scheduled, delivered=delivered,
        completed=completed, shed=shed, orphaned=orphaned)
    return EpochOutcome(shard_id=shard_id, horizon=horizon,
                        completions=completions, failures=failures,
                        sheds=sheds, snapshots=snapshots, ledger=ledger)
