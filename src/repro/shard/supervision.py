"""Worker supervision for the sharded replay's process backend.

The spawn-process backend of :mod:`repro.shard.replay` talks to its
workers over pipes, and a pipe has exactly two failure signals: it goes
quiet (the worker wedged) or it goes away (the worker died).  Before
this layer existed the broker turned the first into an infinite hang in
a bare ``conn.recv()`` and the second into a raw ``EOFError`` — either
way the whole replay was lost.  This module gives the coordinator the
vocabulary and the bookkeeping to do better:

* a typed :class:`ShardFaultError` hierarchy classifying every way a
  worker interaction can fail — death (:class:`WorkerCrashError`),
  silence past the deadline (:class:`WorkerTimeoutError`), poisoned or
  truncated frames (:class:`WorkerProtocolError`), a worker-side
  exception that is *not* a workload error
  (:class:`WorkerInternalError`), recovery divergence
  (:class:`ShardDeterminismError`) and an exhausted restart budget
  (:class:`ShardRecoveryExhaustedError`);
* a :class:`CommandJournal` recording the :class:`WorkerInit` and every
  epoch command frame issued to one worker.  Shard state is a pure
  function of ``(init, epoch commands)`` — that is the spawn-backend
  determinism contract — so replaying the journal into a fresh process
  fast-forwards it to the exact pre-crash boundary, and the replay
  continues bit-identical to a crash-free run;
* a process-level chaos harness (:class:`ChaosEvent`,
  :func:`parse_chaos_spec`, :func:`random_chaos_plan`) that kills,
  stalls or frame-corrupts workers at chosen epochs so the recovery
  path is exercised by the differential sweep, not just trusted.

Only :data:`RECOVERABLE_FAULTS` trigger a respawn: crashes, timeouts
and poisoned frames are environmental, so a fresh deterministic rerun
can succeed.  Worker-side exceptions (:class:`WorkerInternalError` and
re-raised :class:`~repro.errors.ReproError` subclasses) are
deterministic — a respawned worker would fail identically — and
propagate immediately.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.errors import (
    OutOfGPUMemoryError,
    PlanError,
    ReproError,
    TopologyError,
    WorkloadError,
)

__all__ = [
    "CHAOS_KINDS",
    "ChaosEvent",
    "CommandJournal",
    "ENV_CHAOS",
    "RECOVERABLE_FAULTS",
    "ShardDeterminismError",
    "ShardFaultError",
    "ShardRecoveryExhaustedError",
    "WorkerCrashError",
    "WorkerInternalError",
    "WorkerProtocolError",
    "WorkerTimeoutError",
    "parse_chaos_spec",
    "random_chaos_plan",
    "resolve_worker_error",
]

#: Environment variable carrying a chaos spec (see
#: :func:`parse_chaos_spec`); applied to every process-backend replay in
#: the process, ignored by the serial oracle.
ENV_CHAOS = "REPRO_SHARD_CHAOS"


# --------------------------------------------------------------------------
# The fault hierarchy


class ShardFaultError(ReproError):
    """A shard worker interaction failed at the process/pipe level.

    Subclasses classify *how*; all carry ``shard_id`` so multi-shard
    post-mortems can attribute the fault.
    """

    def __init__(self, shard_id: int, message: str) -> None:
        super().__init__(f"shard {shard_id}: {message}")
        self.shard_id = shard_id


class WorkerCrashError(ShardFaultError):
    """The worker process died (EOF on the pipe / dead sentinel)."""

    def __init__(self, shard_id: int, exitcode: "int | None",
                 context: str = "") -> None:
        detail = (f"worker process died (exit code {exitcode})"
                  if exitcode is not None
                  else "worker process died (exit code unknown)")
        if context:
            detail += f" {context}"
        super().__init__(shard_id, detail)
        self.exitcode = exitcode


class WorkerTimeoutError(ShardFaultError):
    """No frame (outcome or heartbeat) arrived within the deadline."""

    def __init__(self, shard_id: int, timeout: float,
                 waiting_for: str) -> None:
        super().__init__(
            shard_id,
            f"worker sent no frame for {timeout:.1f}s while the broker "
            f"waited for {waiting_for!r} — worker presumed wedged")
        self.timeout = timeout


class WorkerProtocolError(ShardFaultError):
    """The worker sent a poisoned, truncated, or out-of-order frame."""


class WorkerInternalError(ShardFaultError):
    """The worker reported an exception that is not a workload error.

    The worker's error frame carries the exception class name, message
    and traceback text; anything that does not map back onto the
    :class:`~repro.errors.ReproError` hierarchy is an internal bug and
    surfaces as this type so callers can tell it apart from bad input.
    """

    def __init__(self, shard_id: int, exception_type: str,
                 message: str, traceback_text: str) -> None:
        super().__init__(
            shard_id,
            f"worker raised {exception_type}: {message}\n{traceback_text}")
        self.exception_type = exception_type
        self.remote_traceback = traceback_text


class ShardDeterminismError(ShardFaultError):
    """Two views of one deterministic computation disagree.

    Raised when a respawned worker's fast-forward replay diverges from
    the journalled pre-crash ledgers, or when the broker's boundary
    cross-check against a shard's reported outstanding fails — either
    way the bit-identity contract is broken and recovery must not
    continue.
    """


class ShardRecoveryExhaustedError(ShardFaultError):
    """The worker kept failing past ``max_worker_restarts`` respawns."""

    def __init__(self, shard_id: int, restarts: int,
                 last_fault: BaseException) -> None:
        super().__init__(
            shard_id,
            f"gave up after {restarts} restart(s); last fault: "
            f"{last_fault}")
        self.restarts = restarts
        self.last_fault = last_fault


#: Faults a respawn-and-fast-forward can fix.  Everything else is
#: deterministic (worker-side exceptions, divergence) and propagates.
RECOVERABLE_FAULTS = (WorkerCrashError, WorkerTimeoutError,
                      WorkerProtocolError)


#: Exception classes a worker error frame may be re-raised as by name.
#: AuditError is registered lazily to avoid a circular import.
def _error_registry() -> dict[str, type]:
    from repro.audit.invariants import AuditError
    registry: dict[str, type] = {
        cls.__name__: cls
        for cls in (WorkloadError, PlanError, TopologyError,
                    OutOfGPUMemoryError, ReproError)
    }
    registry["AuditError"] = AuditError
    return registry


def resolve_worker_error(shard_id: int, exception_type: str,
                         message: str,
                         traceback_text: str) -> BaseException:
    """Rebuild a worker-reported exception as its broker-side type.

    Known :class:`~repro.errors.ReproError` subclasses (and
    :class:`~repro.audit.invariants.AuditError`) come back as themselves
    so ``except WorkloadError`` keeps working across the process
    boundary; anything else — a genuine worker bug — becomes a
    :class:`WorkerInternalError` carrying the original class name and
    traceback.
    """
    cls = _error_registry().get(exception_type)
    if cls is not None and cls is not ReproError:
        try:
            return cls(f"shard {shard_id} worker: {message}\n"
                       f"{traceback_text}")
        except TypeError:  # pragma: no cover - odd constructor signature
            pass
    return WorkerInternalError(shard_id, exception_type, message,
                               traceback_text)


# --------------------------------------------------------------------------
# The command journal (deterministic restart-and-fast-forward)


class CommandJournal:
    """Everything needed to rebuild one worker at its last boundary.

    The broker appends every epoch command frame (the packed columnar
    bytes, verbatim) as it is issued, and the ledger of every outcome it
    has collected.  On worker death the coordinator respawns the process
    from :meth:`respawn_init` and replays :attr:`commands` in order; the
    outcomes of the first :attr:`acked` epochs are discarded after their
    ledgers are verified against the journalled ones — the conservation
    cross-check that proves the recovered worker walked the identical
    path — and the replay resumes at the first uncollected epoch.

    Memory is O(total commands issued): exact recovery requires the full
    history because shard state is a pure function of it.
    """

    def __init__(self, init: typing.Any) -> None:
        self.init = init
        #: Packed epoch command frames, in issue order.
        self.commands: list[bytes] = []
        #: Ledgers of collected outcomes, one per acked epoch.
        self.ledgers: list[typing.Any] = []

    @property
    def acked(self) -> int:
        """Epoch outcomes already collected (and therefore replayable)."""
        return len(self.ledgers)

    def record_command(self, packed: bytes) -> None:
        self.commands.append(packed)

    def record_outcome(self, ledger: typing.Any) -> None:
        self.ledgers.append(ledger)

    def respawn_init(self) -> typing.Any:
        """The :class:`WorkerInit` for a replacement worker.

        Chaos events at epochs the dead worker may already have reached
        (anything below the issued-command count) are stripped so an
        injected kill cannot re-fire during fast-forward and wedge the
        replay in a restart loop; events at not-yet-issued epochs are
        kept and will fire in the new incarnation.
        """
        chaos = getattr(self.init, "chaos", ())
        if not chaos:
            return self.init
        issued = len(self.commands)
        surviving = tuple(event for event in chaos
                          if event.epoch >= issued)
        if surviving == tuple(chaos):
            return self.init
        return dataclasses.replace(self.init, chaos=surviving)


# --------------------------------------------------------------------------
# The chaos harness


CHAOS_KINDS = ("kill", "stall", "corrupt")


@dataclasses.dataclass(frozen=True)
class ChaosEvent:
    """One injected worker fault, fired at a chosen epoch.

    ``epoch`` counts the epoch *commands* a worker incarnation has
    received (0-based); an event at an epoch the replay never reaches
    simply does not fire.  Kinds:

    * ``kill`` — the worker SIGKILLs itself on receiving the command
      (before any heartbeat), simulating an OOM-kill mid-epoch;
    * ``stall`` — the worker sleeps ``duration`` wall seconds before
      acknowledging, simulating a wedge; a stall longer than
      ``worker_timeout`` trips the broker's deadline, a shorter one
      merely delays and must leave outcomes untouched;
    * ``corrupt`` — the worker truncates its outcome frame, simulating
      a poisoned wire message.
    """

    shard_id: int
    epoch: int
    kind: str
    #: Wall-clock seconds for ``stall`` events (ignored otherwise).
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise WorkloadError(
                f"unknown chaos kind {self.kind!r}; options: "
                f"{', '.join(CHAOS_KINDS)}")
        if self.shard_id < 0:
            raise WorkloadError(
                f"chaos shard_id must be >= 0, got {self.shard_id}")
        if self.epoch < 0:
            raise WorkloadError(
                f"chaos epoch must be >= 0, got {self.epoch}")
        if self.kind == "stall" and self.duration <= 0:
            raise WorkloadError(
                f"stall events need a positive duration, got "
                f"{self.duration}")


def parse_chaos_spec(spec: str) -> tuple[ChaosEvent, ...]:
    """Parse a ``kind@shard:epoch[:duration]`` comma-separated spec.

    The format of the ``REPRO_SHARD_CHAOS`` environment variable and
    the CLI's ``--chaos-spec``, e.g. ``kill@0:2,stall@1:3:5.0`` — kill
    shard 0's worker at its 3rd epoch command, stall shard 1's worker
    for 5 s at its 4th.  Whitespace around entries is ignored; an empty
    spec yields no events.
    """
    events: list[ChaosEvent] = []
    for raw in spec.split(","):
        entry = raw.strip()
        if not entry:
            continue
        try:
            kind, _, target = entry.partition("@")
            parts = target.split(":")
            shard_id, epoch = int(parts[0]), int(parts[1])
            duration = float(parts[2]) if len(parts) > 2 else 0.0
        except (ValueError, IndexError):
            raise WorkloadError(
                f"malformed chaos entry {entry!r}; expected "
                f"kind@shard:epoch[:duration]") from None
        events.append(ChaosEvent(shard_id=shard_id, epoch=epoch,
                                 kind=kind.strip(), duration=duration))
    return tuple(events)


def random_chaos_plan(num_events: int, num_shards: int, max_epoch: int,
                      seed: int,
                      kinds: typing.Sequence[str] = CHAOS_KINDS,
                      stall_duration: float = 1.0
                      ) -> tuple[ChaosEvent, ...]:
    """A seeded random chaos plan for the differential sweep.

    Draws ``num_events`` (shard, epoch, kind) triples; at most one
    event lands on any (shard, epoch) pair so two injections cannot
    race within one worker incarnation.  Deterministic in *seed*.
    """
    if num_events < 0:
        raise WorkloadError(
            f"num_events must be >= 0, got {num_events}")
    for kind in kinds:
        if kind not in CHAOS_KINDS:
            raise WorkloadError(f"unknown chaos kind {kind!r}")
    rng = numpy.random.default_rng([seed, 0x5AFE])
    events: list[ChaosEvent] = []
    used: set[tuple[int, int]] = set()
    attempts = 0
    while len(events) < num_events and attempts < num_events * 20:
        attempts += 1
        shard_id = int(rng.integers(num_shards))
        epoch = int(rng.integers(max(1, max_epoch)))
        if (shard_id, epoch) in used:
            continue
        used.add((shard_id, epoch))
        kind = str(kinds[int(rng.integers(len(kinds)))])
        events.append(ChaosEvent(
            shard_id=shard_id, epoch=epoch, kind=kind,
            duration=stall_duration if kind == "stall" else 0.0))
    return tuple(events)
