"""Sharded parallel trace replay with a single-process differential oracle.

Large-fleet replays are embarrassingly parallel *between* epoch
boundaries: machines only interact through the router, and the
router→machine latency gives every shard a conservative lookahead window
it can simulate without seeing any message decided in the same epoch.
This package exploits that:

* :mod:`~repro.shard.protocol` — picklable epoch envelopes and the
  :class:`~repro.shard.protocol.ShardConfig` knobs;
* :mod:`~repro.shard.worker` — one machine group per simulator,
  stepped ``run_epoch(horizon, deliveries)`` at a time;
* :mod:`~repro.shard.broker` — the router as an epoch-boundary message
  broker: deterministic routing over snapshot views, retry/backoff/drop
  ladder, global conservation ledger;
* :mod:`~repro.shard.replay` — the coordinator with ``serial`` (the
  oracle) and ``process`` (spawn multiprocessing) backends and the
  canonical global report.

The headline property, enforced by the test tier: for a fixed trace,
seed and fault schedule, the outcome signature (every request's terminal
state and exact timestamps) is identical for any shard count and for
both backends.
"""

from repro.shard.broker import EpochBroker, PendingRequest
from repro.shard.protocol import (
    AttemptFailure,
    BACKENDS,
    Completion,
    Delivery,
    EpochOutcome,
    MachineFinal,
    MachineSnapshot,
    ShardConfig,
    ShardFinal,
    ShedNotice,
    WorkerInit,
)
from repro.shard.replay import (
    ShardedReplay,
    ShardedReport,
    partition_machines,
)
from repro.shard.worker import ShardWorker, shard_entry

__all__ = [
    "AttemptFailure",
    "BACKENDS",
    "Completion",
    "Delivery",
    "EpochBroker",
    "EpochOutcome",
    "MachineFinal",
    "MachineSnapshot",
    "PendingRequest",
    "ShardConfig",
    "ShardFinal",
    "ShardWorker",
    "ShardedReplay",
    "ShardedReport",
    "ShedNotice",
    "WorkerInit",
    "partition_machines",
    "shard_entry",
]
