"""Sharded parallel trace replay with a single-process differential oracle.

Large-fleet replays are embarrassingly parallel *between* epoch
boundaries: machines only interact through the router, and the
router→machine latency gives every shard a conservative lookahead window
it can simulate without seeing any message decided in the same epoch.
This package exploits that:

* :mod:`~repro.shard.protocol` — picklable epoch envelopes and the
  :class:`~repro.shard.protocol.ShardConfig` knobs;
* :mod:`~repro.shard.worker` — one machine group per simulator,
  stepped ``run_epoch(horizon, deliveries)`` at a time;
* :mod:`~repro.shard.broker` — the router as an epoch-boundary message
  broker: deterministic routing over snapshot views, retry/backoff/drop
  ladder, global conservation ledger;
* :mod:`~repro.shard.replay` — the coordinator with ``serial`` (the
  oracle) and ``process`` (spawn multiprocessing) backends and the
  canonical global report;
* :mod:`~repro.shard.supervision` — worker supervision for the process
  backend: the typed :class:`~repro.shard.supervision.ShardFaultError`
  hierarchy, the command journal behind deterministic
  restart-and-fast-forward recovery, and the
  :class:`~repro.shard.supervision.ChaosEvent` crash-injection harness.

The headline property, enforced by the test tier: for a fixed trace,
seed and fault schedule, the outcome signature (every request's terminal
state and exact timestamps) is identical for any shard count and for
both backends.
"""

from repro.shard.broker import EpochBroker, PendingRequest
from repro.shard.protocol import (
    AttemptFailure,
    BACKENDS,
    Completion,
    Delivery,
    EpochOutcome,
    MachineFinal,
    MachineSnapshot,
    ShardConfig,
    ShardFinal,
    ShedNotice,
    WorkerInit,
)
from repro.shard.replay import (
    ShardedReplay,
    ShardedReport,
    partition_machines,
)
from repro.shard.supervision import (
    CHAOS_KINDS,
    ChaosEvent,
    ENV_CHAOS,
    RECOVERABLE_FAULTS,
    ShardDeterminismError,
    ShardFaultError,
    ShardRecoveryExhaustedError,
    WorkerCrashError,
    WorkerInternalError,
    WorkerProtocolError,
    WorkerTimeoutError,
    parse_chaos_spec,
    random_chaos_plan,
)
from repro.shard.worker import ShardWorker, shard_entry

__all__ = [
    "AttemptFailure",
    "BACKENDS",
    "CHAOS_KINDS",
    "ChaosEvent",
    "Completion",
    "Delivery",
    "ENV_CHAOS",
    "EpochBroker",
    "EpochOutcome",
    "MachineFinal",
    "MachineSnapshot",
    "PendingRequest",
    "RECOVERABLE_FAULTS",
    "ShardConfig",
    "ShardDeterminismError",
    "ShardFaultError",
    "ShardFinal",
    "ShardRecoveryExhaustedError",
    "ShardWorker",
    "ShardedReplay",
    "ShardedReport",
    "ShedNotice",
    "WorkerCrashError",
    "WorkerInit",
    "WorkerInternalError",
    "WorkerProtocolError",
    "WorkerTimeoutError",
    "parse_chaos_spec",
    "partition_machines",
    "random_chaos_plan",
    "shard_entry",
]
