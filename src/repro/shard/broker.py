"""The epoch broker: routing, retries and accounting at epoch boundaries.

In sharded replay the router stops being a live object on the machines'
simulator and becomes a message broker that only acts at epoch
boundaries.  It routes from :class:`~repro.shard.protocol.MachineSnapshot`
views (machine state, warm set, outstanding count) reported by the
shards at the previous horizon, maintains its own backlog accounting
(the ``pending_cost`` charges the affinity policy scores), and applies
the cluster's retry/backoff/drop ladder to the failures shards report.

The broker's behavior is a pure function of the request sequence, the
fault schedule and the epoch grid — never of how machines are grouped
into shards — which is what lets the serial execution of this same
protocol serve as the differential oracle for the parallel one.

Route-ahead accounting: under the pipelined protocol the broker routes
epoch ``k+1`` *before* ingesting epoch ``k``'s outcomes, so its
outstanding charges temporarily include deliveries no shard ledger has
seen.  :meth:`EpochBroker.route_epoch` books each epoch's per-machine
routed counts into a preflight queue; :meth:`in_transit_for` /
:attr:`in_transit_total` expose the not-yet-ingested portion for the
conservation checks, and the coordinator calls :meth:`retire_epoch`
once an epoch's outcomes have been folded back in.

The per-request policy loop has a vectorized fast path (flat numpy
arrays over the boundary snapshots, first-occurrence ``argmin``
replicating the scalar ``(score, name)`` tie-break bit for bit) used
for batches of at least ``_VEC_MIN_BATCH`` requests when
:func:`repro.fastpath.enabled`; the scalar loop remains the
differential reference.

Scope: the epoch protocol covers the base fleet with the three routing
policies (round-robin, least-loaded, affinity).  Autoscaling, standby
activation and the cold-start circuit breaker are continuous-time
control loops on the single-simulator path and are deliberately not
replicated here — :class:`~repro.shard.replay.ShardedReplay` rejects
configurations that enable them.
"""

from __future__ import annotations

import collections
import dataclasses
import heapq
import typing

import numpy

from repro import fastpath
from repro.audit.shard import GlobalLedger
from repro.core.deepplan import DeepPlan, Strategy
from repro.core.plan import ExecutionPlan
from repro.errors import WorkloadError
from repro.shard.supervision import ShardDeterminismError
from repro.models.zoo import build_model
from repro.serving.workload import Request
from repro.shard.protocol import Delivery, EpochOutcome, MachineSnapshot

__all__ = ["EpochBroker", "PendingRequest"]

#: Smallest ready batch worth the vectorized policy loop's setup cost.
_VEC_MIN_BATCH = 8


@dataclasses.dataclass(frozen=True)
class PendingRequest:
    """A request waiting at the broker for its next dispatch boundary."""

    request_id: int
    instance_name: str
    arrival_time: float
    submitted_at: float
    batch_size: int
    qos: str
    #: Earliest time this request may be routed (its arrival, or the
    #: retry-backoff expiry after a failed attempt).
    ready: float


class EpochBroker:
    """Deterministic routing and conservation accounting for one replay."""

    def __init__(self, spec: typing.Any, policy: str,
                 strategy: "Strategy | str",
                 instance_models: typing.Mapping[str, str],
                 replicas: typing.Mapping[str, typing.Sequence[str]],
                 machine_names: typing.Sequence[str],
                 max_retries: int, retry_backoff: float,
                 router_latency: float) -> None:
        self.policy = policy
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.router_latency = router_latency
        #: instance name -> model name, and instance -> replica machines
        #: (sorted by name, the router's canonical candidate order).
        self._instance_models = dict(instance_models)
        self._replicas = {name: sorted(machines)
                          for name, machines in replicas.items()}
        self.ledger = GlobalLedger()
        # The broker regenerates plans with its own seeded planner —
        # identical to the shards' because plans are machine-shape
        # functions of (spec, strategy, seed).
        planner = DeepPlan(spec)
        parsed = Strategy.parse(strategy)
        self._plans: dict[str, ExecutionPlan] = {}
        for model_name in sorted(set(self._instance_models.values())):
            self._plans[model_name] = planner.plan(
                build_model(model_name), parsed)
        # -- mutable routing state --
        self._pending: list[tuple[float, int, PendingRequest]] = []
        self._attempts: dict[int, int] = {}
        self._rr_counter = 0
        self.snapshots: dict[str, MachineSnapshot] = {
            name: MachineSnapshot(name=name, state="active",
                                  warm=frozenset(), outstanding=0)
            for name in machine_names}
        self.pending_cost = {name: 0.0 for name in machine_names}
        self._charges: dict[tuple[str, int], float] = {}
        #: Broker-side outstanding dispatches per machine (charged on
        #: dispatch, settled on completion/failure/shed) — reconciled
        #: against the shards' reported outstanding every epoch.
        self.outstanding = {name: 0 for name in machine_names}
        self._machine_of: dict[int, str] = {}
        #: request id -> the original intake entry (submitted_at and
        #: trace fields preserved across retries, so latency spans them).
        self._requests: dict[int, PendingRequest] = {}
        self.dropped: list[PendingRequest] = []
        #: One per-machine routed-count dict per epoch that has been
        #: routed but whose outcomes have not been ingested yet (the
        #: oldest entry is the epoch currently executing; anything
        #: newer is in transit — see :meth:`in_transit_for`).
        self._preflight: collections.deque[dict[str, int]] = \
            collections.deque()
        # Flat-array views for the vectorized policy loop: a stable
        # machine numbering plus, per instance, its replica machines as
        # an index array in the scalar loop's (name-sorted) candidate
        # order.
        self._names: list[str] = list(machine_names)
        name_index = {name: i for i, name in enumerate(self._names)}
        self._candidate_idx = {
            instance: numpy.array([name_index[name] for name in machines],
                                  dtype=numpy.intp)
            for instance, machines in self._replicas.items()}

    # -- intake ---------------------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Accept one trace request; it becomes routable at its arrival."""
        if request.instance_name not in self._replicas:
            raise WorkloadError(f"request {request.request_id} targets "
                                f"unknown instance {request.instance_name!r}")
        self.ledger.submitted += 1
        pending = PendingRequest(
            request_id=request.request_id,
            instance_name=request.instance_name,
            arrival_time=request.arrival_time,
            # Latency is measured from the moment the request entered
            # the system, so epoch quantization of the dispatch counts
            # toward it rather than hiding inside the router.
            submitted_at=request.arrival_time,
            batch_size=request.batch_size,
            qos=request.qos,
            ready=request.arrival_time)
        if pending.request_id in self._requests:
            raise WorkloadError(
                f"duplicate request id {pending.request_id}")
        self._requests[pending.request_id] = pending
        self._enqueue(pending)

    def _enqueue(self, pending: PendingRequest) -> None:
        heapq.heappush(self._pending,
                       (pending.ready, pending.request_id, pending))

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def outstanding_total(self) -> int:
        return sum(self.outstanding.values())

    @property
    def next_ready(self) -> float:
        """Earliest time any pending request becomes routable."""
        return self._pending[0][0] if self._pending else float("inf")

    def done(self) -> bool:
        return not self._pending and self.outstanding_total == 0

    # -- route-ahead (preflight) accounting -------------------------------------------

    @property
    def in_transit_total(self) -> int:
        """Routed deliveries not yet visible in any shard ledger.

        The oldest preflight entry belongs to the epoch whose outcomes
        are ingested next, so everything *newer* is in transit.
        """
        rest = iter(self._preflight)
        next(rest, None)
        return sum(sum(bucket.values()) for bucket in rest)

    def in_transit_for(self, names: typing.Iterable[str]) -> int:
        """In-transit deliveries bound for the given machines."""
        names = tuple(names)
        rest = iter(self._preflight)
        next(rest, None)
        return sum(bucket.get(name, 0)
                   for bucket in rest for name in names)

    def retire_epoch(self) -> None:
        """Drop the oldest preflight entry: its outcomes are ingested."""
        self._preflight.popleft()

    # -- routing (the Router's three policies, over snapshot views) ------------------

    def _estimated_service(self, machine_name: str,
                           instance_name: str) -> float:
        plan = self._plans[self._instance_models[instance_name]]
        if instance_name in self.snapshots[machine_name].warm:
            return plan.predicted_warm_latency
        return plan.predicted_latency

    def _route(self, pending: PendingRequest) -> str | None:
        candidates = [name for name in self._replicas[pending.instance_name]
                      if self.snapshots[name].state == "active"]
        if not candidates:
            return None
        if self.policy == "round-robin":
            choice = candidates[self._rr_counter % len(candidates)]
            self._rr_counter += 1
        elif self.policy == "least-loaded":
            choice = min(candidates,
                         key=lambda name: (self.outstanding[name], name))
        else:  # affinity
            choice = min(candidates, key=lambda name: (
                self.pending_cost[name] + self._estimated_service(
                    name, pending.instance_name), name))
        return choice

    def _service_vector(self, instance_name: str) -> numpy.ndarray:
        """Per-candidate estimated service, in candidate-index order."""
        plan = self._plans[self._instance_models[instance_name]]
        warm_latency = plan.predicted_warm_latency
        cold_latency = plan.predicted_latency
        return numpy.array(
            [warm_latency
             if instance_name in self.snapshots[self._names[i]].warm
             else cold_latency
             for i in self._candidate_idx[instance_name].tolist()],
            dtype=numpy.float64)

    def _route_batch_vectorized(
            self, batch: typing.Sequence[PendingRequest]
    ) -> "list[str | None]":
        """Flat-array version of :meth:`_route` over a whole batch.

        Sequential in request order (each routed request raises its
        machine's load before the next request scores it, exactly like
        the scalar loop), but every per-request decision is a masked
        ``argmin`` over flat arrays instead of a Python ``min`` over
        dict lookups.  Candidates are name-sorted, so numpy's
        first-occurrence ``argmin`` reproduces the scalar
        ``(score, name)`` tie-break; the score arithmetic is the same
        one IEEE-754 add, so choices are bit-identical.
        """
        names = self._names
        active = numpy.array(
            [self.snapshots[name].state == "active" for name in names])
        least_loaded = self.policy == "least-loaded"
        if least_loaded:
            load = numpy.array([self.outstanding[name] for name in names],
                               dtype=numpy.float64)
        else:
            load = numpy.array([self.pending_cost[name] for name in names],
                               dtype=numpy.float64)
        service_vectors: dict[str, numpy.ndarray] = {}
        choices: "list[str | None]" = []
        for pending in batch:
            candidates = self._candidate_idx[pending.instance_name]
            mask = active[candidates]
            if not mask.any():
                choices.append(None)
                continue
            if least_loaded:
                scores = load[candidates].copy()
            else:
                service = service_vectors.get(pending.instance_name)
                if service is None:
                    service = self._service_vector(pending.instance_name)
                    service_vectors[pending.instance_name] = service
                scores = load[candidates] + service
            scores[~mask] = numpy.inf
            machine = int(candidates[int(scores.argmin())])
            choices.append(names[machine])
            if least_loaded:
                load[machine] += 1.0
            else:
                load[machine] += self._estimated_service(
                    names[machine], pending.instance_name)
        return choices

    def route_epoch(self, boundary: float) -> dict[str, list[Delivery]]:
        """Route everything ready at *boundary*; deliveries due later.

        Returns per-machine delivery lists in canonical
        ``(deliver_at, request_id)`` order.  Requests with no routable
        replica burn a failed attempt (mirroring the cluster's
        "unroutable" path) and re-enter the pending heap with backoff.
        Every call books one preflight entry (the epoch's per-machine
        routed counts) for the route-ahead accounting.
        """
        deliveries: dict[str, list[Delivery]] = {}
        bucket: dict[str, int] = {}
        batch: list[PendingRequest] = []
        while self._pending and self._pending[0][0] <= boundary:
            batch.append(heapq.heappop(self._pending)[2])
        choices: "list[str | None] | None" = None
        if (len(batch) >= _VEC_MIN_BATCH
                and self.policy != "round-robin" and fastpath.enabled()):
            choices = self._route_batch_vectorized(batch)
        for i, pending in enumerate(batch):
            machine_name = (choices[i] if choices is not None
                            else self._route(pending))
            if machine_name is None:
                self._attempt_failed(pending, boundary)
                continue
            cost = self._estimated_service(machine_name,
                                           pending.instance_name)
            self._charges[(machine_name, pending.request_id)] = cost
            self.pending_cost[machine_name] += cost
            self.outstanding[machine_name] += 1
            bucket[machine_name] = bucket.get(machine_name, 0) + 1
            self._machine_of[pending.request_id] = machine_name
            deliveries.setdefault(machine_name, []).append(Delivery(
                request_id=pending.request_id,
                instance_name=pending.instance_name,
                machine_name=machine_name,
                arrival_time=pending.arrival_time,
                submitted_at=pending.submitted_at,
                deliver_at=boundary + self.router_latency,
                batch_size=pending.batch_size,
                qos=pending.qos,
                attempt=self._attempts.get(pending.request_id, 0)))
        for machine_name in deliveries:
            deliveries[machine_name].sort(
                key=lambda d: (d.deliver_at, d.request_id))
        self._preflight.append(bucket)
        return deliveries

    # -- settlement -------------------------------------------------------------------

    def _settle(self, request_id: int) -> str:
        machine_name = self._machine_of.pop(request_id)
        cost = self._charges.pop((machine_name, request_id), 0.0)
        self.pending_cost[machine_name] = max(
            0.0, self.pending_cost[machine_name] - cost)
        self.outstanding[machine_name] -= 1
        return machine_name

    def _attempt_failed(self, pending: PendingRequest, at: float) -> None:
        self.ledger.failures += 1
        attempts = self._attempts[pending.request_id] = \
            self._attempts.get(pending.request_id, 0) + 1
        if attempts > self.max_retries:
            self.ledger.dropped += 1
            self.dropped.append(pending)
            return
        self.ledger.retries += 1
        delay = self.retry_backoff * (2 ** (attempts - 1))
        self._enqueue(dataclasses.replace(pending, ready=at + delay))

    def ingest(self, outcome: EpochOutcome) -> None:
        """Fold one shard's epoch outcome into the broker's books."""
        for completion in outcome.completions:
            self._settle(completion.record.request_id)
            self.ledger.completed += 1
        for shed in outcome.sheds:
            self._settle(shed.request_id)
            self.ledger.shed += 1
        for failure in outcome.failures:
            self._settle(failure.request_id)
            self._attempt_failed(self._requests[failure.request_id],
                                 failure.time)
        for snapshot in outcome.snapshots:
            self.snapshots[snapshot.name] = snapshot

    def check_shard(self, outcome: EpochOutcome) -> None:
        """Cross-check one shard's reported outstanding against ours.

        Runs *after* :meth:`ingest` for the epoch: the broker's charged
        dispatches for the shard's machines — minus the in-transit
        charges for epochs routed ahead, which the outcome predates —
        must match the servers' live outstanding plus deliveries
        scheduled past the horizon.
        """
        names = [snapshot.name for snapshot in outcome.snapshots]
        broker_side = (sum(self.outstanding[name] for name in names)
                       - self.in_transit_for(names))
        shard_side = (sum(snapshot.outstanding
                          for snapshot in outcome.snapshots)
                      + outcome.ledger.undelivered)
        if broker_side != shard_side:
            raise ShardDeterminismError(
                outcome.shard_id,
                f"outstanding mismatch at horizon {outcome.horizon}: "
                f"broker charges {broker_side}, shard reports "
                f"{shard_side}")
