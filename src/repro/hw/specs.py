"""Hardware specifications and machine presets.

The constants below are the calibration surface of the reproduction.
They come from public datasheets (peak FLOPs, HBM bandwidth, link widths)
and from the paper's own measurements where the paper reports them:

* Table 2 of the paper measures 10.9–11.5 GB/s effective host-to-device
  bandwidth on a single PCIe 3.0 x16 lane and ~5.9–6.0 GB/s per GPU when
  two GPUs load through the same PCIe switch.  We model each GPU with a
  12.6 GB/s lane behind a 12.6 GB/s switch uplink shared by the GPUs on
  that switch, plus a fixed per-copy setup overhead; large models then
  sustain ~11.5 GB/s and two sharers get ~6.3 GB/s each.
* The paper quotes 9.35 ms for an in-memory BERT-Base batch-1 inference
  and ~40 ms to load its 417 MB from pinned host memory on a V100 —
  both are reproduced by these constants together with the layer cost
  model in :mod:`repro.models.costs`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.units import GB, GBPS, US

__all__ = [
    "GPUSpec",
    "MachineSpec",
    "p3_8xlarge",
    "a5000x2",
    "machine_presets",
]


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """Performance-relevant parameters of one GPU model."""

    name: str
    #: Usable device memory in bytes.
    memory_bytes: int
    #: Peak single-precision throughput, FLOP/s.
    peak_flops: float
    #: Device (HBM) memory bandwidth, bytes/s.
    hbm_bandwidth: float
    #: Fraction of peak FLOPs sustained by batch-1 GEMM-shaped kernels
    #: (linear, attention).  Folds tensor shapes and occupancy into one
    #: calibrated number.
    gemm_efficiency: float
    #: Fraction of peak FLOPs sustained by batch-1 convolution kernels;
    #: much lower than GEMMs at inference batch sizes.
    conv_efficiency: float
    #: Effective fraction of PCIe bandwidth achieved by zero-copy
    #: (direct-host-access) *streaming* reads issued from kernels.
    dha_stream_efficiency: float
    #: Effective fraction of PCIe bandwidth achieved by zero-copy
    #: *scattered* reads (embedding gathers): short, latency-bound bursts.
    dha_gather_efficiency: float


V100 = GPUSpec(
    name="V100-SXM2-16GB",
    memory_bytes=16 * GB,
    peak_flops=15.7e12,
    hbm_bandwidth=900 * GBPS,
    gemm_efficiency=0.55,
    conv_efficiency=0.13,
    dha_stream_efficiency=0.82,
    dha_gather_efficiency=0.70,
)

A5000 = GPUSpec(
    name="RTX-A5000-24GB",
    memory_bytes=24 * GB,
    peak_flops=27.8e12,
    hbm_bandwidth=768 * GBPS,
    gemm_efficiency=0.50,
    conv_efficiency=0.12,
    dha_stream_efficiency=0.82,
    dha_gather_efficiency=0.70,
)


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """A whole-server description sufficient to instantiate a Machine."""

    name: str
    gpu: GPUSpec
    gpu_count: int
    #: GPUs grouped by the PCIe switch they hang off, e.g. ((0, 1), (2, 3)).
    pcie_switch_groups: tuple[tuple[int, ...], ...]
    #: Effective bandwidth of one GPU's PCIe lane, bytes/s.
    pcie_lane_bandwidth: float
    #: Effective bandwidth of one switch's uplink to the host, bytes/s.
    pcie_uplink_bandwidth: float
    #: Fixed setup overhead per host-to-device copy, seconds.
    pcie_copy_overhead: float
    #: GPU pairs directly connected by NVLink ("full" mesh presets list
    #: every pair).  Pairs are unordered.
    nvlink_pairs: tuple[tuple[int, int], ...]
    #: Effective per-direction NVLink bandwidth between a connected pair.
    nvlink_bandwidth: float
    #: Fixed setup overhead per device-to-device copy, seconds.
    nvlink_copy_overhead: float
    #: Host RAM available for pinning model parameters, bytes.
    host_memory_bytes: int = 244 * GB  # the paper's p3.8xlarge

    def __post_init__(self) -> None:
        covered = sorted(g for group in self.pcie_switch_groups for g in group)
        if covered != list(range(self.gpu_count)):
            raise ValueError(
                f"switch groups {self.pcie_switch_groups} do not cover GPUs "
                f"0..{self.gpu_count - 1} exactly once")
        for a, b in self.nvlink_pairs:
            if not (0 <= a < self.gpu_count and 0 <= b < self.gpu_count) or a == b:
                raise ValueError(f"invalid NVLink pair ({a}, {b})")


def _full_mesh(n: int) -> tuple[tuple[int, int], ...]:
    return tuple((a, b) for a in range(n) for b in range(a + 1, n))


def p3_8xlarge() -> MachineSpec:
    """AWS p3.8xlarge: 4x V100, two PCIe 3.0 switches, NVLink mesh.

    This is the paper's main evaluation platform (Section 5.1).
    """
    return MachineSpec(
        name="p3.8xlarge",
        gpu=V100,
        gpu_count=4,
        pcie_switch_groups=((0, 1), (2, 3)),
        pcie_lane_bandwidth=12.0 * GBPS,
        pcie_uplink_bandwidth=12.0 * GBPS,
        pcie_copy_overhead=28 * US,
        nvlink_pairs=_full_mesh(4),
        nvlink_bandwidth=40 * GBPS,
        nvlink_copy_overhead=10 * US,
        host_memory_bytes=244 * GB,
    )


def a5000x2() -> MachineSpec:
    """Two RTX A5000 GPUs on PCIe 4.0 with an NVLink bridge (Section 5.4)."""
    return MachineSpec(
        name="a5000x2",
        gpu=A5000,
        gpu_count=2,
        pcie_switch_groups=((0,), (1,)),
        pcie_lane_bandwidth=23.0 * GBPS,
        pcie_uplink_bandwidth=23.0 * GBPS,
        pcie_copy_overhead=18 * US,
        nvlink_pairs=((0, 1),),
        nvlink_bandwidth=50 * GBPS,
        nvlink_copy_overhead=10 * US,
        host_memory_bytes=128 * GB,
    )


def dgx1_v100() -> MachineSpec:
    """NVIDIA DGX-1 (V100): 8 GPUs, four PCIe switches, NVLink cube mesh.

    The paper's Section 3.2 points at this class of server ("in modern
    multi-GPU servers, there are eight GPUs, and every two GPUs share the
    same PCIe switch").  The NVLink topology is the DGX-1 hybrid
    cube-mesh: each GPU reaches four peers directly, so parallel
    transmission can recruit up to two cross-switch secondaries (three
    partitions) from any primary.
    """
    cube_mesh = (
        (0, 1), (0, 2), (0, 3), (0, 4),
        (1, 2), (1, 3), (1, 5),
        (2, 3), (2, 6),
        (3, 7),
        (4, 5), (4, 6), (4, 7),
        (5, 6), (5, 7),
        (6, 7),
    )
    return MachineSpec(
        name="dgx1-v100",
        gpu=V100,
        gpu_count=8,
        pcie_switch_groups=((0, 1), (2, 3), (4, 5), (6, 7)),
        pcie_lane_bandwidth=12.0 * GBPS,
        pcie_uplink_bandwidth=12.0 * GBPS,
        pcie_copy_overhead=28 * US,
        nvlink_pairs=cube_mesh,
        nvlink_bandwidth=40 * GBPS,
        nvlink_copy_overhead=10 * US,
        host_memory_bytes=512 * GB,
    )


def machine_presets() -> dict[str, typing.Callable[[], MachineSpec]]:
    """Registry of named machine presets."""
    return {"p3.8xlarge": p3_8xlarge, "a5000x2": a5000x2,
            "dgx1-v100": dgx1_v100}
