"""Hardware model: GPUs, PCIe/NVLink topology, and machine presets.

The paper's testbeds are reproduced as :class:`~repro.hw.machine.Machine`
instances built from :class:`~repro.hw.specs.MachineSpec` presets:

* :func:`~repro.hw.specs.p3_8xlarge` — the AWS instance used for the main
  evaluation: four V100-16GB GPUs, two PCIe 3.0 switches with two GPUs
  each, NVLink between all pairs.
* :func:`~repro.hw.specs.a5000x2` — the PCIe 4.0 system from Section 5.4:
  two RTX A5000 GPUs with an NVLink bridge.

Bandwidth numbers are calibrated against the paper's own measurements
(Table 2: ~11.5 GB/s effective per PCIe 3.0 lane, ~6 GB/s when two GPUs
share a switch).
"""

from repro.hw.specs import (
    GPUSpec,
    MachineSpec,
    a5000x2,
    machine_presets,
    p3_8xlarge,
)
from repro.hw.memory import GPUMemory
from repro.hw.machine import GPU, Machine

__all__ = [
    "GPU",
    "GPUMemory",
    "GPUSpec",
    "Machine",
    "MachineSpec",
    "a5000x2",
    "machine_presets",
    "p3_8xlarge",
]
