"""The Machine: GPUs, links, and topology queries.

A :class:`Machine` instantiates a :class:`~repro.hw.specs.MachineSpec` on
a simulator: one :class:`~repro.simkit.links.Link` per GPU PCIe lane, one
per PCIe switch uplink, one per NVLink pair, a
:class:`~repro.simkit.links.FlowNetwork` tying them together, and per-GPU
compute resources and memory accounting.

Topology queries answer the questions DeepPlan's transmission planner
asks (Section 4.3.3): which GPUs share a PCIe switch (parallel loading
through the same switch halves both lanes — Table 2), and which GPU pairs
are bridged by NVLink (required for merging partitions).
"""

from __future__ import annotations

import networkx

from repro.errors import TopologyError
from repro.hw.host import HostMemory
from repro.hw.memory import DEFAULT_WORKSPACE_BYTES, GPUMemory
from repro.hw.specs import MachineSpec
from repro.simkit import Event, FlowNetwork, Link, Resource, Simulator

__all__ = ["GPU", "Machine"]


class GPU:
    """One GPU: compute engine, device memory, and its PCIe lane."""

    def __init__(self, machine: "Machine", index: int, switch: int,
                 workspace_bytes: int) -> None:
        spec = machine.spec.gpu
        self.machine = machine
        self.index = index
        self.switch = switch
        self.spec = spec
        self.name = f"gpu{index}"
        self.pcie_lane = Link(f"{self.name}.pcie", machine.spec.pcie_lane_bandwidth)
        #: Serializes inferences: one model runs on a GPU at a time, the
        #: execution discipline the paper adopts from Clockwork (§5.3).
        self.compute = Resource(machine.sim, capacity=1, name=f"{self.name}.compute")
        self.memory = GPUMemory(spec.memory_bytes, device=self.name,
                                workspace_bytes=workspace_bytes)
        #: Device-fault flag (see :meth:`Machine.fail_gpu`).  A failed GPU
        #: is excluded from parallel-transmission peer selection and its
        #: queued work is orphaned by the serving layer; its links stay up
        #: so in-flight phantom transfers can drain.
        self.failed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GPU {self.index} ({self.spec.name}) on switch {self.switch}>"


class Machine:
    """A multi-GPU server instantiated on a simulator."""

    def __init__(self, sim: Simulator, spec: MachineSpec,
                 workspace_bytes: int = DEFAULT_WORKSPACE_BYTES) -> None:
        self.sim = sim
        self.spec = spec
        self.network = FlowNetwork(sim)
        self._switch_of = {
            gpu: switch
            for switch, group in enumerate(spec.pcie_switch_groups)
            for gpu in group
        }
        self.gpus = [GPU(self, i, self._switch_of[i], workspace_bytes)
                     for i in range(spec.gpu_count)]
        #: Pinned host memory holding every deployed instance's weights.
        self.host = HostMemory(spec.host_memory_bytes)
        self.switch_uplinks = [
            Link(f"switch{s}.uplink", spec.pcie_uplink_bandwidth)
            for s in range(len(spec.pcie_switch_groups))
        ]
        self._nvlink_graph = networkx.Graph()
        self._nvlink_graph.add_nodes_from(range(spec.gpu_count))
        # NVLink is full-duplex: one Link per direction, so opposing
        # migrations (e.g., two mutual parallel transmissions) never
        # contend with each other.
        self.nvlinks: dict[tuple[int, int], Link] = {}
        for a, b in spec.nvlink_pairs:
            if (a, b) in self.nvlinks:
                continue
            for src, dst in ((a, b), (b, a)):
                self.nvlinks[src, dst] = Link(f"nvlink{src}->{dst}",
                                              spec.nvlink_bandwidth)
            self._nvlink_graph.add_edge(a, b)
        #: Every link on the machine by name (``gpuN.pcie``,
        #: ``switchS.uplink``, ``nvlinkA->B``) — the address space fault
        #: schedules use to target individual links.
        self._links: dict[str, Link] = {}
        for gpu in self.gpus:
            self._links[gpu.pcie_lane.name] = gpu.pcie_lane
        for uplink in self.switch_uplinks:
            self._links[uplink.name] = uplink
        for nvlink in self.nvlinks.values():
            self._links[nvlink.name] = nvlink

    # -- indexing ---------------------------------------------------------------

    def gpu(self, index: int) -> GPU:
        try:
            return self.gpus[index]
        except IndexError:
            raise TopologyError(
                f"machine {self.spec.name} has no GPU {index} "
                f"(only {len(self.gpus)})") from None

    @property
    def gpu_count(self) -> int:
        return len(self.gpus)

    def link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise TopologyError(
                f"machine {self.spec.name} has no link {name!r} "
                f"(links: {', '.join(self.link_names())})") from None

    def link_names(self) -> list[str]:
        return sorted(self._links)

    # -- device faults -----------------------------------------------------------

    def fail_gpu(self, index: int) -> bool:
        """Mark one GPU as failed; ``False`` when it already was.

        The GPU's links are deliberately left at full capacity: transfers
        already in flight when the device dies are phantoms (their results
        are discarded by the serving layer's epoch checks) and must still
        drain so the flow network quiesces.
        """
        gpu = self.gpu(index)
        if gpu.failed:
            return False
        gpu.failed = True
        return True

    def recover_gpu(self, index: int) -> bool:
        """Bring a failed GPU back; ``False`` when it was not failed."""
        gpu = self.gpu(index)
        if not gpu.failed:
            return False
        gpu.failed = False
        return True

    def healthy_gpus(self) -> list[GPU]:
        return [gpu for gpu in self.gpus if not gpu.failed]

    def degrade_link(self, name: str, factor: float) -> bool:
        """Set a link to ``factor`` x nominal capacity, rebalancing flows.

        Returns ``False`` when the link already sits at that capacity.
        """
        if not 0 < factor <= 1:
            raise ValueError(
                f"link degradation factor must be in (0, 1], got {factor}")
        link = self.link(name)
        target = link.nominal_bandwidth * factor
        if target == link.bandwidth:
            return False
        self.network.set_link_bandwidth(link, target)
        return True

    def restore_link(self, name: str) -> bool:
        """Restore a link to nominal capacity; ``False`` if already there."""
        link = self.link(name)
        if link.bandwidth == link.nominal_bandwidth:
            return False
        self.network.set_link_bandwidth(link, link.nominal_bandwidth)
        return True

    def link_degraded(self, name: str) -> bool:
        link = self.link(name)
        return link.bandwidth < link.nominal_bandwidth

    # -- topology queries --------------------------------------------------------

    def switch_of(self, gpu_index: int) -> int:
        self.gpu(gpu_index)
        return self._switch_of[gpu_index]

    def share_pcie_switch(self, a: int, b: int) -> bool:
        return self.switch_of(a) == self.switch_of(b)

    def has_nvlink(self, a: int, b: int) -> bool:
        self.gpu(a)
        self.gpu(b)
        return (a, b) in self.nvlinks

    def parallel_transmission_peers(self, primary: int) -> list[int]:
        """Secondary-GPU candidates for parallel transmission.

        A useful secondary sits on a *different* PCIe switch (otherwise
        the shared uplink halves both lanes, Section 3.2) and must be
        NVLink-connected to the primary so partitions can be merged.
        Candidates are returned nearest-index first for determinism.
        """
        return [g.index for g in self.gpus
                if g.index != primary
                and not self.share_pcie_switch(primary, g.index)
                and self.has_nvlink(primary, g.index)]

    # -- data movement -------------------------------------------------------------

    def pcie_path(self, gpu_index: int) -> list[Link]:
        gpu = self.gpu(gpu_index)
        return [gpu.pcie_lane, self.switch_uplinks[gpu.switch]]

    def nvlink_path(self, src: int, dst: int) -> list[Link]:
        if not self.has_nvlink(src, dst):
            raise TopologyError(
                f"no NVLink between GPU {src} and GPU {dst} on {self.spec.name}")
        return [self.nvlinks[src, dst]]

    def host_to_device(self, gpu_index: int, nbytes: float,
                       overhead: float | None = None,
                       weight: float = 1.0) -> Event:
        """Start a host->GPU copy over PCIe; returns its completion event.

        ``weight`` sets the copy's DMA priority (weighted fair share) —
        parallel transmission issues borrowed-lane copies below the
        lane's own traffic.
        """
        if overhead is None:
            overhead = self.spec.pcie_copy_overhead
        return self.network.transfer(self.pcie_path(gpu_index), nbytes,
                                     setup_delay=overhead, weight=weight)

    def device_to_device(self, src: int, dst: int, nbytes: float,
                         overhead: float | None = None) -> Event:
        """Start a GPU->GPU copy over NVLink; returns its completion event."""
        if overhead is None:
            overhead = self.spec.nvlink_copy_overhead
        return self.network.transfer(self.nvlink_path(src, dst), nbytes,
                                     setup_delay=overhead)

    # -- introspection ----------------------------------------------------------

    def describe(self) -> str:
        """Human-readable topology summary (mirrors ``nvidia-smi topo``)."""
        lines = [f"machine {self.spec.name}: {self.gpu_count}x {self.spec.gpu.name}"]
        for switch, group in enumerate(self.spec.pcie_switch_groups):
            gpus = ", ".join(f"gpu{g}" for g in group)
            lines.append(
                f"  pcie switch {switch}: {gpus} "
                f"(uplink {self.spec.pcie_uplink_bandwidth / 1e9:.1f} GB/s)")
        pairs = ", ".join(sorted({f"{min(p)}-{max(p)}"
                                  for p in self.nvlinks}))
        lines.append(
            f"  nvlink ({self.spec.nvlink_bandwidth / 1e9:.0f} GB/s): {pairs}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Machine {self.spec.name} with {self.gpu_count} GPUs>"
