"""GPU memory accounting.

The serving system (Section 5.3 of the paper) packs as many model
instances as fit into each GPU's memory and evicts the least recently
used instance when a new one must be provisioned.  This module provides
the byte-level bookkeeping: named reservations against a fixed capacity,
with a configurable *workspace* carve-out for activations and the staging
buffers that parallel transmission requires on secondary GPUs.
"""

from __future__ import annotations

import typing

from repro.errors import OutOfGPUMemoryError
from repro.units import GB

__all__ = ["GPUMemory"]

#: Memory held back on every GPU for the CUDA context, the serving
#: engine's static activation/workspace pool (PipeSwitch-style engines
#: pre-reserve it per worker), and the parallel-transmission staging area
#: (paper Section 4.2 reserves "a small amount of memory for storing
#: layers temporarily").  Calibrated so a 16 GB V100 packs 25 BERT-Base
#: instances under PipeSwitch and 31 under DeepPlan — the paper's
#: Figure 13 capacities (100 vs 124 instances across four GPUs).
DEFAULT_WORKSPACE_BYTES = int(5.8 * GB)


class GPUMemory:
    """Named reservations against a fixed-capacity device memory."""

    def __init__(self, capacity_bytes: int, device: str = "gpu",
                 workspace_bytes: int = DEFAULT_WORKSPACE_BYTES) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if workspace_bytes < 0 or workspace_bytes >= capacity_bytes:
            raise ValueError(
                f"workspace {workspace_bytes} must be in [0, {capacity_bytes})")
        self.device = device
        self.capacity_bytes = int(capacity_bytes)
        self.workspace_bytes = int(workspace_bytes)
        self._reservations: dict[str, int] = {}
        self._used = 0
        self._staging: dict[str, int] = {}
        self._staging_used = 0
        #: Optional audit hook (see :mod:`repro.audit`): receives
        #: ``on_reserve/on_release/on_reserve_staging/on_release_staging``
        #: callbacks.  ``None`` (the default) costs one attribute check.
        self.observer: typing.Any = None

    @property
    def used_bytes(self) -> int:
        """Bytes currently reserved (excluding the workspace carve-out)."""
        return self._used

    @property
    def available_bytes(self) -> int:
        return self.capacity_bytes - self.workspace_bytes - self._used

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.available_bytes

    def holds(self, tag: str) -> bool:
        return tag in self._reservations

    def reservation_size(self, tag: str) -> int:
        return self._reservations[tag]

    def reserve(self, tag: str, nbytes: int) -> None:
        """Reserve *nbytes* under *tag*; raises if it does not fit."""
        if nbytes < 0:
            raise ValueError(f"cannot reserve negative bytes: {nbytes}")
        if tag in self._reservations:
            raise ValueError(f"tag {tag!r} already reserved on {self.device}")
        if not self.fits(nbytes):
            raise OutOfGPUMemoryError(nbytes, self.available_bytes, self.device)
        self._reservations[tag] = int(nbytes)
        self._used += int(nbytes)
        if self.observer is not None:
            self.observer.on_reserve(self, tag, int(nbytes))

    def release(self, tag: str) -> int:
        """Release the reservation under *tag*; returns its size."""
        try:
            nbytes = self._reservations.pop(tag)
        except KeyError:
            raise KeyError(f"no reservation {tag!r} on {self.device}") from None
        self._used -= nbytes
        if self.observer is not None:
            self.observer.on_release(self, tag, nbytes)
        return nbytes

    def tags(self) -> tuple[str, ...]:
        return tuple(self._reservations)

    # -- staging pool (inside the workspace carve-out) ---------------------

    def reserve_staging(self, tag: str, nbytes: int) -> None:
        """Reserve transient parallel-transmission staging space.

        Staging buffers live inside the workspace carve-out, so secondary
        GPUs can relay partitions even when fully packed with instances.
        A partition larger than the workspace cannot be staged.
        """
        if nbytes < 0:
            raise ValueError(f"cannot stage negative bytes: {nbytes}")
        if tag in self._staging:
            raise ValueError(f"staging tag {tag!r} already reserved")
        available = self.workspace_bytes - self._staging_used
        if nbytes > available:
            raise OutOfGPUMemoryError(nbytes, available,
                                      f"{self.device}.staging")
        self._staging[tag] = int(nbytes)
        self._staging_used += int(nbytes)
        if self.observer is not None:
            self.observer.on_reserve_staging(self, tag, int(nbytes))

    def release_staging(self, tag: str) -> int:
        try:
            nbytes = self._staging.pop(tag)
        except KeyError:
            raise KeyError(f"no staging reservation {tag!r} on "
                           f"{self.device}") from None
        self._staging_used -= nbytes
        if self.observer is not None:
            self.observer.on_release_staging(self, tag, nbytes)
        return nbytes

    @property
    def staging_used_bytes(self) -> int:
        return self._staging_used

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<GPUMemory {self.device}: {self._used / GB:.2f}"
                f"/{(self.capacity_bytes - self.workspace_bytes) / GB:.2f} GB used, "
                f"{len(self._reservations)} reservations>")
