"""Host (CPU) memory accounting for pinned model storage.

Every deployed model instance keeps its parameters in *pinned* host
memory — that is what makes both fast DMA loads and direct-host-access
possible (``cudaHostAlloc``, paper Section 4.3.4).  Pinned memory is a
finite resource: the paper's p3.8xlarge has 244 GB of host RAM, which
bounds how many instances a server can host regardless of GPU memory.

:class:`HostMemory` mirrors :class:`~repro.hw.memory.GPUMemory`'s
reservation interface for the host side, with a headroom carve-out for
the OS and the serving process itself.
"""

from __future__ import annotations

import typing

from repro.errors import ReproError
from repro.units import GB

__all__ = ["HostMemory", "OutOfHostMemoryError"]

#: Host memory withheld from pinning: OS, page tables, serving runtime.
DEFAULT_HOST_HEADROOM_BYTES = int(16 * GB)


class OutOfHostMemoryError(ReproError):
    """A pinned-host-memory reservation exceeded the host's capacity."""

    def __init__(self, requested: int, available: int) -> None:
        super().__init__(
            f"cannot pin {requested} bytes in host memory: only "
            f"{available} bytes available")
        self.requested = requested
        self.available = available


class HostMemory:
    """Named pinned-memory reservations against host RAM."""

    def __init__(self, capacity_bytes: int,
                 headroom_bytes: int = DEFAULT_HOST_HEADROOM_BYTES) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if headroom_bytes < 0 or headroom_bytes >= capacity_bytes:
            raise ValueError(
                f"headroom {headroom_bytes} must be in [0, {capacity_bytes})")
        self.capacity_bytes = int(capacity_bytes)
        self.headroom_bytes = int(headroom_bytes)
        self._pinned: dict[str, int] = {}
        self._used = 0
        #: Optional audit hook (see :mod:`repro.audit`): receives
        #: ``on_pin/on_unpin`` callbacks; ``None`` by default.
        self.observer: typing.Any = None

    @property
    def pinned_bytes(self) -> int:
        return self._used

    @property
    def available_bytes(self) -> int:
        return self.capacity_bytes - self.headroom_bytes - self._used

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.available_bytes

    def holds(self, tag: str) -> bool:
        return tag in self._pinned

    def pin(self, tag: str, nbytes: int) -> None:
        """Pin *nbytes* under *tag*; raises if the host cannot hold it."""
        if nbytes < 0:
            raise ValueError(f"cannot pin negative bytes: {nbytes}")
        if tag in self._pinned:
            raise ValueError(f"tag {tag!r} already pinned")
        if not self.fits(nbytes):
            raise OutOfHostMemoryError(nbytes, self.available_bytes)
        self._pinned[tag] = int(nbytes)
        self._used += int(nbytes)
        if self.observer is not None:
            self.observer.on_pin(self, tag, int(nbytes))

    def unpin(self, tag: str) -> int:
        try:
            nbytes = self._pinned.pop(tag)
        except KeyError:
            raise KeyError(f"nothing pinned under {tag!r}") from None
        self._used -= nbytes
        if self.observer is not None:
            self.observer.on_unpin(self, tag, nbytes)
        return nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HostMemory {self._used / GB:.1f}"
                f"/{(self.capacity_bytes - self.headroom_bytes) / GB:.1f} GB "
                f"pinned>")
