"""The runtime invariant-audit layer.

:class:`MachineAuditor` attaches to a :class:`~repro.hw.machine.Machine`
*before any traffic runs* and observes every flow-network rate change and
every memory reserve/release through the observer hooks the instrumented
classes expose.  Violations are accumulated, never raised mid-simulation,
so auditing cannot change simulated behaviour; callers inspect
``violations`` or call :meth:`MachineAuditor.check_quiesce` once the
simulation settles.

:class:`ServingAuditor` wraps a :class:`~repro.serving.server.InferenceServer`
with a machine auditor plus the serving-level invariants, and raises
:class:`AuditError` from ``check_quiesce()`` (called by ``run()``) if any
invariant was violated during the run.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.errors import ReproError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.hw.host import HostMemory
    from repro.hw.machine import Machine
    from repro.hw.memory import GPUMemory
    from repro.serving.server import InferenceServer
    from repro.serving.workload import Request
    from repro.simkit.links import Flow, FlowNetwork, Link

__all__ = ["AuditError", "AuditViolation", "MachineAuditor", "ServingAuditor"]

#: Relative slack for rate-capacity checks (progressive filling is exact
#: up to float rounding).
_RATE_SLACK = 1e-9
#: Residuals are allowed to undershoot zero by the flow-completion
#: epsilon plus float noise.
_RESIDUAL_SLACK = 1e-2


@dataclasses.dataclass(frozen=True)
class AuditViolation:
    """One observed invariant violation."""

    invariant: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.subject}: {self.detail}"


class AuditError(ReproError):
    """At least one audited invariant was violated."""

    def __init__(self, violations: typing.Sequence[AuditViolation]) -> None:
        self.violations = tuple(violations)
        lines = "\n".join(f"  - {v}" for v in self.violations)
        super().__init__(
            f"{len(self.violations)} invariant violation(s):\n{lines}")


class MachineAuditor:
    """Continuous invariant checks for one machine's network and memory.

    Must be attached before any traffic runs on the machine (the per-link
    conservation ledger assumes it has seen every flow).
    """

    def __init__(self, machine: "Machine") -> None:
        if machine.network.active_flows:
            raise ValueError("attach the auditor before traffic starts")
        self.machine = machine
        self.violations: list[AuditViolation] = []
        self.checks = 0
        #: Summed progress of completed flows, per link.
        self._carried: dict["Link", float] = {}
        self._flows_completed: dict["Link", int] = {}
        #: Shadow reservation ledgers, per memory object.
        self._reserved: dict[int, dict[str, int]] = {}
        self._staged: dict[int, dict[str, int]] = {}
        self._pinned: dict[str, int] = {}
        machine.network.observer = self
        for gpu in machine.gpus:
            gpu.memory.observer = self
            self._reserved[id(gpu.memory)] = dict(
                (tag, gpu.memory.reservation_size(tag))
                for tag in gpu.memory.tags())
            self._staged[id(gpu.memory)] = {}
        machine.host.observer = self
        self._pinned = {}
        self._pinned_baseline = machine.host.pinned_bytes

    def detach(self) -> None:
        """Remove every observer hook installed by this auditor."""
        self.machine.network.observer = None
        for gpu in self.machine.gpus:
            gpu.memory.observer = None
        self.machine.host.observer = None

    def _flag(self, invariant: str, subject: str, detail: str) -> None:
        self.violations.append(AuditViolation(invariant, subject, detail))

    # -- FlowNetwork observer hooks ------------------------------------------------

    def on_flow_started(self, flow: "Flow") -> None:
        for link in flow.path:
            self._carried.setdefault(link, 0.0)
            self._flows_completed.setdefault(link, 0)

    def on_flow_completed(self, flow: "Flow") -> None:
        for link in flow.path:
            self._carried[link] = self._carried.get(link, 0.0) \
                + flow.progressed
            self._flows_completed[link] = \
                self._flows_completed.get(link, 0) + 1

    def on_rates_assigned(self, network: "FlowNetwork") -> None:
        by_link: dict["Link", float] = {}
        progress: dict["Link", float] = {}
        for flow in network.active_flows:
            self.checks += 1
            if flow.rate < 0:
                self._flag("flow.rate_nonnegative", repr(flow),
                           f"negative rate {flow.rate}")
            if flow.max_rate is not None and \
                    flow.rate > flow.max_rate * (1 + _RATE_SLACK):
                self._flag("flow.max_rate", repr(flow),
                           f"rate {flow.rate} exceeds cap {flow.max_rate}")
            if flow.remaining < -_RESIDUAL_SLACK:
                self._flag("flow.residual_nonnegative", repr(flow),
                           f"negative residual {flow.remaining}")
            progressed = flow.progressed
            for link in flow.path:
                by_link[link] = by_link.get(link, 0.0) + flow.rate
                progress[link] = progress.get(link, 0.0) + progressed
        for link, total in by_link.items():
            self.checks += 2
            if total > link.bandwidth * (1 + _RATE_SLACK):
                self._flag(
                    "link.rate_capacity", link.name,
                    f"allocated {total:.6g} B/s exceeds bandwidth "
                    f"{link.bandwidth:.6g} B/s")
            # Running conservation: a link is never credited with more
            # bytes than its flows have actually progressed.  The settle
            # clamp in FlowNetwork._settle (credit capped at the flow's
            # residual) is what makes this an invariant rather than a
            # best-effort bound — a wake-up landing past a flow's exact
            # completion instant must not inflate bytes_carried.
            accounted = self._carried.get(link, 0.0) + progress[link]
            tolerance = (1.0 + 1e-6 * max(accounted, link.bytes_carried)
                         + 1e-2 * self._flows_completed.get(link, 0))
            if link.bytes_carried > accounted + tolerance:
                self._flag(
                    "link.over_credit", link.name,
                    f"bytes_carried {link.bytes_carried:.3f} exceeds "
                    f"accounted flow progress {accounted:.3f}")

    # -- memory observer hooks ------------------------------------------------------

    def _check_balance(self, memory: "GPUMemory") -> None:
        self.checks += 1
        expected = sum(self._reserved[id(memory)].values())
        if memory.used_bytes != expected:
            self._flag(
                "memory.balance", memory.device,
                f"used_bytes {memory.used_bytes} != ledger {expected} "
                f"(unbalanced reserve/release)")

    def on_reserve(self, memory: "GPUMemory", tag: str, nbytes: int) -> None:
        ledger = self._reserved[id(memory)]
        if tag in ledger:
            self._flag("memory.duplicate_reserve", memory.device, tag)
        ledger[tag] = nbytes
        self._check_balance(memory)

    def on_release(self, memory: "GPUMemory", tag: str, nbytes: int) -> None:
        ledger = self._reserved[id(memory)]
        if ledger.pop(tag, None) is None:
            self._flag("memory.unknown_release", memory.device, tag)
        self._check_balance(memory)

    def on_reserve_staging(self, memory: "GPUMemory", tag: str,
                           nbytes: int) -> None:
        self._staged[id(memory)][tag] = nbytes

    def on_release_staging(self, memory: "GPUMemory", tag: str,
                           nbytes: int) -> None:
        if self._staged[id(memory)].pop(tag, None) is None:
            self._flag("memory.unknown_staging_release", memory.device, tag)

    def on_pin(self, host: "HostMemory", tag: str, nbytes: int) -> None:
        if tag in self._pinned:
            self._flag("host.duplicate_pin", "host", tag)
        self._pinned[tag] = nbytes
        self.checks += 1
        if host.pinned_bytes != self._pinned_baseline \
                + sum(self._pinned.values()):
            self._flag("host.balance", "host",
                       f"pinned_bytes {host.pinned_bytes} out of balance "
                       f"with pin/unpin ledger")

    def on_unpin(self, host: "HostMemory", tag: str, nbytes: int) -> None:
        if self._pinned.pop(tag, None) is None:
            self._flag("host.unknown_unpin", "host", tag)

    # -- quiesce checks ---------------------------------------------------------------

    def check_quiesce(self) -> list[AuditViolation]:
        """Checks valid only once the simulation has settled.

        Appends any new violations and returns the full accumulated list.
        """
        network = self.machine.network
        self.checks += 1
        if network.active_flows:
            self._flag("network.quiesced", "network",
                       f"{len(network.active_flows)} flows still active")
        for link, expected in self._carried.items():
            self.checks += 1
            # bytes_carried and the per-flow progress are accumulated from
            # the same settle increments in different summation orders, and
            # each completed flow forgives up to the completion epsilon.
            tolerance = (1.0 + 1e-6 * max(expected, link.bytes_carried)
                         + 1e-2 * self._flows_completed.get(link, 0))
            if abs(link.bytes_carried - expected) > tolerance:
                self._flag(
                    "link.conservation", link.name,
                    f"bytes_carried {link.bytes_carried:.3f} != summed flow "
                    f"progress {expected:.3f}")
        for gpu in self.machine.gpus:
            self.checks += 1
            if self._staged[id(gpu.memory)]:
                leaked = sorted(self._staged[id(gpu.memory)])
                self._flag("memory.staging_leak", gpu.memory.device,
                           f"staging tags never released: {leaked}")
            if gpu.memory.staging_used_bytes != 0:
                self._flag("memory.staging_leak", gpu.memory.device,
                           f"{gpu.memory.staging_used_bytes} staging bytes "
                           f"still reserved")
            self._check_balance(gpu.memory)
        return list(self.violations)


class ServingAuditor:
    """Serving-system invariants on top of :class:`MachineAuditor`.

    Created by ``InferenceServer`` when ``ServerConfig(audit=True)``; the
    server calls :meth:`on_submit` for every accepted request and
    :meth:`check_quiesce` at the end of each ``run()``.
    """

    def __init__(self, server: "InferenceServer") -> None:
        self.server = server
        self.machine_auditor = MachineAuditor(server.machine)
        self._submitted: collections.Counter[int] = collections.Counter()
        self._orphaned: collections.Counter[int] = collections.Counter()

    @property
    def violations(self) -> list[AuditViolation]:
        return list(self.machine_auditor.violations)

    @property
    def checks(self) -> int:
        return self.machine_auditor.checks

    def on_submit(self, request: "Request") -> None:
        self._submitted[request.request_id] += 1

    def on_orphan(self, request: "Request") -> None:
        """An accepted request left this server unserved (crash/GPU loss)."""
        self._orphaned[request.request_id] += 1

    def check_quiesce(self, raise_on_violation: bool = True
                      ) -> list[AuditViolation]:
        """Verify end-of-run invariants; raise :class:`AuditError` on any."""
        audit = self.machine_auditor
        audit.check_quiesce()
        server = self.server
        for gpu_index, queue in server._queues.items():
            audit.checks += 1
            if len(queue):
                audit._flag("queue.drained", queue.name,
                            f"{len(queue)} requests still queued")
            if queue.total_put != queue.total_got:
                audit._flag(
                    "queue.put_got_balance", queue.name,
                    f"{queue.total_put} puts vs {queue.total_got} gets")
        audit.checks += 1
        recorded = collections.Counter(
            r.request_id for r in server.metrics.records)
        # Orphaned requests (machine crash or GPU failure mid-service)
        # legitimately leave without a record; everything else must be
        # recorded exactly as often as it was accepted.
        expected = self._submitted - self._orphaned
        if recorded != expected:
            missing = sorted((expected - recorded).keys())[:5]
            extra = sorted((recorded - expected).keys())[:5]
            audit._flag(
                "requests.exactly_once", "metrics",
                f"submitted but unrecorded: {missing}; recorded more often "
                f"than submitted: {extra}")
        for gpu in server.machine.gpus:
            audit.checks += 1
            resident = sum(
                instance.gpu_bytes
                for instance in server.instances.values()
                if instance.resident and instance.home_gpu == gpu.index)
            if gpu.memory.used_bytes != resident:
                audit._flag(
                    "server.residency", gpu.memory.device,
                    f"reserved {gpu.memory.used_bytes} bytes but resident "
                    f"instances account for {resident}")
        violations = self.violations
        if violations and raise_on_violation:
            raise AuditError(violations)
        return violations
