"""Sharded-replay audit: conservation per shard, reconciled globally.

The sharded simulator (:mod:`repro.shard`) splits one cluster replay
across several simulator instances, so the single-process
:class:`~repro.audit.cluster.ClusterAuditor` cannot watch the whole
request lifecycle from one place.  Instead each shard maintains a
:class:`ShardLedger` — a picklable running count of every terminal and
in-flight state its machines have seen — and the coordinator keeps a
:class:`GlobalLedger` over the broker's view.  At every epoch boundary
and again at quiesce, :func:`reconcile` proves the two-level
conservation law:

* **per shard** — ``delivered == completed + shed + orphaned +
  in_flight`` (and ``in_flight`` matches the live servers' outstanding
  count plus deliveries scheduled but not yet due);
* **globally** — ``submitted == completed + shed + dropped + pending +
  in_flight`` where ``pending`` counts arrivals and retries the broker
  has not yet dispatched;
* **cross-level** — the sum of shard ledgers tells the same story as
  the broker's ledger: every delivery the broker charged is accounted
  for by exactly one shard, and every failure a shard reported was
  settled by the broker.

Violations raise :class:`~repro.audit.invariants.AuditError` carrying
:class:`~repro.audit.invariants.AuditViolation` entries, exactly like
the machine- and cluster-level auditors.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.audit.invariants import AuditError, AuditViolation

__all__ = ["ShardLedger", "GlobalLedger", "reconcile",
           "resume_divergence"]


@dataclasses.dataclass
class ShardLedger:
    """Running conservation counters for one shard (picklable).

    ``delivered`` counts requests whose delivery callback fired (i.e.
    they reached a machine's ``submit`` path — including ones that were
    immediately shed or orphaned because the machine was down);
    ``scheduled`` counts deliveries handed to the shard that may not
    have fired yet (epoch horizons can precede a delivery's due time).
    """

    shard_id: int = 0
    scheduled: int = 0
    delivered: int = 0
    completed: int = 0
    shed: int = 0
    orphaned: int = 0

    @property
    def in_flight(self) -> int:
        """Requests inside this shard with no terminal outcome yet."""
        return (self.scheduled - self.completed - self.shed - self.orphaned)

    @property
    def undelivered(self) -> int:
        """Deliveries scheduled beyond the current horizon."""
        return self.scheduled - self.delivered

    def check(self, outstanding: int) -> None:
        """Balance the ledger against the live servers' outstanding count.

        *outstanding* is the sum of ``server.outstanding`` over the
        shard's machines at the moment of the check (an epoch horizon).
        """
        expect = self.delivered - self.completed - self.shed - self.orphaned
        if outstanding != expect:
            raise AuditError([AuditViolation(
                "shard.conservation", f"shard {self.shard_id}",
                f"{self.delivered} delivered != {self.completed} completed "
                f"+ {self.shed} shed + {self.orphaned} orphaned + "
                f"{outstanding} outstanding")])

    def copy(self) -> "ShardLedger":
        return dataclasses.replace(self)


@dataclasses.dataclass
class GlobalLedger:
    """The coordinator's conservation counters over the whole replay."""

    submitted: int = 0
    completed: int = 0
    shed: int = 0
    dropped: int = 0
    retries: int = 0
    failures: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "dropped": self.dropped,
            "retries": self.retries,
            "failures": self.failures,
        }


def reconcile(global_ledger: GlobalLedger,
              shard_ledgers: typing.Sequence[ShardLedger],
              pending: int, outstanding: int,
              in_transit: int = 0,
              raise_on_violation: bool = True) -> list[AuditViolation]:
    """Prove the global conservation law at one epoch boundary.

    ``submitted == completed + shed + dropped + pending + in_transit +
    in_flight`` must hold at every boundary.  *in_transit* counts
    deliveries the broker has already routed ahead (the pipelined
    epoch's commands) that no shard ledger has recorded yet; under the
    lock-step v1 protocol it was identically zero.  At quiesce
    *pending*, *in_transit* and the shards' in-flight counts are all
    zero, reducing the law to the familiar
    ``submitted == completed + shed + dropped``.
    """
    violations: list[AuditViolation] = []
    g = global_ledger
    in_flight = sum(ledger.in_flight for ledger in shard_ledgers)
    if (g.submitted != g.completed + g.shed + g.dropped + pending
            + in_transit + in_flight):
        violations.append(AuditViolation(
            "shard.global_conservation", "broker",
            f"{g.submitted} submitted != {g.completed} completed + "
            f"{g.shed} shed + {g.dropped} dropped + {pending} pending + "
            f"{in_transit} in-transit + {in_flight} in-flight"))
    if in_flight + in_transit != outstanding:
        violations.append(AuditViolation(
            "shard.outstanding_reconciliation", "broker",
            f"shard ledgers say {in_flight} in flight + {in_transit} "
            f"in transit but the broker charges {outstanding} "
            f"outstanding dispatches"))
    completed = sum(ledger.completed for ledger in shard_ledgers)
    if completed != g.completed:
        violations.append(AuditViolation(
            "shard.completion_reconciliation", "broker",
            f"shards completed {completed} requests but the broker "
            f"recorded {g.completed}"))
    shed = sum(ledger.shed for ledger in shard_ledgers)
    if shed != g.shed:
        violations.append(AuditViolation(
            "shard.shed_reconciliation", "broker",
            f"shards shed {shed} requests but the broker recorded {g.shed}"))
    if violations and raise_on_violation:
        raise AuditError(violations)
    return violations


def resume_divergence(expected: ShardLedger, actual: ShardLedger,
                      shard_id: int, epoch: int) -> list[AuditViolation]:
    """Compare a fast-forward replay's ledger against the journalled one.

    Used by the process backend's crash recovery: a respawned worker
    re-executes the journalled epoch commands, and because shard state
    is a pure function of (init, commands) every counter must land on
    the exact value the dead worker reported for that epoch.  Any
    difference means the recovered shard walked a different path and
    the bit-identity contract would silently break — the caller turns a
    non-empty result into a
    :class:`~repro.shard.supervision.ShardDeterminismError`.
    """
    violations: list[AuditViolation] = []
    for field in dataclasses.fields(ShardLedger):
        want = getattr(expected, field.name)
        got = getattr(actual, field.name)
        if want != got:
            violations.append(AuditViolation(
                "shard.resume_divergence",
                f"shard {shard_id} epoch {epoch}",
                f"{field.name}: journalled {want}, replayed {got}"))
    return violations
