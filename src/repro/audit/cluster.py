"""Cluster-level audit: exactly-once accounting across retries.

Machine failures plus retries make double-execution and request loss the
two easy bugs of any cluster serving layer.  :class:`ClusterAuditor`
observes every submit, dispatch, failure, completion and drop, attaches
one :class:`~repro.audit.invariants.MachineAuditor` per machine, and at
quiesce proves:

* **exactly-once** — each submitted request completed exactly once
  cluster-wide, or was dropped exactly once, or was shed (deadline
  unmeetable) exactly once — never two outcomes and never none;
* **conservation** — ``submitted == completed + dropped + shed``;
* **bounded retries** — no request failed more than ``max_retries + 1``
  times, and dropped requests used *exactly* their full attempt budget;
* **provenance** — every completion and failure refers to a request that
  was actually submitted, on a machine it was actually dispatched to;
* **metrics reconciliation** — the cluster's metrics collector saw the
  same completed/shed/dropped counts as the lifecycle ledger, so the
  reported goodput denominator obeys the conservation law;
* **machine invariants** — each machine's flow-network and memory
  conservation checks (from :class:`MachineAuditor`) also hold.
"""

from __future__ import annotations

import collections
import typing

from repro.audit.invariants import AuditError, AuditViolation, MachineAuditor

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.serving.workload import Request

__all__ = ["ClusterAuditor"]


class ClusterAuditor:
    """Observes one cluster's request lifecycle end to end."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.machine_auditors = {
            cm.name: MachineAuditor(cm.machine) for cm in cluster.machines}
        self.violations: list[AuditViolation] = []
        self.checks = 0
        self._submitted: set[int] = set()
        self._dispatched: dict[int, list[str]] = {}
        self._completions: collections.Counter[int] = collections.Counter()
        self._completed_on: dict[int, str] = {}
        self._failures: collections.Counter[int] = collections.Counter()
        self._dropped: collections.Counter[int] = collections.Counter()
        self._shed: collections.Counter[int] = collections.Counter()

    def _flag(self, invariant: str, subject: str, detail: str) -> None:
        self.violations.append(AuditViolation(invariant, subject, detail))

    # -- lifecycle hooks (called by the cluster) ------------------------------------

    def on_submit(self, request: "Request") -> None:
        if request.request_id in self._submitted:
            self._flag("cluster.duplicate_submit", "router",
                       f"request {request.request_id} submitted twice")
        self._submitted.add(request.request_id)

    def on_dispatch(self, request: "Request", machine_name: str) -> None:
        self._dispatched.setdefault(request.request_id, []) \
            .append(machine_name)
        if request.request_id not in self._submitted:
            self._flag("cluster.dispatch_provenance", machine_name,
                       f"request {request.request_id} dispatched without "
                       f"submission")

    def on_failure(self, request: "Request", where: str) -> None:
        self._failures[request.request_id] += 1

    def on_complete(self, request: "Request", machine_name: str) -> None:
        self._completions[request.request_id] += 1
        self._completed_on[request.request_id] = machine_name
        if machine_name not in self._dispatched.get(request.request_id, []):
            self._flag("cluster.completion_provenance", machine_name,
                       f"request {request.request_id} completed on a "
                       f"machine it was never dispatched to")

    def on_drop(self, request: "Request") -> None:
        self._dropped[request.request_id] += 1

    def on_shed(self, request: "Request", machine_name: str) -> None:
        self._shed[request.request_id] += 1
        if machine_name not in self._dispatched.get(request.request_id, []):
            self._flag("cluster.shed_provenance", machine_name,
                       f"request {request.request_id} shed by a machine "
                       f"it was never dispatched to")

    # -- quiesce ---------------------------------------------------------------------

    def check_quiesce(self, raise_on_violation: bool = True
                      ) -> list[AuditViolation]:
        """Verify end-of-run invariants; raise :class:`AuditError` on any."""
        for name, auditor in self.machine_auditors.items():
            auditor.check_quiesce()
            self.checks += auditor.checks
            for violation in auditor.violations:
                self.violations.append(AuditViolation(
                    violation.invariant, f"{name}:{violation.subject}",
                    violation.detail))
        max_attempts = self.cluster.config.max_retries + 1
        for request_id in self._submitted:
            self.checks += 1
            outcomes = (self._completions[request_id]
                        + self._dropped[request_id]
                        + self._shed[request_id])
            if outcomes != 1:
                self._flag(
                    "cluster.exactly_once", f"request {request_id}",
                    f"{self._completions[request_id]} completion(s) + "
                    f"{self._dropped[request_id]} drop(s) + "
                    f"{self._shed[request_id]} shed(s); expected "
                    f"exactly one outcome")
            if self._failures[request_id] > max_attempts:
                self._flag(
                    "cluster.bounded_retries", f"request {request_id}",
                    f"{self._failures[request_id]} failed attempts exceed "
                    f"the budget of {max_attempts}")
            if (self._dropped[request_id]
                    and self._failures[request_id] != max_attempts):
                self._flag(
                    "cluster.drop_budget", f"request {request_id}",
                    f"dropped after {self._failures[request_id]} failed "
                    f"attempts; drops must exhaust all {max_attempts}")
        for request_id in (set(self._completions) | set(self._dropped)
                           | set(self._shed)) - self._submitted:
            self._flag("cluster.outcome_provenance", f"request {request_id}",
                       "completed, dropped or shed but never submitted")
        self.checks += 1
        completed = sum(self._completions.values())
        dropped = sum(self._dropped.values())
        shed = sum(self._shed.values())
        if completed + dropped + shed != len(self._submitted):
            self._flag(
                "cluster.conservation", "cluster",
                f"{len(self._submitted)} submitted != {completed} "
                f"completed + {dropped} dropped + {shed} shed")
        # The reported metrics must tell the same story as the lifecycle
        # ledger: goodput's denominator (records + shed + dropped) has to
        # match the conservation law above, or the published numbers are
        # silently dropping terminal outcomes.
        self.checks += 1
        metrics = self.cluster.metrics
        if (len(metrics.records) != completed or metrics.shed != shed
                or metrics.dropped != dropped):
            self._flag(
                "cluster.metrics_reconciliation", "metrics",
                f"collector saw {len(metrics.records)} completions + "
                f"{metrics.shed} shed + {metrics.dropped} dropped, but the "
                f"lifecycle ledger has {completed} + {shed} + {dropped}")
        for cm in self.cluster.machines:
            for queue in cm.server._queues.values():
                self.checks += 1
                if len(queue):
                    self._flag("cluster.queue_drained",
                               f"{cm.name}:{queue.name}",
                               f"{len(queue)} requests still queued")
                if queue.total_put != queue.total_got:
                    self._flag(
                        "cluster.queue_balance", f"{cm.name}:{queue.name}",
                        f"{queue.total_put} puts vs {queue.total_got} gets")
        if self.violations and raise_on_violation:
            raise AuditError(self.violations)
        return list(self.violations)
