"""Differential-execution testing: fast paths vs per-layer references.

The executor has two implementations of every execution stream: a
per-layer reference path (one simulator event per layer, full traces)
and a coalesced fast path (runs of non-waiting layers collapse into one
timeout) used by the serving system.  The two must produce *identical*
simulated timing — that redundancy is a correctness oracle.

This harness generates seeded random models, plans them under every
strategy, and runs each plan through both paths on fresh machines with a
:class:`~repro.audit.invariants.MachineAuditor` attached, checking that

* cold-start finish times agree (per-layer traces vs coalesced),
* warm finish times agree (per-layer vs coalesced segments),
* the planner's contention-free cost prediction brackets the simulated
  latency, and
* zero audit invariants are violated along the way.

:func:`differential_serving` extends the comparison to a full serving
workload: two servers over the same seeded Poisson trace, one forced
onto the per-layer paths (``ServerConfig(detailed_traces=True)``), must
report identical per-request completion times.

Run from the command line with ``deepplan audit``.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.audit.invariants import AuditViolation, MachineAuditor
from repro.core.deepplan import DeepPlan, Strategy
from repro.engine.executor import execute_plan, execute_warm
from repro.hw.machine import Machine
from repro.hw.specs import MachineSpec, p3_8xlarge
from repro.models.graph import ModelSpec
from repro.models.layers import (
    activation,
    attention,
    batchnorm2d,
    conv2d,
    elementwise,
    embedding,
    layernorm,
    linear,
    pooling,
)

__all__ = [
    "DifferentialCase",
    "DifferentialResult",
    "differential_serving",
    "random_model",
    "run_case",
    "run_differential_suite",
]

#: Finish-time agreement required between the fast and reference paths.
TIME_TOLERANCE = 1e-9

#: Allowed simulated/predicted latency ratio band.  The prediction is the
#: planner's contention-free analytic timeline; the simulator adds copy
#: setup overheads and event-dispatch granularity it abstracts away.
PREDICTION_BRACKET = (0.8, 1.25)


@dataclasses.dataclass(frozen=True)
class DifferentialCase:
    """One seeded (model, strategy, batch) combination."""

    seed: int
    strategy: str
    batch_size: int


@dataclasses.dataclass(frozen=True)
class DifferentialResult:
    """Timings of both execution paths for one case."""

    case: DifferentialCase
    model_name: str
    num_layers: int
    cold_per_layer: float
    cold_coalesced: float
    warm_per_layer: float
    warm_coalesced: float
    predicted_latency: float
    violations: tuple[AuditViolation, ...]

    @property
    def cold_divergence(self) -> float:
        return abs(self.cold_per_layer - self.cold_coalesced)

    @property
    def warm_divergence(self) -> float:
        return abs(self.warm_per_layer - self.warm_coalesced)

    @property
    def prediction_ratio(self) -> float:
        """Simulated contention-free cold latency over the predicted one."""
        return self.cold_coalesced / self.predicted_latency

    @property
    def agrees(self) -> bool:
        return (self.cold_divergence < TIME_TOLERANCE
                and self.warm_divergence < TIME_TOLERANCE
                and not self.violations)

    @property
    def prediction_brackets(self) -> bool:
        lo, hi = PREDICTION_BRACKET
        return lo <= self.prediction_ratio <= hi


# ---------------------------------------------------------------------------
# Random model generation
# ---------------------------------------------------------------------------


def _random_transformer(rng: numpy.random.Generator,
                        name: str) -> ModelSpec:
    width = int(rng.choice([256, 512, 768]))
    seq = int(rng.choice([64, 128, 384]))
    vocab = int(rng.choice([8000, 16000, 30000]))
    blocks = int(rng.integers(2, 6))
    layers = [embedding("embed.word", vocab, width, seq),
              layernorm("embed.ln", width, seq)]
    for b in range(blocks):
        layers += [
            linear(f"block{b}.qkv", width, 3 * width, seq),
            attention(f"block{b}.attn", width, 8, seq),
            linear(f"block{b}.proj", width, width, seq),
            elementwise(f"block{b}.add1", seq * width),
            layernorm(f"block{b}.ln1", width, seq),
            linear(f"block{b}.up", width, 4 * width, seq),
            activation(f"block{b}.gelu", 4 * seq * width),
            linear(f"block{b}.down", 4 * width, width, seq),
            elementwise(f"block{b}.add2", seq * width),
            layernorm(f"block{b}.ln2", width, seq),
        ]
    layers.append(linear("head", width, vocab, seq, bias=False))
    return ModelSpec(name=name, layers=tuple(layers), seq_len=seq,
                     family="random-transformer")


def _random_convnet(rng: numpy.random.Generator, name: str) -> ModelSpec:
    stages = int(rng.integers(2, 5))
    channels = int(rng.choice([32, 64]))
    hw = 56
    layers = [conv2d("stem.conv", 3, channels, 7, hw),
              batchnorm2d("stem.bn", channels, hw),
              activation("stem.relu", channels * hw * hw)]
    for s in range(stages):
        out = channels * 2
        layers += [
            conv2d(f"stage{s}.conv1", channels, out, 3, hw),
            batchnorm2d(f"stage{s}.bn1", out, hw),
            activation(f"stage{s}.relu1", out * hw * hw),
            conv2d(f"stage{s}.conv2", out, out, 3, hw),
            batchnorm2d(f"stage{s}.bn2", out, hw),
            elementwise(f"stage{s}.add", out * hw * hw),
            activation(f"stage{s}.relu2", out * hw * hw),
        ]
        channels = out
        hw = max(7, hw // 2)
        layers.append(pooling(f"stage{s}.pool", channels * hw * hw))
    layers.append(linear("fc", channels, 1000))
    return ModelSpec(name=name, layers=tuple(layers), seq_len=1,
                     family="random-convnet")


def random_model(seed: int, name: str | None = None) -> ModelSpec:
    """A seeded random model mixing the layer kinds the planner knows."""
    rng = numpy.random.default_rng(seed)
    name = name or f"rand{seed}"
    if rng.random() < 0.5:
        return _random_transformer(rng, name)
    return _random_convnet(rng, name)


# ---------------------------------------------------------------------------
# Differential execution
# ---------------------------------------------------------------------------


def _audited_run(spec: MachineSpec, process_factory
                 ) -> tuple[float, list[AuditViolation]]:
    """Run one execution on a fresh audited machine; return finish time."""
    from repro.simkit import Simulator

    machine = Machine(Simulator(), spec)
    auditor = MachineAuditor(machine)
    process = process_factory(machine)
    machine.sim.run(process.done)
    auditor.check_quiesce()
    return machine.sim.now, auditor.violations


def run_case(case: DifferentialCase,
             machine_spec: MachineSpec | None = None,
             planner: DeepPlan | None = None) -> DifferentialResult:
    """Execute one differential case: cold and warm, both paths, audited."""
    spec = machine_spec or p3_8xlarge()
    planner = planner or DeepPlan(spec, noise=0.0)
    model = random_model(case.seed)
    plan = planner.plan(model, case.strategy, batch_size=case.batch_size)
    secondaries = (planner.secondary_gpus(0, plan)
                   if plan.num_partitions > 1 else [])

    violations: list[AuditViolation] = []
    cold = {}
    for detailed in (True, False):
        finish, bad = _audited_run(spec, lambda machine: execute_plan(
            machine, planner.cost_model, plan, 0, secondaries,
            detailed_traces=detailed))
        cold[detailed] = finish
        violations += bad
    warm = {}
    for coalesced in (False, True):
        finish, bad = _audited_run(spec, lambda machine: execute_warm(
            machine, planner.cost_model, plan, 0, coalesced=coalesced))
        warm[coalesced] = finish
        violations += bad

    return DifferentialResult(
        case=case,
        model_name=model.name,
        num_layers=len(model.layers),
        cold_per_layer=cold[True],
        cold_coalesced=cold[False],
        warm_per_layer=warm[False],
        warm_coalesced=warm[True],
        predicted_latency=plan.predicted_latency,
        violations=tuple(violations),
    )


def run_differential_suite(num_cases: int = 20, seed: int = 0,
                           machine_spec: MachineSpec | None = None
                           ) -> list[DifferentialResult]:
    """Run *num_cases* seeded cases cycling through every strategy."""
    spec = machine_spec or p3_8xlarge()
    planner = DeepPlan(spec, noise=0.0)
    strategies = [s.value for s in Strategy]
    rng = numpy.random.default_rng(seed)
    results = []
    for index in range(num_cases):
        case = DifferentialCase(
            seed=seed * 10_000 + index,
            strategy=strategies[index % len(strategies)],
            batch_size=int(rng.choice([1, 1, 4])),
        )
        results.append(run_case(case, spec, planner))
    return results


# ---------------------------------------------------------------------------
# Differential serving
# ---------------------------------------------------------------------------


def differential_serving(seed: int = 0, num_requests: int = 120,
                         num_instances: int = 60, rate: float = 60.0,
                         model_name: str = "bert-large",
                         machine_spec: MachineSpec | None = None
                         ) -> tuple[list, list]:
    """Serve one seeded workload through both execution paths.

    The defaults oversubscribe GPU memory (60 BERT-Large instances on a
    p3.8xlarge) so the comparison covers cold-start provisioning and
    eviction, not just warm inference.  Returns the two sorted record
    lists (coalesced, per-layer); both servers run with the audit layer
    enabled, so any invariant violation raises
    :class:`~repro.audit.invariants.AuditError` from ``run()``.
    """
    from repro.models import build_model
    from repro.serving import InferenceServer, PoissonWorkload, ServerConfig
    from repro.simkit import Simulator

    spec = machine_spec or p3_8xlarge()
    planner = DeepPlan(spec, noise=0.0)
    model = build_model(model_name)
    reports = []
    for detailed in (False, True):
        machine = Machine(Simulator(), spec)
        server = InferenceServer(machine, planner, ServerConfig(
            audit=True, detailed_traces=detailed))
        server.deploy([(model, num_instances)])
        workload = PoissonWorkload(list(server.instances), rate=rate,
                                   num_requests=num_requests, seed=seed)
        report = server.run(workload.generate())
        reports.append(sorted(report.metrics.records,
                              key=lambda r: r.request_id))
    return typing.cast(tuple, tuple(reports))
