"""Runtime invariant auditing and differential-execution testing.

Every headline number of this reproduction flows through the
discrete-event simulator and :class:`~repro.serving.metrics.MetricsCollector`,
so a silent accounting bug corrupts the science.  This package turns the
simulator's redundancy into a correctness oracle:

* :class:`MachineAuditor` hooks one machine's
  :class:`~repro.simkit.links.FlowNetwork` and memory accounting and
  checks conservation invariants continuously (allocated rates never
  exceed link bandwidth, residuals stay non-negative, every reserve has
  a matching release, per-link ``bytes_carried`` equals the summed
  progress of the flows that crossed it);
* :class:`ServingAuditor` adds the serving-system invariants on top
  (request queues drained at quiesce, every submitted request recorded
  exactly once, GPU reservations match resident instances, no leaked
  staging buffers) and is enabled with ``ServerConfig(audit=True)`` or
  the ``--audit`` CLI flag;
* :mod:`repro.audit.differential` cross-checks the coalesced execution
  fast paths against the per-layer reference paths over seeded random
  models, plans and workloads.

The hooks are observer attributes that default to ``None``, so the audit
layer costs one attribute check per instrumented operation when off.
"""

from repro.audit.invariants import (
    AuditError,
    AuditViolation,
    MachineAuditor,
    ServingAuditor,
)
from repro.audit.cluster import ClusterAuditor
from repro.audit.shard import GlobalLedger, ShardLedger, reconcile
from repro.audit.differential import (
    DifferentialCase,
    DifferentialResult,
    differential_serving,
    random_model,
    run_case,
    run_differential_suite,
)

__all__ = [
    "AuditError",
    "AuditViolation",
    "ClusterAuditor",
    "DifferentialCase",
    "DifferentialResult",
    "GlobalLedger",
    "MachineAuditor",
    "ServingAuditor",
    "ShardLedger",
    "reconcile",
    "differential_serving",
    "random_model",
    "run_case",
    "run_differential_suite",
]
