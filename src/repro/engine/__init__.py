"""Execution engine: runs execution plans on the simulated machine.

Where :mod:`repro.core.stall` *predicts* timings analytically, this
package *executes* plans as discrete-event processes on a
:class:`~repro.hw.machine.Machine` — load streams issue real transfers on
the PCIe links, migration streams on NVLink, DHA kernels put their
zero-copy traffic on the primary GPU's lane — so contention between
concurrent cold-starts (paper Table 4) and between serving traffic and
provisioning emerges from link sharing.

Entry points:

* :func:`~repro.engine.executor.execute_plan` — one cold-start inference
  (the provisioning path).
* :func:`~repro.engine.executor.execute_warm` — one inference on an
  already-provisioned instance (DHA layers still read host memory).
* :func:`~repro.engine.transmission.transmit_model` — transmission-only
  experiments (paper Figure 6 / Table 2).
* :mod:`repro.engine.strategies` — convenience one-shot runners used by
  the benchmarks.
"""

from repro.engine.executor import ExecutionResult, LayerTrace, execute_plan, execute_warm
from repro.engine.transmission import TransmissionResult, transmit_model
from repro.engine.strategies import (
    run_concurrent_cold_starts,
    run_single_inference,
)

__all__ = [
    "ExecutionResult",
    "LayerTrace",
    "TransmissionResult",
    "execute_plan",
    "execute_warm",
    "run_concurrent_cold_starts",
    "run_single_inference",
    "transmit_model",
]
