"""Transmission-only experiments: serial vs parallel model loading.

Implements the three transmission modes of paper Section 3.2 (Figure 6
and Table 2), independent of inference:

* ``serial`` — the whole model over the target GPU's own PCIe lane;
* ``parallel`` — partitions loaded to several GPUs concurrently, each
  secondary partition forwarded to the target over NVLink *after it
  fully lands*;
* ``parallel-pipeline`` — as above, but each layer is forwarded as soon
  as it lands (the mode DeepPlan's PT builds on).

GPU selection spreads across PCIe switches first; with four GPUs on the
paper's two-switch p3.8xlarge, switch-uplink sharing halves the per-lane
bandwidth — the contention effect Table 2 measures.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.partitioner import partition_model
from repro.errors import TopologyError
from repro.hw.machine import Machine
from repro.models.graph import ModelSpec
from repro.simkit import Event, Process

__all__ = ["TransmissionResult", "transmit_model", "spread_gpus"]

MODES = ("serial", "parallel", "parallel-pipeline")


@dataclasses.dataclass
class TransmissionResult:
    """Outcome of loading one model onto the target GPU."""

    model_name: str
    mode: str
    gpus: tuple[int, ...]
    started_at: float
    finished_at: float
    lane_bytes: dict[int, int]
    lane_busy: dict[int, float]

    @property
    def load_time(self) -> float:
        return self.finished_at - self.started_at

    @property
    def average_pcie_bandwidth(self) -> float:
        """Mean per-lane achieved bandwidth, bytes/s (paper Table 2)."""
        rates = [self.lane_bytes[g] / self.lane_busy[g]
                 for g in self.lane_bytes if self.lane_busy[g] > 0]
        return sum(rates) / len(rates) if rates else 0.0


def spread_gpus(machine: Machine, target: int, count: int) -> list[int]:
    """Pick *count* GPUs (target first), spreading across PCIe switches.

    NVLink connectivity to the target is required for every secondary,
    and failed GPUs are never selected as secondaries.
    """
    if count < 1 or count > machine.gpu_count:
        raise TopologyError(
            f"cannot use {count} GPUs on a {machine.gpu_count}-GPU machine")
    if machine.gpu(target).failed:
        raise TopologyError(f"target gpu{target} has failed")
    chosen = [target]
    candidates = {g.index for g in machine.gpus
                  if g.index != target and not g.failed
                  and machine.has_nvlink(target, g.index)}
    while len(chosen) < count:
        if not candidates:
            raise TopologyError(
                f"only {len(chosen)} NVLink-reachable GPUs from gpu{target}")
        used_switches = {machine.switch_of(g) for g in chosen}
        # Greedily prefer a still-uncontended switch, lowest index first.
        best = min(candidates,
                   key=lambda g: (machine.switch_of(g) in used_switches, g))
        chosen.append(best)
        candidates.remove(best)
    return chosen


def transmit_model(machine: Machine, model: ModelSpec, target: int = 0,
                   mode: str = "serial", num_gpus: int = 1) -> Process:
    """Start a transmission of *model* onto GPU *target*.

    Returns a process whose value is a :class:`TransmissionResult`.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if mode == "serial":
        num_gpus = 1
    gpus = spread_gpus(machine, target, num_gpus)
    runner = _Transmitter(machine, model, mode, gpus)
    return machine.sim.process(runner.run(), name=f"transmit:{model.name}")


class _Transmitter:
    def __init__(self, machine: Machine, model: ModelSpec, mode: str,
                 gpus: list[int]) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.model = model
        self.mode = mode
        self.gpus = gpus
        self.lane_bytes: dict[int, int] = {g: 0 for g in gpus}
        self.lane_busy: dict[int, float] = {g: 0.0 for g in gpus}

    def run(self) -> typing.Generator[Event, object, TransmissionResult]:
        started_at = self.sim.now
        partitions = partition_model(self.model, len(self.gpus))
        workers = []
        for partition, gpu in zip(partitions, self.gpus):
            indices = [i for i in range(partition.start, partition.stop)
                       if self.model.layers[i].loadable]
            if gpu == self.gpus[0]:
                worker = self._load_only(gpu, indices)
            elif self.mode == "parallel":
                worker = self._load_then_forward(gpu, indices)
            else:
                worker = self._load_and_pipeline(gpu, indices)
            workers.append(self.sim.process(worker, name=f"lane-{gpu}"))
        for worker in workers:
            yield worker.done
        return TransmissionResult(
            model_name=self.model.name, mode=self.mode, gpus=tuple(self.gpus),
            started_at=started_at, finished_at=self.sim.now,
            lane_bytes=dict(self.lane_bytes), lane_busy=dict(self.lane_busy))

    def _load_layer(self, gpu: int, index: int) -> typing.Generator[Event, object, None]:
        nbytes = self.model.layers[index].param_bytes
        start = self.sim.now
        yield self.machine.host_to_device(gpu, nbytes)
        self.lane_bytes[gpu] += nbytes
        self.lane_busy[gpu] += self.sim.now - start

    def _load_only(self, gpu: int,
                   indices: list[int]) -> typing.Generator[Event, object, None]:
        for i in indices:
            yield from self._load_layer(gpu, i)

    def _load_then_forward(self, gpu: int, indices: list[int]
                           ) -> typing.Generator[Event, object, None]:
        """'parallel' mode: forward the partition once it fully landed."""
        total = 0
        for i in indices:
            yield from self._load_layer(gpu, i)
            total += self.model.layers[i].param_bytes
        if total:
            yield self.machine.device_to_device(gpu, self.gpus[0], total)

    def _load_and_pipeline(self, gpu: int, indices: list[int]
                           ) -> typing.Generator[Event, object, None]:
        """'parallel-pipeline' mode: forward each layer as it lands."""
        landed = {i: self.sim.event() for i in indices}

        def loader() -> typing.Generator[Event, object, None]:
            for i in indices:
                yield from self._load_layer(gpu, i)
                landed[i].succeed()

        load_process = self.sim.process(loader(), name=f"loader-{gpu}")
        for i in indices:
            yield landed[i]
            yield self.machine.device_to_device(
                gpu, self.gpus[0], self.model.layers[i].param_bytes)
        yield load_process.done
