"""The plan executor: load, migration, and execution streams.

Mirrors the paper's engine design (Section 4.3.4): a *load stream* copies
loaded layers host->GPU in plan order; with parallel transmission each
secondary GPU runs its own load stream plus a *migration stream*
forwarding layers to the primary over NVLink as they land; the
*execution stream* runs layers in order, waiting on a per-layer CUDA
event for loaded layers and skipping the dependency check for DHA layers.

Everything is a :mod:`repro.simkit` process issuing real transfers on the
machine's links, so two concurrent cold-starts contend exactly where the
hardware would make them contend.
"""

from __future__ import annotations

import dataclasses

import typing
import weakref

from repro.core.plan import ExecMethod, ExecutionPlan
from repro.hw.machine import Machine
from repro.models.costs import (
    DHA_KERNEL_PENALTY,
    EVENT_SYNC_OVERHEAD,
    KIND_TIME_FLOOR,
    CostModel,
)
from repro.simkit import Event, Process, all_of

__all__ = ["ExecutionResult", "LayerTrace", "execute_plan", "execute_warm",
           "plan_generator", "warm_generator", "warm_segments"]

#: DMA priority of secondary-partition copies relative to a lane's own
#: traffic.  Parallel transmission *borrows* another GPU's PCIe lane; its
#: copies are issued at lower queue priority so a concurrent cold-start
#: on that GPU keeps most of its own bandwidth — this is why the paper
#: finds PT interference mild (Table 4: each of two simultaneous PT+DHA
#: cold-starts still beats PipeSwitch).
SECONDARY_LOAD_WEIGHT = 0.4


@dataclasses.dataclass(frozen=True)
class LayerTrace:
    """Observed timing of one layer during a simulated execution."""

    index: int
    name: str
    method: ExecMethod
    ready: float
    start: float
    end: float
    stall: float


@dataclasses.dataclass
class ExecutionResult:
    """Outcome of one cold-start execution."""

    plan: ExecutionPlan
    primary_gpu: int
    secondary_gpus: tuple[int, ...]
    started_at: float
    finished_at: float
    #: Per-layer timings (empty when the run was executed in the
    #: coalesced fast path used by the serving system).
    layer_traces: list[LayerTrace]
    #: Summed pipeline stalls (always recorded, traces or not).
    total_stall: float
    #: Bytes loaded over each participating PCIe lane, with the lane's
    #: busy window — enough to compute the paper's Table 2 bandwidths.
    lane_bytes: dict[int, int]
    lane_span: dict[int, tuple[float, float]]

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at

    @property
    def execution_time(self) -> float:
        """GPU busy time (latency minus stalls), as in paper Figure 2."""
        return self.latency - self.total_stall

    def lane_bandwidth(self, gpu_index: int) -> float:
        """Average achieved PCIe bandwidth on one lane, bytes/second."""
        start, end = self.lane_span[gpu_index]
        if end <= start:
            return 0.0
        return self.lane_bytes[gpu_index] / (end - start)


def execute_plan(machine: Machine, cost_model: CostModel,
                 plan: ExecutionPlan, primary: int,
                 secondaries: typing.Sequence[int] = (),
                 detailed_traces: bool = True) -> Process:
    """Start a cold-start execution of *plan*; returns its process.

    The process's return value is an :class:`ExecutionResult`.  The
    caller is responsible for GPU memory accounting and for holding the
    primary GPU's compute resource if exclusivity is required (the
    serving system does both).

    ``detailed_traces=False`` selects the coalesced execution-stream fast
    path (consecutive non-waiting layers become one timeout, satisfied
    waits are skipped): identical timing, per-layer traces omitted — the
    serving system's hot path.
    """
    secondaries = tuple(secondaries)
    needed = plan.num_partitions - 1
    if len(secondaries) != needed:
        raise ValueError(
            f"plan has {plan.num_partitions} partitions; expected {needed} "
            f"secondary GPUs, got {len(secondaries)}")
    runner = _PlanRunner(machine, cost_model, plan, primary, secondaries,
                         detailed_traces=detailed_traces)
    return machine.sim.process(runner.run(), name=f"exec:{plan.model.name}")


def execute_warm(machine: Machine, cost_model: CostModel,
                 plan: ExecutionPlan, gpu: int,
                 coalesced: bool = True) -> Process:
    """Execute one inference on an already-provisioned instance.

    Loaded layers run from GPU memory; layers the plan left host-side
    keep paying their DHA traffic on the GPU's PCIe lane *every*
    inference — the recurring cost of DeepPlan's memory savings.

    ``coalesced=False`` selects the per-layer reference path (one timeout
    per layer): identical timing, one simulator event per layer — the
    oracle the differential-execution harness checks the fast path
    against.
    """
    runner = _PlanRunner(machine, cost_model, plan, gpu, ())
    return machine.sim.process(runner.run_warm(coalesced=coalesced),
                               name=f"warm:{plan.model.name}")


def plan_generator(machine: Machine, cost_model: CostModel,
                   plan: ExecutionPlan, primary: int,
                   secondaries: typing.Sequence[int] = (),
                   detailed_traces: bool = True
                   ) -> typing.Generator[Event, object, ExecutionResult]:
    """Like :func:`execute_plan`, but returns the bare generator.

    A caller that is itself a simkit process can ``yield from`` this
    instead of yielding a wrapper :class:`Process`, saving the process
    object, its completion event and two queue operations per cold start
    — the serving system's provisioning path.
    """
    secondaries = tuple(secondaries)
    needed = plan.num_partitions - 1
    if len(secondaries) != needed:
        raise ValueError(
            f"plan has {plan.num_partitions} partitions; expected {needed} "
            f"secondary GPUs, got {len(secondaries)}")
    runner = _PlanRunner(machine, cost_model, plan, primary, secondaries,
                         detailed_traces=detailed_traces)
    return runner.run()


def warm_generator(machine: Machine, cost_model: CostModel,
                   plan: ExecutionPlan, gpu: int, coalesced: bool = True
                   ) -> typing.Generator[Event, object, ExecutionResult]:
    """Like :func:`execute_warm`, but returns the bare generator.

    ``yield from`` this from another process to run a warm inference
    without spawning a per-request :class:`Process` — the serving
    system's hot path.
    """
    runner = _PlanRunner(machine, cost_model, plan, gpu, ())
    return runner.run_warm(coalesced=coalesced)


class _PlanRunner:
    """One execution of one plan; holds the per-run event plumbing."""

    def __init__(self, machine: Machine, cost_model: CostModel,
                 plan: ExecutionPlan, primary: int,
                 secondaries: tuple[int, ...],
                 detailed_traces: bool = True) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.costs = cost_model
        self.plan = plan
        self.primary = primary
        self.secondaries = secondaries
        self.batch = plan.batch_size
        self.detailed_traces = detailed_traces
        self._ready: dict[int, Event] = {}
        self._lane_bytes: dict[int, int] = {}
        self._lane_span: dict[int, tuple[float, float]] = {}

    # -- top-level ----------------------------------------------------------------

    def run(self) -> typing.Generator[Event, object, ExecutionResult]:
        started_at = self.sim.now
        plan = self.plan
        for i in plan.loaded_indices():
            self._ready[i] = self.sim.event(name=f"ready:{i}")

        self.sim.process(self._primary_load_stream(), name="load-stream")
        for partition_index, secondary in enumerate(self.secondaries, start=1):
            self.sim.process(
                self._secondary_pipeline(partition_index, secondary),
                name=f"secondary-{secondary}")

        pipelined = plan.strategy != "baseline"
        if not pipelined and self._ready:
            yield all_of(self.sim, list(self._ready.values()))

        if self.detailed_traces:
            traces = yield from self._execution_stream()
            total_stall = sum(trace.stall for trace in traces)
        else:
            traces = []
            total_stall = yield from self._execution_stream_coalesced()
        return ExecutionResult(
            plan=plan,
            primary_gpu=self.primary,
            secondary_gpus=self.secondaries,
            started_at=started_at,
            finished_at=self.sim.now,
            layer_traces=traces,
            total_stall=total_stall,
            lane_bytes=dict(self._lane_bytes),
            lane_span=dict(self._lane_span),
        )

    def run_warm(self, coalesced: bool = True
                 ) -> typing.Generator[Event, object, ExecutionResult]:
        """Warm inference: consecutive in-memory layers are coalesced into
        single timeouts (their durations just add), so a warm request
        costs a handful of simulator events instead of one per layer —
        the hot path of every serving experiment.  DHA layers still issue
        their real PCIe flows.  ``coalesced=False`` runs one timeout per
        layer instead (the differential harness's reference path)."""
        started_at = self.sim.now
        if coalesced:
            # The DHA body is inlined (instead of delegating to
            # _run_dha_layer) so every event resumes one generator frame
            # fewer — this loop runs a couple hundred thousand times per
            # serving experiment.  Same arithmetic, see _run_dha_layer.
            sim = self.sim
            network = self.machine.network
            path = self.machine.pcie_path(self.primary)
            for kind, value in warm_segments(self.plan, self.costs):
                if kind == "exec":
                    yield sim.timeout(typing.cast(float, value))
                    continue
                traffic, max_rate, compute, tail, extra = \
                    typing.cast(tuple, value)
                compute_end = sim.now + compute
                if traffic > 0:
                    yield network.transfer(path, traffic, max_rate=max_rate)
                resumed = sim.now
                if resumed < compute_end:
                    resumed = compute_end
                yield sim.timeout_at(resumed + tail + extra)
        else:
            for kind, value in _per_layer_warm_segments(self.plan,
                                                        self.costs):
                if kind == "exec":
                    yield self.sim.timeout(typing.cast(float, value))
                else:
                    yield from self._run_dha_layer(typing.cast(int, value))
        return ExecutionResult(
            plan=self.plan, primary_gpu=self.primary, secondary_gpus=(),
            started_at=started_at, finished_at=self.sim.now,
            layer_traces=[], total_stall=0.0, lane_bytes={}, lane_span={})

    # -- transfer streams -------------------------------------------------------------

    def _account_lane(self, gpu: int, nbytes: int, start: float) -> None:
        self._lane_bytes[gpu] = self._lane_bytes.get(gpu, 0) + nbytes
        first, _ = self._lane_span.get(gpu, (start, start))
        self._lane_span[gpu] = (min(first, start), self.sim.now)

    def _launch_load_flow(self, gpu: int, indices: list[int],
                          weight: float) -> list[Event]:
        """Start one bulk PCIe flow covering a run of layer copies.

        Per-copy DMA setup overhead is folded in as equivalent wire bytes
        (identical timing to back-to-back copies on an uncontended lane),
        and a milestone event marks each layer boundary — so a whole
        partition costs one flow instead of one per layer.
        """
        spec = self.machine.spec
        overhead_bytes = spec.pcie_copy_overhead * spec.pcie_lane_bandwidth
        offsets = []
        total = 0.0
        for i in indices:
            total += overhead_bytes + self.plan.model.layers[i].param_bytes
            offsets.append(total)
        _, milestones = self.machine.network.transfer_with_milestones(
            self.machine.pcie_path(gpu), total, offsets, weight=weight)
        return milestones

    def _primary_load_stream(self) -> typing.Generator[Event, object, None]:
        """The load stream: partition 0's layers, in order, one flow."""
        indices = self.plan.loaded_indices_in(0)
        if not indices:
            return
        start = self.sim.now
        milestones = self._launch_load_flow(self.primary, indices, 1.0)
        for i, landed in zip(indices, milestones):
            yield landed
            self._ready[i].succeed(self.sim.now)
        self._account_lane(self.primary,
                           self.plan.partition_load_bytes(0), start)

    def _secondary_pipeline(self, partition_index: int,
                            secondary: int) -> typing.Generator[Event, object, None]:
        """Load partition ``partition_index`` on *secondary*, forwarding
        layers to the primary over NVLink as they land.

        The migration stream forwards the *run* of layers that landed
        since it last woke as one NVLink copy — per-layer forwarding when
        it keeps up (NVLink is ~4x faster than the lane), naturally
        batching when it falls behind.
        """
        indices = self.plan.loaded_indices_in(partition_index)
        if not indices:
            return
        start = self.sim.now
        milestones = self._launch_load_flow(secondary, indices,
                                            SECONDARY_LOAD_WEIGHT)
        staging_bytes = self.plan.partition_load_bytes(partition_index)
        staging_tag = f"staging:{self.plan.model.name}:{id(self)}:{partition_index}"
        memory = self.machine.gpu(secondary).memory
        memory.reserve_staging(staging_tag, staging_bytes)
        try:
            position = 0
            while position < len(indices):
                yield milestones[position]
                run_end = position + 1
                while (run_end < len(indices)
                       and milestones[run_end].triggered):
                    run_end += 1
                nbytes = sum(self.plan.model.layers[i].param_bytes
                             for i in indices[position:run_end])
                yield self.machine.device_to_device(secondary, self.primary,
                                                    nbytes)
                for i in indices[position:run_end]:
                    self._ready[i].succeed(self.sim.now)
                position = run_end
            self._account_lane(secondary, staging_bytes, start)
        finally:
            memory.release_staging(staging_tag)

    # -- execution stream ----------------------------------------------------------------

    def _execution_stream(self) -> typing.Generator[
            Event, object, list[LayerTrace]]:
        traces: list[LayerTrace] = []
        for i, layer in enumerate(self.plan.model.layers):
            method = self.plan.method(i)
            wait_start = self.sim.now
            if layer.loadable and method is ExecMethod.LOAD:
                yield self._ready[i]
                ready_at = typing.cast(float, self._ready[i].value)
                stall = self.sim.now - wait_start
                start = self.sim.now
                yield self.sim.timeout(
                    self.costs.exec_inmem(layer, self.batch)
                    + EVENT_SYNC_OVERHEAD)
            elif layer.loadable:
                ready_at, stall, start = 0.0, 0.0, self.sim.now
                yield from self._run_dha_layer(i)
            else:
                ready_at, stall, start = 0.0, 0.0, self.sim.now
                yield self.sim.timeout(self.costs.exec_inmem(layer, self.batch))
            traces.append(LayerTrace(
                index=i, name=layer.name, method=method, ready=ready_at,
                start=start, end=self.sim.now, stall=stall))
        return traces

    def _execution_stream_coalesced(self) -> typing.Generator[
            Event, object, float]:
        """Fast-path execution stream: identical timing, no traces.

        Runs of layers that never wait (parameter-free, plus the
        in-memory execution following each loaded layer) collapse into a
        single timeout; per-layer waits are skipped when the parameter
        landed before the execution stream got there.  Returns the summed
        stall time.
        """
        total_stall = 0.0
        sim = self.sim
        network = self.machine.network
        path = self.machine.pcie_path(self.primary)
        for kind, value in _cold_exec_segments(self.plan, self.costs):
            if kind == "exec":
                yield sim.timeout(typing.cast(float, value))
            elif kind == "dha":
                # Inlined DHA body (see run_warm): one generator frame
                # fewer per event.  Same arithmetic as _run_dha_layer.
                traffic, max_rate, compute, tail, extra = \
                    typing.cast(tuple, value)
                compute_end = sim.now + compute
                if traffic > 0:
                    yield network.transfer(path, traffic, max_rate=max_rate)
                resumed = sim.now
                if resumed < compute_end:
                    resumed = compute_end
                yield sim.timeout_at(resumed + tail + extra)
            else:
                ready = self._ready[typing.cast(int, value)]
                if not ready.triggered:
                    wait_start = self.sim.now
                    yield ready
                    total_stall += self.sim.now - wait_start
        return total_stall

    def _run_dha_layer(self, i: int, tail_extra: float = 0.0
                       ) -> typing.Generator[Event, object, None]:
        """Execute layer *i* by direct-host-access.

        The kernel's zero-copy reads become a real flow on the primary
        GPU's PCIe lane (capped at the layer's effective DHA bandwidth),
        overlapped with the compute roofline; so DHA execution both
        suffers from and causes PCIe contention.

        The layer ends at ``max(compute end, transfer end)`` plus the
        kernel-switch penalty and activation writeback; waiting on the
        transfer and then sleeping to that precomputed absolute instant
        is equivalent to joining compute and transfer with ``all_of`` but
        costs two simulator events instead of six.

        ``tail_extra`` extends the final sleep: coalesced schedules fold
        the in-memory run that follows a DHA layer into its tail timeout
        (nothing touches the network during either), saving one event per
        pair at identical end times.
        """
        layer = self.plan.model.layers[i]
        traffic = layer.dha_pcie_bytes(self.batch)
        compute = max(KIND_TIME_FLOOR[layer.kind],
                      self.costs.compute_time(layer, self.batch))
        compute_end = self.sim.now + compute
        if traffic > 0:
            yield self.machine.network.transfer(
                self.machine.pcie_path(self.primary), traffic,
                max_rate=self.costs.dha_bandwidth(layer))
        act_time = (layer.act_bytes_per_item * self.batch
                    / self.costs.gpu.hbm_bandwidth)
        resumed = self.sim.now
        if resumed < compute_end:
            resumed = compute_end
        yield self.sim.timeout_at(
            resumed + (DHA_KERNEL_PENALTY + act_time) + tail_extra)


# Segment schedules are cached by *identity* of (plan, cost model): the
# serving system reuses one plan object across thousands of requests, and
# hashing a whole frozen ExecutionPlan (hundreds of layer specs) per
# request would dominate the simulation.  Entries hold no strong
# references to their keys; instead a finalizer on both objects drops the
# entry when either dies, so plans discarded by planner sweeps stay
# collectible and ids cannot be recycled while an entry is live.
_SEGMENT_CACHE: dict[tuple[str, int, int], tuple[tuple[str, object], ...]] = {}


def _cached_segments(kind: str, plan: ExecutionPlan, costs: CostModel,
                     builder) -> tuple[tuple[str, object], ...]:
    key = (kind, id(plan), id(costs))
    hit = _SEGMENT_CACHE.get(key)
    if hit is not None:
        return hit
    segments = builder(plan, costs)
    _SEGMENT_CACHE[key] = segments
    for anchor in (plan, costs):
        weakref.finalize(anchor, _SEGMENT_CACHE.pop, key, None)
    return segments


def _cold_exec_segments(plan: ExecutionPlan, costs: CostModel
                        ) -> tuple[tuple[str, object], ...]:
    """Cold-start execution schedule with non-waiting runs coalesced.

    Segment kinds: ``("wait", i)`` — block until layer *i*'s parameters
    are ready; ``("exec", seconds)`` — run for that long;
    ``("dha", (traffic, max_rate, compute, tail, extra))`` — execute a
    layer by direct-host-access, parameters precomputed by
    :func:`_dha_segment`, the following in-memory run folded into
    ``extra`` by :func:`_fold_dha_tails`.
    """
    return _cached_segments("cold", plan, costs, _build_cold_segments)


def _dha_segment(layer, costs: CostModel, batch: int) -> tuple[str, object]:
    """Precomputed DHA segment: ``("dha", (traffic, max_rate, compute,
    tail, extra))``.

    Everything that depends only on (plan, cost model, batch) — the PCIe
    traffic, the rate cap, the compute roofline and the
    penalty-plus-writeback tail — is evaluated once at schedule-build
    time instead of per request.  ``extra`` is the in-memory run folded
    into the tail sleep by :func:`_fold_dha_tails` (initially zero).
    Float associativity matches :meth:`_PlanRunner._run_dha_layer`
    term for term, so both paths land on bit-identical end times.
    """
    traffic = layer.dha_pcie_bytes(batch)
    compute = max(KIND_TIME_FLOOR[layer.kind],
                  costs.compute_time(layer, batch))
    act_time = layer.act_bytes_per_item * batch / costs.gpu.hbm_bandwidth
    return ("dha", (traffic, costs.dha_bandwidth(layer), compute,
                    DHA_KERNEL_PENALTY + act_time, 0.0))


def _fold_dha_tails(segments: list[tuple[str, object]]
                    ) -> tuple[tuple[str, object], ...]:
    """Fold each ``("exec", t)`` that follows a DHA segment into the DHA
    layer's tail sleep (its ``extra`` slot) — one simulator event instead
    of two, at a bit-identical end time (the tail sleep already targets
    an absolute instant; the run just extends it)."""
    folded: list[tuple[str, object]] = []
    for kind, value in segments:
        if kind == "exec" and folded and folded[-1][0] == "dha":
            dha = typing.cast(tuple, folded[-1][1])
            folded[-1] = ("dha", dha[:4] + (value,))
            continue
        folded.append((kind, value))
    return tuple(folded)


def _build_cold_segments(plan: ExecutionPlan, costs: CostModel
                         ) -> tuple[tuple[str, object], ...]:
    segments: list[tuple[str, object]] = []
    accumulated = 0.0
    for i, layer in enumerate(plan.model.layers):
        if layer.loadable and plan.method(i) is ExecMethod.LOAD:
            if accumulated:
                segments.append(("exec", accumulated))
                accumulated = 0.0
            segments.append(("wait", i))
            accumulated += (costs.exec_inmem(layer, plan.batch_size)
                            + EVENT_SYNC_OVERHEAD)
        elif layer.loadable:
            if accumulated:
                segments.append(("exec", accumulated))
                accumulated = 0.0
            segments.append(_dha_segment(layer, costs, plan.batch_size))
        else:
            accumulated += costs.exec_inmem(layer, plan.batch_size)
    if accumulated:
        segments.append(("exec", accumulated))
    return _fold_dha_tails(segments)


def warm_segments(plan: ExecutionPlan, costs: CostModel
                  ) -> tuple[tuple[str, object], ...]:
    """Warm-execution schedule: runs of in-memory layers coalesced.

    Public so the serving system can drive the warm loop from its own
    worker generator (one frame per event resume) instead of delegating
    through :func:`warm_generator`.  Segment kinds are those of
    :func:`_cold_exec_segments`, minus ``"wait"``.
    """
    return _cached_segments("warm", plan, costs, _build_warm_segments)


def _build_warm_segments(plan: ExecutionPlan, costs: CostModel
                         ) -> tuple[tuple[str, object], ...]:
    segments: list[tuple[str, object]] = []
    accumulated = 0.0
    for i, layer in enumerate(plan.model.layers):
        if layer.loadable and plan.method(i) is ExecMethod.DHA:
            if accumulated:
                segments.append(("exec", accumulated))
                accumulated = 0.0
            segments.append(_dha_segment(layer, costs, plan.batch_size))
        else:
            accumulated += costs.exec_inmem(layer, plan.batch_size)
    if accumulated:
        segments.append(("exec", accumulated))
    return _fold_dha_tails(segments)


def _per_layer_warm_segments(plan: ExecutionPlan, costs: CostModel
                             ) -> tuple[tuple[str, object], ...]:
    """Warm-execution schedule with one segment per layer (uncached)."""
    return tuple(
        ("dha", i) if layer.loadable and plan.method(i) is ExecMethod.DHA
        else ("exec", costs.exec_inmem(layer, plan.batch_size))
        for i, layer in enumerate(plan.model.layers))
