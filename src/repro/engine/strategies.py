"""One-shot runners: plan a model and execute it on a fresh machine.

These helpers wrap the plan-then-execute cycle the single-inference
benchmarks repeat (paper Figures 11, 12, 16 and Table 4): build a
simulator and machine from a preset, generate the plan for a strategy,
run the cold-start, and return the observed result(s).
"""

from __future__ import annotations

import typing

from repro.core.deepplan import DeepPlan, Strategy
from repro.engine.executor import ExecutionResult, execute_plan
from repro.hw.machine import Machine
from repro.hw.specs import MachineSpec
from repro.models.graph import ModelSpec
from repro.simkit import Simulator

__all__ = ["run_single_inference", "run_concurrent_cold_starts"]


def _secondaries_for(machine: Machine, planner: DeepPlan, plan, primary: int
                     ) -> list[int]:
    if plan.num_partitions == 1:
        return []
    return planner.secondary_gpus(primary, plan)


def run_single_inference(machine_spec: MachineSpec, model: ModelSpec,
                         strategy: "Strategy | str",
                         batch_size: int = 1,
                         planner: DeepPlan | None = None) -> ExecutionResult:
    """Cold-start *model* once under *strategy* on an idle machine."""
    planner = planner or DeepPlan(machine_spec, noise=0.0)
    plan = planner.plan(model, strategy, batch_size=batch_size)
    sim = Simulator()
    machine = Machine(sim, machine_spec)
    primary = 0
    secondaries = _secondaries_for(machine, planner, plan, primary)
    process = execute_plan(machine, planner.cost_model, plan, primary,
                           secondaries)
    return typing.cast(ExecutionResult, sim.run(process.done))


def run_concurrent_cold_starts(machine_spec: MachineSpec, model: ModelSpec,
                               strategy: "Strategy | str",
                               primaries: typing.Sequence[int],
                               batch_size: int = 1,
                               planner: DeepPlan | None = None
                               ) -> list[ExecutionResult]:
    """Cold-start the same model on several primary GPUs simultaneously.

    This is the paper's Table 4 interference experiment: with parallel
    transmission, each primary borrows its cross-switch partner's PCIe
    lane, so two simultaneous cold-starts contend on every lane involved.
    """
    planner = planner or DeepPlan(machine_spec, noise=0.0)
    plan = planner.plan(model, strategy, batch_size=batch_size)
    sim = Simulator()
    machine = Machine(sim, machine_spec)
    processes = []
    for primary in primaries:
        secondaries = _secondaries_for(machine, planner, plan, primary)
        processes.append(execute_plan(machine, planner.cost_model, plan,
                                      primary, secondaries))
    results = []
    for process in processes:
        results.append(typing.cast(ExecutionResult, sim.run(process.done)))
    return results
