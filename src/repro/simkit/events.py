"""Events: the unit of synchronization in the simulation kernel.

An :class:`Event` starts *pending* and is triggered exactly once, either
with :meth:`Event.succeed` (carrying an optional value) or
:meth:`Event.fail` (carrying an exception).  Processes wait on events by
yielding them; when the event triggers, the process resumes with the
event's value (or the exception is raised inside the process).

Callbacks attached to an event run through the simulator's queue at the
trigger timestamp, which keeps resumption order deterministic (FIFO among
events triggered at the same instant) and avoids unbounded recursion.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkit.sim import Simulator

__all__ = ["Event", "all_of", "any_of"]

_PENDING = "pending"
_SUCCEEDED = "succeeded"
_FAILED = "failed"


class Event:
    """A one-shot synchronization point in simulated time."""

    __slots__ = ("sim", "_state", "_value", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._state = _PENDING
        self._value: object = None
        self._callbacks: list[typing.Callable[[Event], None]] | None = []

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._state != _PENDING

    @property
    def ok(self) -> bool:
        """True if the event succeeded (False while pending or failed)."""
        return self._state == _SUCCEEDED

    @property
    def failed(self) -> bool:
        return self._state == _FAILED

    @property
    def value(self) -> object:
        """The success value or failure exception of a triggered event."""
        if self._state == _PENDING:
            raise RuntimeError(f"event {self!r} has not been triggered")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully, delivering *value* to waiters."""
        # _trigger and _schedule_event_dispatch, inlined: this runs once
        # per successful event, which is nearly every action the
        # simulator executes.
        if self._state is not _PENDING:
            raise RuntimeError(f"event {self!r} already triggered")
        self._state = _SUCCEEDED
        self._value = value
        sim = self.sim
        sim._ripe.append((next(sim._sequence), self._dispatch))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception raised into each waiter."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._trigger(_FAILED, exception)
        return self

    def _trigger(self, state: str, value: object) -> None:
        if self._state != _PENDING:
            raise RuntimeError(f"event {self!r} already triggered")
        self._state = state
        self._value = value
        self.sim._schedule_event_dispatch(self)

    def _dispatch(self) -> None:
        """Run callbacks; invoked by the simulator at the trigger time."""
        callbacks = self._callbacks
        self._callbacks = None
        for callback in callbacks:  # type: ignore[union-attr]
            callback(self)

    # -- waiting -----------------------------------------------------------

    def add_callback(self, callback: typing.Callable[["Event"], None]) -> None:
        """Run *callback(event)* once the event triggers.

        If the event already triggered and dispatched, the callback is
        scheduled to run immediately (at the current simulated time).
        """
        if self._callbacks is None:
            self.sim._schedule_callback(lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"<Event{label} {self._state} at t={self.sim.now:.6f}>"


def all_of(sim: "Simulator", events: typing.Sequence[Event]) -> Event:
    """An event that succeeds once every event in *events* succeeds.

    Its value is the list of the constituent values, in input order.  If
    any constituent fails, the combined event fails with that exception
    (the first failure wins).
    """
    combined = Event(sim, name="all_of")
    events = list(events)
    if not events:
        return combined.succeed([])
    pending = len(events)

    def on_trigger(event: Event) -> None:
        nonlocal pending
        if combined.triggered:
            return
        if event.failed:
            combined.fail(typing.cast(BaseException, event.value))
            return
        pending -= 1
        if pending == 0:
            combined.succeed([e.value for e in events])

    for event in events:
        event.add_callback(on_trigger)
    return combined


def any_of(sim: "Simulator", events: typing.Sequence[Event]) -> Event:
    """An event that succeeds as soon as any event in *events* triggers.

    Its value is the value of the first event to trigger.  A failure of
    the first-triggering event fails the combined event.
    """
    combined = Event(sim, name="any_of")
    events = list(events)
    if not events:
        raise ValueError("any_of() requires at least one event")

    def on_trigger(event: Event) -> None:
        if combined.triggered:
            return
        if event.failed:
            combined.fail(typing.cast(BaseException, event.value))
        else:
            combined.succeed(event.value)

    for event in events:
        event.add_callback(on_trigger)
    return combined
