"""The simulator core: event queue, clock, and coroutine processes.

A :class:`Simulator` owns the clock and a priority queue of scheduled
actions.  :class:`Process` wraps a generator; each ``yield`` hands the
simulator an :class:`~repro.simkit.events.Event` (or another process) to
wait on, and the process resumes with the event's value.  Failed events
raise inside the process, so simulated errors propagate like ordinary
exceptions.

Scheduling uses two queues that together behave as one priority queue
ordered by ``(time, sequence)``: a heap for future actions, and a FIFO
deque for actions at the *current* instant (event dispatches and
zero-delay callbacks).  Same-instant dispatch is the hottest operation in
the kernel — every event trigger lands here — and a deque append is far
cheaper than a heap sift while preserving the exact same global order,
because same-instant entries always carry fresh (larger) sequence
numbers.
"""

from __future__ import annotations

import collections
import heapq
import itertools
import typing

from repro.simkit.events import _FAILED, _PENDING, Event

__all__ = ["Simulator", "Process", "Interrupt"]

_INF = float("inf")


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


ProcessGenerator = typing.Generator[Event, object, object]


class Process:
    """A running coroutine in simulated time.

    Processes are created through :meth:`Simulator.process`.  A process is
    itself waitable: yielding a process from another process waits for its
    completion and receives its return value.
    """

    __slots__ = ("sim", "name", "_generator", "_waiting_on", "done")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Event | None = None
        #: Event triggered with the generator's return value when it ends.
        self.done = Event(sim, name=f"{self.name}.done")
        sim._schedule_callback(lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        return not self.done.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned (its eventual
        trigger is ignored by this process).
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self.name}")
        self.sim._schedule_callback(
            lambda: self._resume(None, Interrupt(cause), forced=True))

    # -- driving the generator ---------------------------------------------

    def _on_event(self, event: Event) -> None:
        # The body of _resume, repeated inline rather than called: this
        # is the per-event resume path — one function frame here is one
        # frame per event in the simulation.  Direct _state checks (not
        # the .failed/.value properties) for the same reason.
        if self._waiting_on is not event:
            return  # stale wake-up after an interrupt
        self._waiting_on = None
        if self.done._state is not _PENDING:
            return
        try:
            if event._state is _FAILED:
                target = self._generator.throw(
                    typing.cast(BaseException, event._value))
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - simulated failure
            self.done.fail(error)
            return
        if target.__class__ is Event:  # the overwhelmingly common yield
            pass
        elif isinstance(target, Process):
            target = target.done
        elif not isinstance(target, Event):
            self.done.fail(TypeError(
                f"process {self.name} yielded {target!r}; expected an "
                "Event or Process"))
            return
        self._waiting_on = target
        if target._callbacks is None:
            self.sim._schedule_callback(lambda: self._on_event(target))
        else:
            target._callbacks.append(self._on_event)

    def _resume(self, value: object, exc: BaseException | None,
                forced: bool = False) -> None:
        if self.done._state is not _PENDING:
            return
        if forced:
            self._waiting_on = None
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - simulated failure
            self.done.fail(error)
            return

        if target.__class__ is Event:  # the overwhelmingly common yield
            event = target
        elif isinstance(target, Process):
            event = target.done
        elif isinstance(target, Event):
            event = target
        else:
            self.done.fail(TypeError(
                f"process {self.name} yielded {target!r}; expected an "
                "Event or Process"))
            return
        self._waiting_on = event
        event.add_callback(self._on_event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name} ({state})>"


class Simulator:
    """Owns the simulated clock and the pending-action queues."""

    __slots__ = ("_now", "_queue", "_ripe", "_sequence")

    def __init__(self) -> None:
        self._now = 0.0
        #: Future (and not-yet-popped same-instant) actions: (at, seq, fn).
        self._queue: list[tuple[float, int, typing.Callable[[], None]]] = []
        #: Current-instant actions in FIFO order: (seq, fn).  Invariant:
        #: every entry was appended at time == _now with a sequence number
        #: larger than any heap entry pushed before it, and the deque is
        #: drained before the clock advances.
        self._ripe: collections.deque[
            tuple[int, typing.Callable[[], None]]] = collections.deque()
        self._sequence = itertools.count()

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def pending_actions(self) -> int:
        """Number of scheduled-but-unexecuted actions (audit introspection)."""
        return len(self._queue) + len(self._ripe)

    # -- scheduling ----------------------------------------------------------

    def _push(self, at: float, action: typing.Callable[[], None]) -> None:
        heapq.heappush(self._queue, (at, next(self._sequence), action))

    def _push_now(self, action: typing.Callable[[], None]) -> None:
        self._ripe.append((next(self._sequence), action))

    def _schedule_callback(self, action: typing.Callable[[], None],
                           delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        if delay == 0.0:
            self._ripe.append((next(self._sequence), action))
        else:
            heapq.heappush(self._queue,
                           (self._now + delay, next(self._sequence), action))

    def _schedule_event_dispatch(self, event: Event) -> None:
        self._ripe.append((next(self._sequence), event._dispatch))

    # -- public construction helpers ------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh untriggered event, to be triggered by user code."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Event:
        """An event that succeeds *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"negative timeout {delay!r}")
        event = Event(self, name="timeout")
        # The bound method is the scheduled action when there is no value
        # to deliver (the common case) — no closure allocation.
        heapq.heappush(self._queue, (
            self._now + delay, next(self._sequence),
            event.succeed if value is None else lambda: event.succeed(value)))
        return event

    def timeout_at(self, at: float, value: object = None) -> Event:
        """An event that succeeds at the absolute time *at*.

        Equivalent to ``timeout(at - now)`` but without the float
        round-trip through a relative delay, so chained waits can target
        exact precomputed instants.
        """
        if at < self._now:
            raise ValueError(f"timeout_at({at!r}) is in the past "
                             f"(now={self._now!r})")
        event = Event(self, name="timeout")
        heapq.heappush(self._queue, (
            at, next(self._sequence),
            event.succeed if value is None else lambda: event.succeed(value)))
        return event

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a coroutine process running from the current time."""
        return Process(self, generator, name=name)

    # -- execution -------------------------------------------------------------

    def step(self) -> None:
        """Execute the next scheduled action, advancing the clock."""
        queue, ripe = self._queue, self._ripe
        if ripe and not (queue and queue[0][0] <= self._now
                         and queue[0][1] < ripe[0][0]):
            _, action = ripe.popleft()
            action()
            return
        at, _, action = heapq.heappop(queue)
        if at < self._now:
            raise RuntimeError("time went backwards")  # pragma: no cover
        self._now = at
        action()

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        ``until`` may be ``None`` (run until no actions remain), a time
        (run until the clock would pass it, then set the clock to it), or
        an :class:`Event` (run until that event triggers and return its
        value; raise if it failed).
        """
        if isinstance(until, Event):
            return self._run_until_event(until)
        deadline = _INF if until is None else float(until)
        if deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        queue, ripe, heappop = self._queue, self._ripe, heapq.heappop
        while True:
            if ripe:
                # A heap entry at the current instant with a smaller
                # sequence number predates the deque head: run it first.
                if queue and queue[0][0] <= self._now \
                        and queue[0][1] < ripe[0][0]:
                    self._now, _, action = heappop(queue)
                else:
                    _, action = ripe.popleft()
            elif queue and queue[0][0] <= deadline:
                self._now, _, action = heappop(queue)
            else:
                break
            action()
        if deadline != _INF:
            self._now = deadline
        return None

    def _run_until_event(self, event: Event) -> object:
        queue, ripe, heappop = self._queue, self._ripe, heapq.heappop
        while event._state is _PENDING:
            if ripe:
                if queue and queue[0][0] <= self._now \
                        and queue[0][1] < ripe[0][0]:
                    self._now, _, action = heappop(queue)
                else:
                    _, action = ripe.popleft()
            elif queue:
                self._now, _, action = heappop(queue)
            else:
                raise RuntimeError(
                    f"simulation ran out of events before {event!r} triggered")
            action()
        # Drain same-instant dispatches so callbacks at this time complete.
        while ripe or (queue and queue[0][0] <= self._now):
            if ripe and not (queue and queue[0][0] <= self._now
                             and queue[0][1] < ripe[0][0]):
                _, action = ripe.popleft()
            else:
                self._now, _, action = heappop(queue)
            action()
        if event._state is _FAILED:
            raise typing.cast(BaseException, event.value)
        return event.value
