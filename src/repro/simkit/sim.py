"""The simulator core: event queue, clock, and coroutine processes.

A :class:`Simulator` owns the clock and a priority queue of scheduled
actions.  :class:`Process` wraps a generator; each ``yield`` hands the
simulator an :class:`~repro.simkit.events.Event` (or another process) to
wait on, and the process resumes with the event's value.  Failed events
raise inside the process, so simulated errors propagate like ordinary
exceptions.

Scheduling uses two queues that together behave as one priority queue
ordered by ``(time, sequence)``: a heap for future actions, and a FIFO
deque for actions at the *current* instant (event dispatches and
zero-delay callbacks).  Same-instant dispatch is the hottest operation in
the kernel — every event trigger lands here — and a deque append is far
cheaper than a heap sift while preserving the exact same global order,
because same-instant entries always carry fresh (larger) sequence
numbers.
"""

from __future__ import annotations

import collections
import heapq
import itertools
import typing

from repro import fastpath
from repro.simkit.events import _FAILED, _PENDING, _SUCCEEDED, Event

__all__ = ["Simulator", "Process", "Interrupt"]

_INF = float("inf")


#: Bucket adoptions between calendar width-adaptation checks.
_CAL_RESIZE = 64


class _CalendarQueue:
    """A calendar (bucketed) priority queue of ``(time, seq, action)``.

    Entries hash by time into fixed-width *day* buckets.  Future-day
    buckets are plain unsorted lists — a push is a dict probe and an
    append, with none of the heap-sift churn that dominates timer
    re-arm workloads — and a bucket is only ordered when its day comes
    up for draining.  The draining bucket is a binary min-heap, so the
    three operations it must support — heapify at adoption, pop-min,
    and insert of a same-day entry — are all C-level ``heapq`` calls on
    a bucket-sized heap; the current minimum entry is cached in
    :attr:`head` so peeking (which the run loop does every iteration)
    is an attribute load.

    The day width adapts to the observed bucket occupancy: every
    ``_CAL_RESIZE`` bucket adoptions, the mean entries-per-bucket is
    compared against the target fill and the queue re-buckets itself
    when it is off by 2x or more.  The band must be tighter than the
    rebucketing is costly: at 4x tolerance a timer-wheel mix settles
    at fill ~3, paying three adoptions' worth of bookkeeping (days-heap
    pop, dict pop, heapify) where one would do.  Width only affects
    speed, never order — entries compare by ``(time, seq)`` wherever
    they sit — and it adapts deterministically (a function of the
    entries alone), so replays stay identical.

    The hot paths — push in :meth:`Simulator.timeout`, pop in
    :meth:`Simulator._run_fast` — are inlined at their call sites; the
    methods here are the same operations for everything else.
    """

    #: Aim for this many entries per bucket after a resize.  Adoption
    #: bookkeeping amortizes over the fill, and popping from a 16-entry
    #: heap costs barely more than from a 4-entry one, so erring high
    #: wins: 16 measures ~10% faster than 8 on the event-churn mix.
    _TARGET_FILL = 16.0

    __slots__ = ("_width", "_inv_width", "_buckets", "_days", "_cur_day",
                 "_bucket", "head", "_size", "_adoptions", "_adopted")

    def __init__(self, width: float = 1e-4) -> None:
        self._width = width
        self._inv_width = 1.0 / width
        #: Future days -> unsorted entry lists (the draining day is not
        #: in here; it lives in _cur_day/_bucket).
        self._buckets: dict[int, list] = {}
        #: Min-heap of the future day numbers present in _buckets.
        self._days: list[int] = []
        self._cur_day: int | None = None
        #: The draining day's entries, as a binary min-heap.
        self._bucket: list | None = None
        #: The minimum entry, or None when empty.
        self.head: tuple | None = None
        self._size = 0
        #: Buckets adopted / entries they held since the last width check.
        self._adoptions = 0
        self._adopted = 0

    def __len__(self) -> int:
        return self._size

    def push(self, entry: tuple) -> None:
        cur = self._cur_day
        day = int(entry[0] * self._inv_width)
        if cur is None:
            self._cur_day = day
            self._bucket = [entry]
            self.head = entry
        elif day == cur:
            heapq.heappush(self._bucket, entry)  # type: ignore[arg-type]
            self.head = self._bucket[0]  # type: ignore[index]
        elif day < cur:
            # Earlier than the draining day (the clock lags the drained
            # horizon): demote the current bucket and adopt this one.
            self._buckets[cur] = self._bucket  # type: ignore[assignment]
            heapq.heappush(self._days, cur)
            self._cur_day = day
            self._bucket = [entry]
            self.head = entry
        else:
            bucket = self._buckets.get(day)
            if bucket is None:
                self._buckets[day] = [entry]
                heapq.heappush(self._days, day)
            else:
                bucket.append(entry)
        self._size += 1

    def pop(self) -> tuple:
        """Remove and return the minimum entry (which is :attr:`head`)."""
        bucket = self._bucket
        entry = heapq.heappop(bucket)  # type: ignore[arg-type]
        self._size -= 1
        if bucket:
            self.head = bucket[0]  # type: ignore[index]
        else:
            self._advance()
        return entry

    def _advance(self) -> None:
        """The draining bucket emptied; adopt the next day (or go idle).

        Width adaptation hangs off adoption, not off every pop: the mean
        occupancy of adopted buckets *is* the quantity the width tries to
        control, and measuring it here keeps the per-pop path free of
        counter updates.
        """
        days = self._days
        if days:
            day = heapq.heappop(days)
            bucket = self._buckets.pop(day)
            heapq.heapify(bucket)
            self._cur_day = day
            self._bucket = bucket
            self.head = bucket[0]
            self._adoptions += 1
            self._adopted += len(bucket)
            if self._adoptions >= _CAL_RESIZE:
                self._maybe_resize()
        else:
            self._cur_day = None
            self._bucket = None
            self.head = None

    def _maybe_resize(self) -> None:
        mean = self._adopted / self._adoptions
        self._adoptions = 0
        self._adopted = 0
        target = self._TARGET_FILL
        if target * 0.5 <= mean <= target * 2.0:
            return
        ideal = self._width * (target / mean)
        entries = [e for bucket in self._buckets.values() for e in bucket]
        if self._bucket:
            entries.extend(self._bucket)
        self._width = ideal
        self._inv_width = inv = 1.0 / ideal
        self._buckets.clear()
        self._days.clear()
        self._cur_day = None
        self._bucket = None
        self.head = None
        buckets = self._buckets
        for entry in entries:
            day = int(entry[0] * inv)
            bucket = buckets.get(day)
            if bucket is None:
                buckets[day] = [entry]
            else:
                bucket.append(entry)
        self._days.extend(buckets)
        heapq.heapify(self._days)
        if entries:
            self._advance()


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


ProcessGenerator = typing.Generator[Event, object, object]


class Process:
    """A running coroutine in simulated time.

    Processes are created through :meth:`Simulator.process`.  A process is
    itself waitable: yielding a process from another process waits for its
    completion and receives its return value.
    """

    __slots__ = ("sim", "name", "_generator", "_waiting_on", "done")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Event | None = None
        #: Event triggered with the generator's return value when it ends.
        self.done = Event(sim, name=f"{self.name}.done")
        sim._schedule_callback(lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        return not self.done.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned (its eventual
        trigger is ignored by this process).
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self.name}")
        self.sim._schedule_callback(
            lambda: self._resume(None, Interrupt(cause), forced=True))

    # -- driving the generator ---------------------------------------------

    def _on_event(self, event: Event) -> None:
        # The body of _resume, repeated inline rather than called: this
        # is the per-event resume path — one function frame here is one
        # frame per event in the simulation.  Direct _state checks (not
        # the .failed/.value properties) for the same reason.
        if self._waiting_on is not event:
            return  # stale wake-up after an interrupt
        self._waiting_on = None
        if self.done._state is not _PENDING:
            return
        try:
            if event._state is _FAILED:
                target = self._generator.throw(
                    typing.cast(BaseException, event._value))
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - simulated failure
            self.done.fail(error)
            return
        if target.__class__ is Event:  # the overwhelmingly common yield
            pass
        elif isinstance(target, Process):
            target = target.done
        elif not isinstance(target, Event):
            self.done.fail(TypeError(
                f"process {self.name} yielded {target!r}; expected an "
                "Event or Process"))
            return
        self._waiting_on = target
        if target._callbacks is None:
            self.sim._schedule_callback(lambda: self._on_event(target))
        else:
            target._callbacks.append(self._on_event)

    def _resume(self, value: object, exc: BaseException | None,
                forced: bool = False) -> None:
        if self.done._state is not _PENDING:
            return
        if forced:
            self._waiting_on = None
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - simulated failure
            self.done.fail(error)
            return

        if target.__class__ is Event:  # the overwhelmingly common yield
            event = target
        elif isinstance(target, Process):
            event = target.done
        elif isinstance(target, Event):
            event = target
        else:
            self.done.fail(TypeError(
                f"process {self.name} yielded {target!r}; expected an "
                "Event or Process"))
            return
        self._waiting_on = event
        event.add_callback(self._on_event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name} ({state})>"


class Simulator:
    """Owns the simulated clock and the pending-action queues.

    On the fast path (see :mod:`repro.fastpath`) future actions live in
    a :class:`_CalendarQueue` and timeout events are triggered directly
    by the run loop (the *fused dispatch* — see :meth:`_run_fast`);
    under ``REPRO_SLOW_PATH=1`` the original binary heap and
    ``Event.succeed`` scheduling run instead, as the ordering
    reference.  Both orders are identical: entries compare by
    ``(time, sequence)`` in either container.
    """

    __slots__ = ("_now", "_queue", "_ripe", "_sequence", "_calendar")

    def __init__(self, fast: bool | None = None) -> None:
        self._now = 0.0
        #: Future (and not-yet-popped same-instant) actions: (at, seq, fn).
        #: Used when the calendar queue is disabled (the slow path).
        self._queue: list[tuple[float, int, typing.Callable[[], None]]] = []
        #: Current-instant actions in FIFO order: (seq, fn).  Invariant:
        #: every entry was appended at time == _now with a sequence number
        #: larger than any heap entry pushed before it, and the deque is
        #: drained before the clock advances.
        self._ripe: collections.deque[
            tuple[int, typing.Callable[[], None]]] = collections.deque()
        self._sequence = itertools.count()
        if fast is None:
            fast = fastpath.enabled()
        #: Fast-path future-action queue; ``None`` selects the heap.
        self._calendar: _CalendarQueue | None = \
            _CalendarQueue() if fast else None

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def pending_actions(self) -> int:
        """Number of scheduled-but-unexecuted actions (audit introspection)."""
        calendar = self._calendar
        future = len(self._queue) if calendar is None else len(calendar)
        return future + len(self._ripe)

    @property
    def next_time(self) -> float:
        """Time of the earliest scheduled action (``inf`` when idle).

        Ripe (same-instant) actions report the current time.  Epoch-
        stepped drivers (:mod:`repro.shard`) use this to detect a
        quiesced shard without running it.
        """
        if self._ripe:
            return self._now
        calendar = self._calendar
        if calendar is None:
            return self._queue[0][0] if self._queue else _INF
        head = calendar.head
        return head[0] if head is not None else _INF

    # -- scheduling ----------------------------------------------------------

    def _push(self, at: float, action: typing.Callable[[], None]) -> None:
        entry = (at, next(self._sequence), action)
        if self._calendar is None:
            heapq.heappush(self._queue, entry)
        else:
            self._calendar.push(entry)

    def _push_now(self, action: typing.Callable[[], None]) -> None:
        self._ripe.append((next(self._sequence), action))

    def _schedule_callback(self, action: typing.Callable[[], None],
                           delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        if delay == 0.0:
            self._ripe.append((next(self._sequence), action))
        else:
            entry = (self._now + delay, next(self._sequence), action)
            if self._calendar is None:
                heapq.heappush(self._queue, entry)
            else:
                self._calendar.push(entry)

    def _schedule_event_dispatch(self, event: Event) -> None:
        self._ripe.append((next(self._sequence), event._dispatch))

    # -- public construction helpers ------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh untriggered event, to be triggered by user code."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Event:
        """An event that succeeds *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"negative timeout {delay!r}")
        calendar = self._calendar
        if calendar is None:
            event = Event(self, name="timeout")
            # The bound method is the scheduled action when there is no
            # value to deliver (the common case) — no closure allocation.
            heapq.heappush(self._queue, (
                self._now + delay, next(self._sequence),
                event.succeed if value is None
                else lambda: event.succeed(value)))
            return event
        # Fused dispatch: the entry is the event itself; the run loop
        # triggers it in place (see _run_fast).  The value rides in the
        # event, pre-stored — invisible until the trigger flips the
        # state.  Event.__init__ is inlined: one constructor frame per
        # timeout is measurable at this call rate.
        event = Event.__new__(Event)
        event.sim = self
        event.name = "timeout"
        event._state = _PENDING
        event._value = value
        event._callbacks = []
        entry = (self._now + delay, next(self._sequence), event)
        # calendar.push(entry), inlined for the common future-day
        # case: this is the per-timeout path.
        cur = calendar._cur_day
        day = int(entry[0] * calendar._inv_width)
        if cur is not None and day > cur:
            buckets = calendar._buckets
            bucket = buckets.get(day)
            if bucket is None:
                buckets[day] = [entry]
                heapq.heappush(calendar._days, day)
            else:
                bucket.append(entry)
            calendar._size += 1
        else:
            calendar.push(entry)
        return event

    def timeout_at(self, at: float, value: object = None) -> Event:
        """An event that succeeds at the absolute time *at*.

        Equivalent to ``timeout(at - now)`` but without the float
        round-trip through a relative delay, so chained waits can target
        exact precomputed instants.
        """
        if at < self._now:
            raise ValueError(f"timeout_at({at!r}) is in the past "
                             f"(now={self._now!r})")
        event = Event(self, name="timeout")
        calendar = self._calendar
        if calendar is None:
            heapq.heappush(self._queue, (
                at, next(self._sequence),
                event.succeed if value is None
                else lambda: event.succeed(value)))
        else:
            if value is not None:
                event._value = value
            calendar.push((at, next(self._sequence), event))
        return event

    def call_at(self, at: float, action: typing.Callable[[], None]) -> None:
        """Schedule a plain callback at the absolute time *at*.

        Cheaper than a one-shot process for fire-and-forget actions, and
        — unlike triggering through an intermediate event — the callback
        gets a queue entry whose sequence number is assigned *now*, so a
        batch of ``call_at`` registrations executes in registration order
        at equal times.  The epoch-stepped shard workers rely on that to
        keep cross-shard delivery order canonical.
        """
        if at < self._now:
            raise ValueError(f"call_at({at!r}) is in the past "
                             f"(now={self._now!r})")
        self._push(at, action)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a coroutine process running from the current time."""
        return Process(self, generator, name=name)

    # -- execution -------------------------------------------------------------

    def _trigger_timeout(self, event: Event) -> None:
        """Trigger a fused timeout entry popped from the calendar.

        Equivalent to the ``event.succeed`` call the slow path schedules
        (the value was pre-stored at creation), including the error on an
        event the user already triggered by hand.
        """
        if event._state is not _PENDING:
            raise RuntimeError(f"event {event!r} already triggered")
        event._state = _SUCCEEDED
        calendar = self._calendar
        head = calendar.head  # type: ignore[union-attr]
        if self._ripe or (head is not None and head[0] <= self._now):
            # Other actions precede the dispatch at this instant; queue
            # it in order, exactly as Event.succeed would.
            self._ripe.append((next(self._sequence), event._dispatch))
        else:
            # The dispatch would be the very next action the loop pops —
            # run the callbacks in place and skip the queue round-trip.
            callbacks = event._callbacks
            event._callbacks = None
            for callback in callbacks:  # type: ignore[union-attr]
                callback(event)

    def step(self) -> None:
        """Execute the next scheduled action, advancing the clock."""
        ripe = self._ripe
        calendar = self._calendar
        if calendar is None:
            queue = self._queue
            if ripe and not (queue and queue[0][0] <= self._now
                             and queue[0][1] < ripe[0][0]):
                _, action = ripe.popleft()
                action()
                return
            at, _, action = heapq.heappop(queue)
            if at < self._now:
                raise RuntimeError("time went backwards")  # pragma: no cover
            self._now = at
            action()
            return
        head = calendar.head
        if ripe and not (head is not None and head[0] <= self._now
                         and head[1] < ripe[0][0]):
            _, action = ripe.popleft()
            action()
            return
        at, _, action = calendar.pop()
        if at < self._now:
            raise RuntimeError("time went backwards")  # pragma: no cover
        self._now = at
        if action.__class__ is Event:
            # Single-step mode always routes the dispatch through the
            # ripe queue: succeed-equivalent, never inlined.
            if action._state is not _PENDING:
                raise RuntimeError(f"event {action!r} already triggered")
            action._state = _SUCCEEDED
            ripe.append((next(self._sequence), action._dispatch))
        else:
            action()

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        ``until`` may be ``None`` (run until no actions remain), a time
        (run until the clock would pass it, then set the clock to it), or
        an :class:`Event` (run until that event triggers and return its
        value; raise if it failed).
        """
        if isinstance(until, Event):
            if self._calendar is None:
                return self._run_until_event(until)
            return self._run_until_event_fast(until)
        deadline = _INF if until is None else float(until)
        if deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        if self._calendar is None:
            self._run_slow(deadline)
        else:
            self._run_fast(deadline)
        if deadline != _INF:
            self._now = deadline
        return None

    def _run_slow(self, deadline: float) -> None:
        """The reference run loop: binary heap, no fused dispatch."""
        queue, ripe, heappop = self._queue, self._ripe, heapq.heappop
        while True:
            if ripe:
                # A heap entry at the current instant with a smaller
                # sequence number predates the deque head: run it first.
                if queue and queue[0][0] <= self._now \
                        and queue[0][1] < ripe[0][0]:
                    self._now, _, action = heappop(queue)
                else:
                    _, action = ripe.popleft()
            elif queue and queue[0][0] <= deadline:
                self._now, _, action = heappop(queue)
            else:
                break
            action()

    def _run_fast(self, deadline: float, stop: Event | None = None) -> None:
        """The fast-path run loop: calendar queue plus fused dispatch.

        A popped entry whose action is an :class:`Event` is a timeout.
        It is triggered here, and when its dispatch would be the very
        next action anyway (nothing ripe, no other entry at this
        instant) the callbacks run inline — same execution sequence as
        the reference loop, minus a queue round-trip per timeout.

        With *stop*, the loop additionally ends as soon as that event
        triggers (run-until-event mode; the caller drains the remaining
        same-instant actions).
        """
        calendar, ripe = self._calendar, self._ripe
        sequence = self._sequence
        heappop = heapq.heappop
        while stop is None or stop._state is _PENDING:
            head = calendar.head  # type: ignore[union-attr]
            if ripe:
                if head is not None and head[0] <= self._now \
                        and head[1] < ripe[0][0]:
                    action = None
                else:
                    _, action = ripe.popleft()
            elif head is not None and head[0] <= deadline:
                action = None
            else:
                break
            if action is None:
                # calendar.pop(), inlined: this is the per-event path.
                self._now, _, action = head
                bucket = calendar._bucket  # type: ignore[union-attr]
                heappop(bucket)
                calendar._size -= 1  # type: ignore[union-attr]
                if bucket:
                    calendar.head = bucket[0]  # type: ignore[union-attr]
                else:
                    calendar._advance()  # type: ignore[union-attr]
            if action.__class__ is Event:
                if action._state is not _PENDING:
                    raise RuntimeError(
                        f"event {action!r} already triggered")
                action._state = _SUCCEEDED
                head = calendar.head  # type: ignore[union-attr]
                if ripe or (head is not None and head[0] <= self._now):
                    ripe.append((next(sequence), action._dispatch))
                else:
                    callbacks = action._callbacks
                    action._callbacks = None
                    for callback in callbacks:
                        callback(action)
            else:
                action()

    def _run_until_event(self, event: Event) -> object:
        queue, ripe, heappop = self._queue, self._ripe, heapq.heappop
        while event._state is _PENDING:
            if ripe:
                if queue and queue[0][0] <= self._now \
                        and queue[0][1] < ripe[0][0]:
                    self._now, _, action = heappop(queue)
                else:
                    _, action = ripe.popleft()
            elif queue:
                self._now, _, action = heappop(queue)
            else:
                raise RuntimeError(
                    f"simulation ran out of events before {event!r} triggered")
            action()
        # Drain same-instant dispatches so callbacks at this time complete.
        while ripe or (queue and queue[0][0] <= self._now):
            if ripe and not (queue and queue[0][0] <= self._now
                             and queue[0][1] < ripe[0][0]):
                _, action = ripe.popleft()
            else:
                self._now, _, action = heappop(queue)
            action()
        if event._state is _FAILED:
            raise typing.cast(BaseException, event.value)
        return event.value

    def _run_until_event_fast(self, event: Event) -> object:
        self._run_fast(_INF, stop=event)
        if event._state is _PENDING:
            raise RuntimeError(
                f"simulation ran out of events before {event!r} triggered")
        calendar, ripe = self._calendar, self._ripe
        pop = calendar.pop  # type: ignore[union-attr]
        # Drain same-instant dispatches so callbacks at this time complete.
        while True:
            head = calendar.head  # type: ignore[union-attr]
            due = head is not None and head[0] <= self._now
            if ripe and not (due and head[1] < ripe[0][0]):
                _, action = ripe.popleft()
            elif due:
                self._now, _, action = pop()
            else:
                break
            if action.__class__ is Event:
                self._trigger_timeout(action)
            else:
                action()
        if event._state is _FAILED:
            raise typing.cast(BaseException, event.value)
        return event.value
