"""The simulator core: event queue, clock, and coroutine processes.

A :class:`Simulator` owns the clock and a priority queue of scheduled
actions.  :class:`Process` wraps a generator; each ``yield`` hands the
simulator an :class:`~repro.simkit.events.Event` (or another process) to
wait on, and the process resumes with the event's value.  Failed events
raise inside the process, so simulated errors propagate like ordinary
exceptions.
"""

from __future__ import annotations

import heapq
import itertools
import typing

from repro.simkit.events import Event

__all__ = ["Simulator", "Process", "Interrupt"]


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


ProcessGenerator = typing.Generator[Event, object, object]


class Process:
    """A running coroutine in simulated time.

    Processes are created through :meth:`Simulator.process`.  A process is
    itself waitable: yielding a process from another process waits for its
    completion and receives its return value.
    """

    __slots__ = ("sim", "name", "_generator", "_waiting_on", "done")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Event | None = None
        #: Event triggered with the generator's return value when it ends.
        self.done = Event(sim, name=f"{self.name}.done")
        sim._schedule_callback(lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        return not self.done.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned (its eventual
        trigger is ignored by this process).
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self.name}")
        self.sim._schedule_callback(
            lambda: self._resume(None, Interrupt(cause), forced=True))

    # -- driving the generator ---------------------------------------------

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wake-up after an interrupt
        self._waiting_on = None
        if event.failed:
            self._resume(None, typing.cast(BaseException, event.value))
        else:
            self._resume(event.value, None)

    def _resume(self, value: object, exc: BaseException | None,
                forced: bool = False) -> None:
        if self.done.triggered:
            return
        if forced:
            self._waiting_on = None
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - simulated failure
            self.done.fail(error)
            return

        event = target.done if isinstance(target, Process) else target
        if not isinstance(event, Event):
            self.done.fail(TypeError(
                f"process {self.name} yielded {target!r}; expected an "
                "Event or Process"))
            return
        self._waiting_on = event
        event.add_callback(self._on_event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name} ({state})>"


class Simulator:
    """Owns the simulated clock and the pending-action queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, typing.Callable[[], None]]] = []
        self._sequence = itertools.count()

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def pending_actions(self) -> int:
        """Number of scheduled-but-unexecuted actions (audit introspection)."""
        return len(self._queue)

    # -- scheduling ----------------------------------------------------------

    def _push(self, at: float, action: typing.Callable[[], None]) -> None:
        heapq.heappush(self._queue, (at, next(self._sequence), action))

    def _schedule_callback(self, action: typing.Callable[[], None],
                           delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._push(self._now + delay, action)

    def _schedule_event_dispatch(self, event: Event) -> None:
        self._push(self._now, event._dispatch)

    # -- public construction helpers ------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh untriggered event, to be triggered by user code."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Event:
        """An event that succeeds *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"negative timeout {delay!r}")
        event = Event(self, name=f"timeout({delay:g})")
        self._push(self._now + delay, lambda: event.succeed(value))
        return event

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a coroutine process running from the current time."""
        return Process(self, generator, name=name)

    # -- execution -------------------------------------------------------------

    def step(self) -> None:
        """Execute the next scheduled action, advancing the clock."""
        at, _, action = heapq.heappop(self._queue)
        if at < self._now:
            raise RuntimeError("time went backwards")  # pragma: no cover
        self._now = at
        action()

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        ``until`` may be ``None`` (run until no actions remain), a time
        (run until the clock would pass it, then set the clock to it), or
        an :class:`Event` (run until that event triggers and return its
        value; raise if it failed).
        """
        if isinstance(until, Event):
            return self._run_until_event(until)
        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        if deadline != float("inf"):
            self._now = deadline
        return None

    def _run_until_event(self, event: Event) -> object:
        while not event.triggered:
            if not self._queue:
                raise RuntimeError(
                    f"simulation ran out of events before {event!r} triggered")
            self.step()
        # Drain same-instant dispatches so callbacks at this time complete.
        while self._queue and self._queue[0][0] <= self._now:
            self.step()
        if event.failed:
            raise typing.cast(BaseException, event.value)
        return event.value
