"""Discrete-event simulation kernel used by the DeepPlan reproduction.

This is a small, dependency-free process-based simulator in the style of
SimPy: a :class:`~repro.simkit.sim.Simulator` drives an event queue,
coroutine *processes* (plain generators) yield :class:`~repro.simkit.events.Event`
objects to wait on, and shared hardware is modelled with
:class:`~repro.simkit.resources.Resource` (FIFO servers),
:class:`~repro.simkit.resources.Store` (queues) and
:class:`~repro.simkit.links.FlowNetwork` (max-min fair bandwidth-shared
links, used for PCIe and NVLink).

Everything in the repository that "runs on hardware" — layer loads, kernel
execution, NVLink migration, the serving system — is a process in this
kernel, so contention effects (e.g., two GPUs loading through one PCIe
switch) emerge from resource sharing instead of being hard-coded.
"""

from repro.simkit.events import Event, all_of, any_of
from repro.simkit.sim import Interrupt, Process, Simulator
from repro.simkit.resources import Resource, Store
from repro.simkit.links import Flow, FlowNetwork, Link

__all__ = [
    "Event",
    "Flow",
    "FlowNetwork",
    "Interrupt",
    "Link",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "all_of",
    "any_of",
]
