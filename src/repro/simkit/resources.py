"""FIFO resources and stores for modelling exclusive hardware units.

:class:`Resource` models a unit that serves a bounded number of holders at
once (e.g., a GPU compute engine that runs one inference at a time, as in
Clockwork).  :class:`Store` is an unbounded FIFO queue of items with
blocking ``get`` — the building block for request queues.
"""

from __future__ import annotations

import collections
import typing

from repro.simkit.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.sim import Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A FIFO resource with fixed capacity.

    Usage from a process::

        grant = resource.request()
        yield grant
        try:
            ...  # hold the resource
        finally:
            resource.release(grant)
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._holders: set[Event] = set()
        self._waiters: collections.deque[Event] = collections.deque()

    @property
    def in_use(self) -> int:
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """An event that succeeds when the caller holds the resource."""
        grant = Event(self.sim, name=f"{self.name}.grant")
        if len(self._holders) < self.capacity:
            self._holders.add(grant)
            grant.succeed(grant)
        else:
            self._waiters.append(grant)
        return grant

    def release(self, grant: Event) -> None:
        """Release a previously granted request."""
        try:
            self._holders.remove(grant)
        except KeyError:
            raise RuntimeError("release() of a grant that is not held") from None
        if self._waiters:
            waiter = self._waiters.popleft()
            self._holders.add(waiter)
            waiter.succeed(waiter)

    def cancel(self, grant: Event) -> None:
        """Withdraw a queued (not yet granted) request."""
        try:
            self._waiters.remove(grant)
        except ValueError:
            raise RuntimeError("cancel() of a grant that is not queued") from None


class Store:
    """An unbounded FIFO queue with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that succeeds with the
    oldest item, immediately if one is available.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: collections.deque[object] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()
        #: Lifetime counters; ``total_put - total_got == len(store)`` is an
        #: invariant the audit layer verifies at quiesce.
        self.total_put = 0
        self.total_got = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        self.total_put += 1
        if self._getters:
            self.total_got += 1
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.sim, name=f"{self.name}.get")
        if self._items:
            self.total_got += 1
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def drain(self) -> tuple[object, ...]:
        """Remove and return every queued item (oldest first).

        Blocked getters stay blocked; the drained items count as got, so
        the audit layer's put/got balance still holds.  Used for
        machine-failure handling: a crashed machine's queue is emptied and
        its requests are re-routed elsewhere.
        """
        items = tuple(self._items)
        self._items.clear()
        self.total_got += len(items)
        return items

    def peek_all(self) -> tuple[object, ...]:
        """A snapshot of queued items (oldest first), for metrics."""
        return tuple(self._items)
