"""Bandwidth-shared links with max-min fair allocation.

PCIe lanes, PCIe switch uplinks and NVLink bricks are all modelled as
:class:`Link` objects.  A transfer is a :class:`Flow` that traverses a
*path* of links (e.g., GPU PCIe lane -> switch uplink) and receives the
max-min fair bandwidth across every link it crosses, recomputed whenever
a flow starts or finishes.  This is what makes contention effects in the
paper — two GPUs halving each other's bandwidth through a shared switch
(Table 2), or parallel transmission interfering across models (Table 4) —
emerge from the model instead of being special-cased.

Rates are recomputed with the classic progressive-filling (water-filling)
algorithm, which yields the unique max-min fair allocation.  The
allocation decomposes exactly over connected components of the
flow/link contention graph (two flows interact only if a chain of shared
links connects them), which enables the incremental fast path: when a
flow starts or finishes, only its connected component is refilled; rates
elsewhere are provably unchanged.  Wake-ups that change no membership at
all (milestone crossings, completions of flows that shared no link) skip
the fill entirely.  ``REPRO_SLOW_PATH=1`` (see :mod:`repro.fastpath`)
refills every component from scratch on every change instead — same
per-component arithmetic, so both paths produce bit-identical rates —
and :meth:`FlowNetwork.reference_fair_rates` exposes the original
whole-network progressive filling for differential testing.
"""

from __future__ import annotations

import heapq
import itertools
import operator
import typing

from repro import fastpath
from repro.simkit.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.sim import Simulator

__all__ = ["Link", "Flow", "FlowNetwork"]

# Residual bytes below which a flow counts as complete (absorbs float error).
_EPSILON_BYTES = 1e-3

_INF = float("inf")

_flow_id = operator.attrgetter("id")


class Link:
    """A unidirectional link with a fixed capacity in bytes/second."""

    __slots__ = ("name", "bandwidth", "nominal_bandwidth", "bytes_carried")

    def __init__(self, name: str, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise ValueError(f"link bandwidth must be positive, got {bandwidth}")
        self.name = name
        self.bandwidth = float(bandwidth)
        #: Design capacity.  ``bandwidth`` is the *current* capacity and can
        #: drop below nominal while a fault schedule degrades the link (see
        #: :meth:`FlowNetwork.set_link_bandwidth`); restoring resets it here.
        self.nominal_bandwidth = float(bandwidth)
        #: Cumulative bytes that have crossed this link (for bandwidth stats).
        self.bytes_carried = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.bandwidth / 1e9:.2f} GB/s>"


class Flow:
    """An in-flight transfer across a path of links."""

    __slots__ = ("id", "path", "nbytes", "remaining", "rate", "max_rate",
                 "weight", "done", "started_at", "milestones",
                 "_next_milestone")

    _ids = itertools.count()

    def __init__(self, path: typing.Sequence[Link], nbytes: float,
                 done: Event, max_rate: float | None, weight: float,
                 milestones: typing.Sequence[tuple[float, Event]] = ()
                 ) -> None:
        self.id = next(Flow._ids)
        self.path = tuple(path)
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.max_rate = max_rate
        self.weight = float(weight)
        self.done = done
        #: (byte offset, event) pairs, ascending; each event fires when the
        #: flow's progress crosses its offset.  Lets one bulk flow stand in
        #: for a whole stream of back-to-back copies (one event per layer)
        #: without per-copy flow churn.  Most flows carry none.
        self.milestones = (sorted(milestones, key=lambda m: m[0])
                           if milestones else [])
        self._next_milestone = 0

    @property
    def progressed(self) -> float:
        return self.nbytes - self.remaining

    def fire_due_milestones(self) -> None:
        milestones = self.milestones
        i = self._next_milestone
        n = len(milestones)
        due = (self.nbytes - self.remaining) + _EPSILON_BYTES
        while i < n and milestones[i][0] <= due:
            milestones[i][1].succeed(self)
            i += 1
        self._next_milestone = i

    def next_milestone_bytes(self) -> float | None:
        if self._next_milestone >= len(self.milestones):
            return None
        return self.milestones[self._next_milestone][0] - self.progressed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Flow #{self.id} {self.remaining:.0f}/{self.nbytes:.0f}B "
                f"@{self.rate / 1e9:.2f}GB/s>")


class FlowNetwork:
    """Manages active flows and keeps their fair-share rates current."""

    def __init__(self, sim: "Simulator",
                 incremental: bool | None = None) -> None:
        self.sim = sim
        #: Active flows in start order (dict-as-ordered-set: deterministic
        #: iteration, unlike a plain set keyed on object ids).
        self._active: dict[Flow, None] = {}
        #: Links currently carrying flows -> the flows crossing them; the
        #: adjacency structure for connected-component lookups.
        self._link_flows: dict[Link, set[Flow]] = {}
        self._last_settle = sim.now
        self._timer_token = 0
        if incremental is None:
            incremental = fastpath.enabled()
        self._incremental = incremental
        #: Optional audit hook (see :mod:`repro.audit`).  When set, it
        #: receives ``on_flow_started(flow)``, ``on_flow_completed(flow)``
        #: and ``on_rates_assigned(network)`` callbacks; ``None`` (the
        #: default) costs one attribute check per rate change.
        self.observer: typing.Any = None

    # -- public API -----------------------------------------------------------

    def transfer(self, path: typing.Sequence[Link], nbytes: float,
                 setup_delay: float = 0.0,
                 max_rate: float | None = None,
                 weight: float = 1.0) -> Event:
        """Start a transfer of *nbytes* across *path*.

        Returns an event that succeeds (with the flow) once the last byte
        arrives.  ``setup_delay`` models fixed per-copy overhead (driver
        and DMA-engine setup) that elapses before any byte moves.
        ``max_rate`` optionally caps the flow below link fair share (e.g.,
        a DMA engine limit).  ``weight`` biases the fair share: rates are
        allocated proportionally to weight (weighted max-min fairness),
        which models DMA queue priorities.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {nbytes}")
        if not path:
            raise ValueError("transfer path must contain at least one link")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        done = Event(self.sim, name="flow.done")
        flow = Flow(path, nbytes, done, max_rate, weight)
        if setup_delay > 0:
            self.sim._schedule_callback(lambda: self._start(flow), setup_delay)
        else:
            self._start(flow)
        return done

    def transfer_with_milestones(
            self, path: typing.Sequence[Link], nbytes: float,
            milestone_offsets: typing.Sequence[float],
            setup_delay: float = 0.0, max_rate: float | None = None,
            weight: float = 1.0) -> tuple[Event, list[Event]]:
        """Like :meth:`transfer`, with progress-milestone events.

        Each offset in *milestone_offsets* (bytes, ascending) yields an
        event that fires when the flow's cumulative progress crosses it —
        the idiom for a load stream of back-to-back layer copies: one
        flow, one event per layer boundary.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {nbytes}")
        if not path:
            raise ValueError("transfer path must contain at least one link")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        offsets = list(milestone_offsets)
        if sorted(offsets) != offsets:
            raise ValueError("milestone offsets must be ascending")
        if offsets and offsets[-1] > nbytes + _EPSILON_BYTES:
            raise ValueError(f"milestone {offsets[-1]} beyond flow size "
                             f"{nbytes}")
        done = Event(self.sim, name="flow.done")
        events = [Event(self.sim, name="flow.milestone")
                  for _ in range(len(offsets))]
        flow = Flow(path, nbytes, done, max_rate, weight,
                    milestones=list(zip(offsets, events)))
        if setup_delay > 0:
            self.sim._schedule_callback(lambda: self._start(flow), setup_delay)
        else:
            self._start(flow)
        return done, events

    @property
    def active_flows(self) -> frozenset[Flow]:
        return frozenset(self._active)

    def set_link_bandwidth(self, link: Link, bandwidth: float) -> None:
        """Change *link*'s capacity at runtime.

        Progress is credited at the old rates up to "now", then every
        in-flight flow crossing the link has its fair share recomputed —
        the degraded (or restored) capacity takes effect immediately, on
        both the incremental fast path and the from-scratch slow path.
        A no-op when the capacity is unchanged or the link is idle.
        """
        if bandwidth <= 0:
            raise ValueError(f"link bandwidth must be positive, got {bandwidth}")
        bandwidth = float(bandwidth)
        if bandwidth == link.bandwidth:
            return
        self._settle()
        link.bandwidth = bandwidth
        flows = self._link_flows.get(link)
        if not flows:
            return
        self._rebalance(changed=sorted(flows, key=_flow_id))

    def reference_fair_rates(self) -> dict[Flow, float]:
        """Whole-network progressive filling, without touching flow state.

        The original from-scratch reference implementation: one global
        fill over every active flow, no component decomposition.  Returns
        the would-be rate per flow; differential tests compare this
        against the incremental allocator's assignments.
        """
        rates: dict[Flow, float] = {}
        self._fill(sorted(self._active, key=_flow_id), rates)
        return rates

    # -- internals --------------------------------------------------------------

    def _start(self, flow: Flow) -> None:
        flow.started_at = self.sim.now
        if self.observer is not None:
            self.observer.on_flow_started(flow)
        if flow.remaining <= _EPSILON_BYTES:
            flow.fire_due_milestones()
            flow.done.succeed(flow)
            if self.observer is not None:
                self.observer.on_flow_completed(flow)
            return
        self._settle()
        self._active[flow] = None
        for link in flow.path:
            flows = self._link_flows.get(link)
            if flows is None:
                self._link_flows[link] = {flow}
            else:
                flows.add(flow)
        # Milestones sitting at the flow's current progress (offset 0, or
        # an offset equal to bytes already credited) are due immediately;
        # fire them here so the wake-up timer below targets the *next*
        # unfired milestone instead of deferring them to flow completion.
        if flow.milestones:
            flow.fire_due_milestones()
        self._rebalance(started=flow)

    def _settle(self) -> None:
        """Credit progress for time elapsed since the last rate change."""
        now = self.sim._now
        elapsed = now - self._last_settle
        self._last_settle = now
        if elapsed <= 0:
            return
        for flow in self._active:
            moved = flow.rate * elapsed
            flow.remaining -= moved
            for link in flow.path:
                link.bytes_carried += moved

    def _rebalance(self, started: Flow | None = None,
                   changed: typing.Sequence[Flow] = ()) -> None:
        """Recompute fair rates where needed and re-arm the wake-up timer.

        The timer fires at the earliest flow completion *or* milestone
        crossing, whichever comes first.  On the fast path only the
        connected component(s) touched by *started*, *changed* (flows on a
        link whose capacity just moved) and just-completed flows are
        refilled; a wake-up that changes no component membership (a pure
        milestone crossing, or completions of flows that shared no link
        with a survivor) leaves every rate untouched.
        """
        self._timer_token += 1
        completed = [f for f in self._active if f.remaining <= _EPSILON_BYTES]
        seeds: list[Flow] = [] if started is None else [started]
        if changed:
            seeds.extend(changed)
        for flow in completed:
            del self._active[flow]
            for link in flow.path:
                flows = self._link_flows[link]
                flows.discard(flow)
                if flows:
                    seeds.extend(flows)
                else:
                    del self._link_flows[link]
            flow.remaining = 0.0
            if flow.milestones:
                flow.fire_due_milestones()
            flow.done.succeed(flow)
            if self.observer is not None:
                self.observer.on_flow_completed(flow)
        if not self._active:
            return

        if not self._incremental:
            self._fill_all_components()
        elif started is not None and not completed and not changed:
            # A flow just started and nothing finished: its component
            # seeds the fill, and when its links carry nothing else the
            # component is the flow alone — no walk, no sort.
            link_flows = self._link_flows
            for link in started.path:
                if len(link_flows[link]) > 1:
                    self._fill(sorted(self._component_of((started,)),
                                      key=_flow_id))
                    break
            else:
                self._fill((started,))
        elif seeds:
            self._fill(sorted(self._component_of(seeds), key=_flow_id))
        # else: nothing started or finished (milestone-only wake-up) —
        # the allocation is already the fair one; skip the fill entirely.
        if self.observer is not None:
            self.observer.on_rates_assigned(self)
        token = self._timer_token
        wait = _INF
        # _bytes_to_next_event, inlined (this loop runs on every wake-up;
        # most flows carry no milestones, so the common case is a pair of
        # attribute loads and a divide).
        for flow in self._active:
            rate = flow.rate
            if rate <= 0.0:
                continue
            nbytes = flow.remaining
            milestones = flow.milestones
            if flow._next_milestone < len(milestones):
                to_milestone = (milestones[flow._next_milestone][0]
                                - (flow.nbytes - flow.remaining))
                if to_milestone < nbytes:
                    nbytes = to_milestone
            candidate = nbytes / rate
            if candidate < wait:
                wait = candidate
        if wait == _INF:
            # Every active flow is rate-starved (e.g. links drained to a
            # zero residual by float-exhausted allocations); rates will be
            # reassigned when another flow starts or finishes.
            return
        sim = self.sim
        if wait <= 0.0:
            sim._ripe.append(
                (next(sim._sequence), lambda: self._on_timer(token)))
        else:
            heapq.heappush(
                sim._queue,
                (sim._now + wait, next(sim._sequence),
                 lambda: self._on_timer(token)))

    @staticmethod
    def _bytes_to_next_event(flow: Flow) -> float:
        """Bytes until *flow* completes or crosses its next milestone.

        A pending milestone distance of ``0.0`` is a real target (the
        milestone sits exactly at the current progress offset), so it must
        not be collapsed into "no milestone" by truthiness.
        """
        to_milestone = flow.next_milestone_bytes()
        if to_milestone is None:
            return flow.remaining
        return min(flow.remaining, to_milestone)

    def _component_of(self, seeds: typing.Iterable[Flow]) -> set[Flow]:
        """Active flows connected to *seeds* through chains of shared links."""
        component: set[Flow] = set()
        stack = [f for f in seeds if f in self._active]
        link_flows = self._link_flows
        while stack:
            flow = stack.pop()
            if flow in component:
                continue
            component.add(flow)
            for link in flow.path:
                for neighbour in link_flows[link]:
                    if neighbour not in component:
                        stack.append(neighbour)
        return component

    def _fill_all_components(self) -> None:
        """From-scratch refill of every component (the slow path).

        Each component is filled independently with the same arithmetic
        the incremental path uses, so slow- and fast-path runs produce
        bit-identical rates.
        """
        visited: set[Flow] = set()
        for flow in self._active:
            if flow in visited:
                continue
            component = self._component_of((flow,))
            visited |= component
            self._fill(sorted(component, key=_flow_id))

    def _fill(self, ordered: typing.Sequence[Flow],
              into: dict[Flow, float] | None = None) -> None:
        """Weighted progressive filling over *ordered* (a closed flow set).

        Freezes flows at bottlenecks: each unfrozen flow receives
        ``weight * share`` where ``share`` is the per-unit-weight
        allocation of its tightest link; flows capped below their fair
        share free the remainder for the rest.  *ordered* must be closed
        under link sharing (a union of connected components) and sorted
        by flow id, which fixes the float evaluation order.  Writes rates
        to ``flow.rate``, or into *into* when given (reference mode).
        """
        if len(ordered) == 1:
            # A lone flow (its links carry nothing else — the usual case
            # for a warm DHA read on an uncontended lane) gets the
            # per-unit-weight share of its tightest link, capped.  The
            # arithmetic is the general loop's first iteration verbatim
            # (``0.0 + weight`` is exact), so the shortcut is
            # bit-identical.
            flow = ordered[0]
            weight = flow.weight
            rate = _INF
            for link in flow.path:
                share = link.bandwidth / weight
                if share < rate:
                    rate = share
            rate = weight * rate
            if flow.max_rate is not None and flow.max_rate <= rate:
                rate = flow.max_rate
            if into is None:
                flow.rate = rate
            else:
                into[flow] = rate
            return
        residual: dict[Link, float] = {}
        load: dict[Link, float] = {}
        # Unfrozen-flow count per link.  The "link still contested" test
        # must use this integer, not ``load > 0``: fractional weights
        # (e.g. 0.4) leave float residue when subtracted back out, and a
        # drained link with residual load but no unfrozen flows would be
        # picked as a bottleneck that no iteration can freeze — an
        # infinite loop.
        count: dict[Link, int] = {}
        for flow in ordered:
            for link in flow.path:
                residual.setdefault(link, link.bandwidth)
                load[link] = load.get(link, 0.0) + flow.weight
                count[link] = count.get(link, 0) + 1

        unfrozen = dict.fromkeys(ordered)
        while unfrozen:
            # The next bottleneck is the smallest per-unit-weight share,
            # considering links and per-flow rate caps.
            share = min(residual[link] / load[link]
                        for link in residual if count[link] > 0)
            capped = [f for f in unfrozen
                      if f.max_rate is not None
                      and f.max_rate <= f.weight * share]
            if capped:
                # Freeze capped flows at their own limit first; their unused
                # share is redistributed on the next iteration.
                for flow in capped:
                    self._freeze(flow, typing.cast(float, flow.max_rate),
                                 unfrozen, residual, load, count, into)
                continue
            bottleneck = min((link for link in residual if count[link] > 0),
                             key=lambda link: residual[link] / load[link])
            for flow in [f for f in unfrozen if bottleneck in f.path]:
                self._freeze(flow, flow.weight * share, unfrozen, residual,
                             load, count, into)

    @staticmethod
    def _freeze(flow: Flow, rate: float, unfrozen: dict[Flow, None],
                residual: dict[Link, float], load: dict[Link, float],
                count: dict[Link, int],
                into: dict[Flow, float] | None = None) -> None:
        if into is None:
            flow.rate = rate
        else:
            into[flow] = rate
        del unfrozen[flow]
        for link in flow.path:
            residual[link] = max(0.0, residual[link] - rate)
            count[link] -= 1
            load[link] = load[link] - flow.weight if count[link] else 0.0

    def _on_timer(self, token: int) -> None:
        if token != self._timer_token:
            return  # superseded by a later rebalance
        self._settle()
        for flow in self._active:
            if flow.milestones:
                flow.fire_due_milestones()
        self._rebalance()
