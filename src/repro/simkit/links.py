"""Bandwidth-shared links with max-min fair allocation.

PCIe lanes, PCIe switch uplinks and NVLink bricks are all modelled as
:class:`Link` objects.  A transfer is a :class:`Flow` that traverses a
*path* of links (e.g., GPU PCIe lane -> switch uplink) and receives the
max-min fair bandwidth across every link it crosses, recomputed whenever
a flow starts or finishes.  This is what makes contention effects in the
paper — two GPUs halving each other's bandwidth through a shared switch
(Table 2), or parallel transmission interfering across models (Table 4) —
emerge from the model instead of being special-cased.

Rates are recomputed with the classic progressive-filling (water-filling)
algorithm, which yields the unique max-min fair allocation.
"""

from __future__ import annotations

import itertools
import typing

from repro.simkit.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.sim import Simulator

__all__ = ["Link", "Flow", "FlowNetwork"]

# Residual bytes below which a flow counts as complete (absorbs float error).
_EPSILON_BYTES = 1e-3


class Link:
    """A unidirectional link with a fixed capacity in bytes/second."""

    __slots__ = ("name", "bandwidth", "bytes_carried")

    def __init__(self, name: str, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise ValueError(f"link bandwidth must be positive, got {bandwidth}")
        self.name = name
        self.bandwidth = float(bandwidth)
        #: Cumulative bytes that have crossed this link (for bandwidth stats).
        self.bytes_carried = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.bandwidth / 1e9:.2f} GB/s>"


class Flow:
    """An in-flight transfer across a path of links."""

    __slots__ = ("id", "path", "nbytes", "remaining", "rate", "max_rate",
                 "weight", "done", "started_at", "milestones",
                 "_next_milestone")

    _ids = itertools.count()

    def __init__(self, path: typing.Sequence[Link], nbytes: float,
                 done: Event, max_rate: float | None, weight: float,
                 milestones: typing.Sequence[tuple[float, Event]] = ()
                 ) -> None:
        self.id = next(Flow._ids)
        self.path = tuple(path)
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.max_rate = max_rate
        self.weight = float(weight)
        self.done = done
        #: (byte offset, event) pairs, ascending; each event fires when the
        #: flow's progress crosses its offset.  Lets one bulk flow stand in
        #: for a whole stream of back-to-back copies (one event per layer)
        #: without per-copy flow churn.
        self.milestones = sorted(milestones, key=lambda m: m[0])
        self._next_milestone = 0

    @property
    def progressed(self) -> float:
        return self.nbytes - self.remaining

    def fire_due_milestones(self) -> None:
        while (self._next_milestone < len(self.milestones)
               and self.milestones[self._next_milestone][0]
               <= self.progressed + _EPSILON_BYTES):
            self.milestones[self._next_milestone][1].succeed(self)
            self._next_milestone += 1

    def next_milestone_bytes(self) -> float | None:
        if self._next_milestone >= len(self.milestones):
            return None
        return self.milestones[self._next_milestone][0] - self.progressed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Flow #{self.id} {self.remaining:.0f}/{self.nbytes:.0f}B "
                f"@{self.rate / 1e9:.2f}GB/s>")


class FlowNetwork:
    """Manages active flows and keeps their fair-share rates current."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._active: set[Flow] = set()
        self._last_settle = sim.now
        self._timer_token = 0
        #: Optional audit hook (see :mod:`repro.audit`).  When set, it
        #: receives ``on_flow_started(flow)``, ``on_flow_completed(flow)``
        #: and ``on_rates_assigned(network)`` callbacks; ``None`` (the
        #: default) costs one attribute check per rate change.
        self.observer: typing.Any = None

    # -- public API -----------------------------------------------------------

    def transfer(self, path: typing.Sequence[Link], nbytes: float,
                 setup_delay: float = 0.0,
                 max_rate: float | None = None,
                 weight: float = 1.0) -> Event:
        """Start a transfer of *nbytes* across *path*.

        Returns an event that succeeds (with the flow) once the last byte
        arrives.  ``setup_delay`` models fixed per-copy overhead (driver
        and DMA-engine setup) that elapses before any byte moves.
        ``max_rate`` optionally caps the flow below link fair share (e.g.,
        a DMA engine limit).  ``weight`` biases the fair share: rates are
        allocated proportionally to weight (weighted max-min fairness),
        which models DMA queue priorities.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {nbytes}")
        if not path:
            raise ValueError("transfer path must contain at least one link")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        done = Event(self.sim, name="flow.done")
        flow = Flow(path, nbytes, done, max_rate, weight)
        if setup_delay > 0:
            self.sim._schedule_callback(lambda: self._start(flow), setup_delay)
        else:
            self._start(flow)
        return done

    def transfer_with_milestones(
            self, path: typing.Sequence[Link], nbytes: float,
            milestone_offsets: typing.Sequence[float],
            setup_delay: float = 0.0, max_rate: float | None = None,
            weight: float = 1.0) -> tuple[Event, list[Event]]:
        """Like :meth:`transfer`, with progress-milestone events.

        Each offset in *milestone_offsets* (bytes, ascending) yields an
        event that fires when the flow's cumulative progress crosses it —
        the idiom for a load stream of back-to-back layer copies: one
        flow, one event per layer boundary.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {nbytes}")
        if not path:
            raise ValueError("transfer path must contain at least one link")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        offsets = list(milestone_offsets)
        if sorted(offsets) != offsets:
            raise ValueError("milestone offsets must be ascending")
        if offsets and offsets[-1] > nbytes + _EPSILON_BYTES:
            raise ValueError(f"milestone {offsets[-1]} beyond flow size "
                             f"{nbytes}")
        done = Event(self.sim, name="flow.done")
        events = [Event(self.sim, name=f"flow.milestone[{i}]")
                  for i in range(len(offsets))]
        flow = Flow(path, nbytes, done, max_rate, weight,
                    milestones=list(zip(offsets, events)))
        if setup_delay > 0:
            self.sim._schedule_callback(lambda: self._start(flow), setup_delay)
        else:
            self._start(flow)
        return done, events

    @property
    def active_flows(self) -> frozenset[Flow]:
        return frozenset(self._active)

    # -- internals --------------------------------------------------------------

    def _start(self, flow: Flow) -> None:
        flow.started_at = self.sim.now
        if self.observer is not None:
            self.observer.on_flow_started(flow)
        if flow.remaining <= _EPSILON_BYTES:
            flow.fire_due_milestones()
            flow.done.succeed(flow)
            if self.observer is not None:
                self.observer.on_flow_completed(flow)
            return
        self._settle()
        self._active.add(flow)
        # Milestones sitting at the flow's current progress (offset 0, or
        # an offset equal to bytes already credited) are due immediately;
        # fire them here so the wake-up timer below targets the *next*
        # unfired milestone instead of deferring them to flow completion.
        flow.fire_due_milestones()
        self._rebalance()

    def _settle(self) -> None:
        """Credit progress for time elapsed since the last rate change."""
        elapsed = self.sim.now - self._last_settle
        self._last_settle = self.sim.now
        if elapsed <= 0:
            return
        for flow in self._active:
            moved = flow.rate * elapsed
            flow.remaining -= moved
            for link in flow.path:
                link.bytes_carried += moved

    def _rebalance(self) -> None:
        """Recompute max-min fair rates and re-arm the wake-up timer.

        The timer fires at the earliest flow completion *or* milestone
        crossing, whichever comes first.
        """
        self._timer_token += 1
        completed = [f for f in self._active if f.remaining <= _EPSILON_BYTES]
        for flow in completed:
            self._active.remove(flow)
            flow.remaining = 0.0
            flow.fire_due_milestones()
            flow.done.succeed(flow)
            if self.observer is not None:
                self.observer.on_flow_completed(flow)
        if not self._active:
            return

        self._assign_fair_rates()
        if self.observer is not None:
            self.observer.on_rates_assigned(self)
        token = self._timer_token
        waits = [self._bytes_to_next_event(f) / f.rate
                 for f in self._active if f.rate > 0.0]
        if not waits:
            # Every active flow is rate-starved (e.g. links drained to a
            # zero residual by float-exhausted allocations); rates will be
            # reassigned when another flow starts or finishes.
            return
        self.sim._schedule_callback(
            lambda: self._on_timer(token), max(0.0, min(waits)))

    @staticmethod
    def _bytes_to_next_event(flow: Flow) -> float:
        """Bytes until *flow* completes or crosses its next milestone.

        A pending milestone distance of ``0.0`` is a real target (the
        milestone sits exactly at the current progress offset), so it must
        not be collapsed into "no milestone" by truthiness.
        """
        to_milestone = flow.next_milestone_bytes()
        if to_milestone is None:
            return flow.remaining
        return min(flow.remaining, to_milestone)

    def _assign_fair_rates(self) -> None:
        """Weighted progressive filling: freeze flows at bottlenecks.

        Each unfrozen flow receives ``weight * share`` where ``share`` is
        the per-unit-weight allocation of its tightest link; flows capped
        below their fair share free the remainder for the rest.
        """
        residual: dict[Link, float] = {}
        load: dict[Link, float] = {}
        # Unfrozen-flow count per link.  The "link still contested" test
        # must use this integer, not ``load > 0``: fractional weights
        # (e.g. 0.4) leave float residue when subtracted back out, and a
        # drained link with residual load but no unfrozen flows would be
        # picked as a bottleneck that no iteration can freeze — an
        # infinite loop.
        count: dict[Link, int] = {}
        for flow in self._active:
            for link in flow.path:
                residual.setdefault(link, link.bandwidth)
                load[link] = load.get(link, 0.0) + flow.weight
                count[link] = count.get(link, 0) + 1

        unfrozen = set(self._active)
        while unfrozen:
            # The next bottleneck is the smallest per-unit-weight share,
            # considering links and per-flow rate caps.
            share = min(residual[link] / load[link]
                        for link in residual if count[link] > 0)
            capped = [f for f in unfrozen
                      if f.max_rate is not None
                      and f.max_rate <= f.weight * share]
            if capped:
                # Freeze capped flows at their own limit first; their unused
                # share is redistributed on the next iteration.
                for flow in capped:
                    self._freeze(flow, typing.cast(float, flow.max_rate),
                                 unfrozen, residual, load, count)
                continue
            bottleneck = min((link for link in residual if count[link] > 0),
                             key=lambda link: residual[link] / load[link])
            for flow in [f for f in unfrozen if bottleneck in f.path]:
                self._freeze(flow, flow.weight * share, unfrozen, residual,
                             load, count)

    @staticmethod
    def _freeze(flow: Flow, rate: float, unfrozen: set[Flow],
                residual: dict[Link, float], load: dict[Link, float],
                count: dict[Link, int]) -> None:
        flow.rate = rate
        unfrozen.remove(flow)
        for link in flow.path:
            residual[link] = max(0.0, residual[link] - rate)
            count[link] -= 1
            load[link] = load[link] - flow.weight if count[link] else 0.0

    def _on_timer(self, token: int) -> None:
        if token != self._timer_token:
            return  # superseded by a later rebalance
        self._settle()
        for flow in self._active:
            flow.fire_due_milestones()
        self._rebalance()
