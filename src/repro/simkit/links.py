"""Bandwidth-shared links with max-min fair allocation.

PCIe lanes, PCIe switch uplinks and NVLink bricks are all modelled as
:class:`Link` objects.  A transfer is a :class:`Flow` that traverses a
*path* of links (e.g., GPU PCIe lane -> switch uplink) and receives the
max-min fair bandwidth across every link it crosses, recomputed whenever
a flow starts or finishes.  This is what makes contention effects in the
paper — two GPUs halving each other's bandwidth through a shared switch
(Table 2), or parallel transmission interfering across models (Table 4) —
emerge from the model instead of being special-cased.

Rates are recomputed with the classic progressive-filling (water-filling)
algorithm, which yields the unique max-min fair allocation.  The
allocation decomposes exactly over connected components of the
flow/link contention graph (two flows interact only if a chain of shared
links connects them), which enables the incremental fast path: when a
flow starts or finishes, only its connected component is refilled; rates
elsewhere are provably unchanged.  Wake-ups that change no membership at
all (milestone crossings, completions of flows that shared no link) skip
the fill entirely.

The fast path runs the fill as a flat-array kernel: links and flows are
numbered with component-local integers, the flow×link incidence is a
CSR-style index list, and each water-filling iteration freezes a whole
bottleneck group at once.  Components at or above ``_VEC_MIN_FLOWS``
flows run the same kernel vectorized in numpy (``np.add.at`` /
``np.subtract.at`` apply their updates sequentially in index order, so
the float evaluation order — and therefore every bit of every rate — is
identical to the scalar kernel and to the reference fill).
``REPRO_SLOW_PATH=1`` (see :mod:`repro.fastpath`) refills every
component from scratch with the original dict-based arithmetic instead —
same per-component evaluation order, so all paths produce bit-identical
rates — and :meth:`FlowNetwork.reference_fair_rates` exposes the
original whole-network progressive filling for differential testing.
"""

from __future__ import annotations

import itertools
import math
import operator
import typing

from repro import fastpath
from repro.simkit.events import Event

try:  # numpy powers the vectorized kernel; everything degrades to the
    import numpy as _np  # scalar flat-array kernel without it.
except ImportError:  # pragma: no cover - numpy is a hard dep elsewhere
    _np = None

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.sim import Simulator

__all__ = ["Link", "Flow", "FlowNetwork"]

# Residual bytes below which a flow counts as complete (absorbs float error).
_EPSILON_BYTES = 1e-3

_INF = float("inf")

_flow_id = operator.attrgetter("id")

#: Component size at which the water-filling kernel switches from the
#: flat scalar loops to the numpy group kernel.  Below this, numpy's
#: per-call overhead on tiny arrays costs more than it saves; both
#: kernels perform the identical float operations in the identical
#: order, so the switch is invisible to simulated results.
_VEC_MIN_FLOWS = 40

#: Active-flow count at which the post-fill completion/milestone wait
#: scan runs as one vectorized min-reduction instead of a Python loop.
_VEC_MIN_SCAN = 64

#: Fill-memo capacity (entries).  The memo is cleared, not evicted, when
#: it fills: component shapes in steady-state serving cycle through a
#: small working set, so a full memo means the workload shifted.
_FILL_MEMO_MAX = 8192


class Link:
    """A unidirectional link with a fixed capacity in bytes/second."""

    __slots__ = ("name", "bandwidth", "nominal_bandwidth", "bytes_carried")

    def __init__(self, name: str, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise ValueError(f"link bandwidth must be positive, got {bandwidth}")
        self.name = name
        self.bandwidth = float(bandwidth)
        #: Design capacity.  ``bandwidth`` is the *current* capacity and can
        #: drop below nominal while a fault schedule degrades the link (see
        #: :meth:`FlowNetwork.set_link_bandwidth`); restoring resets it here.
        self.nominal_bandwidth = float(bandwidth)
        #: Cumulative bytes that have crossed this link (for bandwidth stats).
        self.bytes_carried = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.bandwidth / 1e9:.2f} GB/s>"


class Flow:
    """An in-flight transfer across a path of links."""

    __slots__ = ("id", "path", "nbytes", "remaining", "rate", "max_rate",
                 "weight", "done", "started_at", "milestones",
                 "_next_milestone")

    _ids = itertools.count()

    def __init__(self, path: typing.Sequence[Link], nbytes: float,
                 done: Event, max_rate: float | None, weight: float,
                 milestones: typing.Sequence[tuple[float, Event]] = ()
                 ) -> None:
        self.id = next(Flow._ids)
        self.path = tuple(path)
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.max_rate = max_rate
        self.weight = float(weight)
        self.done = done
        #: (byte offset, event) pairs, ascending; each event fires when the
        #: flow's progress crosses its offset.  Lets one bulk flow stand in
        #: for a whole stream of back-to-back copies (one event per layer)
        #: without per-copy flow churn.  Most flows carry none.
        self.milestones = (sorted(milestones, key=lambda m: m[0])
                           if milestones else [])
        self._next_milestone = 0

    @property
    def progressed(self) -> float:
        return self.nbytes - self.remaining

    def fire_due_milestones(self) -> None:
        milestones = self.milestones
        i = self._next_milestone
        n = len(milestones)
        due = (self.nbytes - self.remaining) + _EPSILON_BYTES
        while i < n and milestones[i][0] <= due:
            milestones[i][1].succeed(self)
            i += 1
        self._next_milestone = i

    def next_milestone_bytes(self) -> float | None:
        if self._next_milestone >= len(self.milestones):
            return None
        return self.milestones[self._next_milestone][0] - self.progressed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Flow #{self.id} {self.remaining:.0f}/{self.nbytes:.0f}B "
                f"@{self.rate / 1e9:.2f}GB/s>")


class FlowNetwork:
    """Manages active flows and keeps their fair-share rates current."""

    def __init__(self, sim: "Simulator",
                 incremental: bool | None = None) -> None:
        self.sim = sim
        #: Active flows in start order (dict-as-ordered-set: deterministic
        #: iteration, unlike a plain set keyed on object ids).
        self._active: dict[Flow, None] = {}
        #: Links currently carrying flows -> the flows crossing them; the
        #: adjacency structure for connected-component lookups.
        self._link_flows: dict[Link, set[Flow]] = {}
        #: Active flows that carry milestones, in start order — the
        #: wake-up handler fires due milestones without scanning flows
        #: that (in the overwhelmingly common case) have none.
        self._milestoned: dict[Flow, None] = {}
        self._last_settle = sim.now
        self._timer_token = 0
        if incremental is None:
            incremental = fastpath.enabled()
        self._incremental = incremental
        self._vectorized = incremental and _np is not None
        #: Path-class census -> per-class rates memo, and the path ->
        #: class-id intern table backing it (see :meth:`_fill`).  Hits
        #: are bit-identical replays of an earlier fill of the same
        #: component shape.
        self._fill_memo: dict[tuple, dict[int, float]] = {}
        self._path_class: dict[tuple[Link, ...], int] = {}
        #: Optional audit hook (see :mod:`repro.audit`).  When set, it
        #: receives ``on_flow_started(flow)``, ``on_flow_completed(flow)``
        #: and ``on_rates_assigned(network)`` callbacks; ``None`` (the
        #: default) costs one attribute check per rate change.
        self.observer: typing.Any = None

    # -- public API -----------------------------------------------------------

    def transfer(self, path: typing.Sequence[Link], nbytes: float,
                 setup_delay: float = 0.0,
                 max_rate: float | None = None,
                 weight: float = 1.0) -> Event:
        """Start a transfer of *nbytes* across *path*.

        Returns an event that succeeds (with the flow) once the last byte
        arrives.  ``setup_delay`` models fixed per-copy overhead (driver
        and DMA-engine setup) that elapses before any byte moves.
        ``max_rate`` optionally caps the flow below link fair share (e.g.,
        a DMA engine limit).  ``weight`` biases the fair share: rates are
        allocated proportionally to weight (weighted max-min fairness),
        which models DMA queue priorities.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {nbytes}")
        if not path:
            raise ValueError("transfer path must contain at least one link")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if max_rate is not None and max_rate <= 0:
            # A non-positive cap would create a permanently rate-starved
            # flow whose done event can never fire — reject it like the
            # other argument errors instead of hanging the caller.
            raise ValueError(f"max_rate must be positive, got {max_rate}")
        done = Event(self.sim, name="flow.done")
        flow = Flow(path, nbytes, done, max_rate, weight)
        if setup_delay > 0:
            self.sim._schedule_callback(lambda: self._start(flow), setup_delay)
        else:
            self._start(flow)
        return done

    def transfer_with_milestones(
            self, path: typing.Sequence[Link], nbytes: float,
            milestone_offsets: typing.Sequence[float],
            setup_delay: float = 0.0, max_rate: float | None = None,
            weight: float = 1.0) -> tuple[Event, list[Event]]:
        """Like :meth:`transfer`, with progress-milestone events.

        Each offset in *milestone_offsets* (bytes, ascending) yields an
        event that fires when the flow's cumulative progress crosses it —
        the idiom for a load stream of back-to-back layer copies: one
        flow, one event per layer boundary.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {nbytes}")
        if not path:
            raise ValueError("transfer path must contain at least one link")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if max_rate is not None and max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {max_rate}")
        offsets = list(milestone_offsets)
        if offsets and offsets[0] < 0:
            raise ValueError(f"milestone offsets must be non-negative, "
                             f"got {offsets[0]}")
        if sorted(offsets) != offsets:
            raise ValueError("milestone offsets must be ascending")
        if offsets and offsets[-1] > nbytes + _EPSILON_BYTES:
            raise ValueError(f"milestone {offsets[-1]} beyond flow size "
                             f"{nbytes}")
        done = Event(self.sim, name="flow.done")
        events = [Event(self.sim, name="flow.milestone")
                  for _ in range(len(offsets))]
        flow = Flow(path, nbytes, done, max_rate, weight,
                    milestones=list(zip(offsets, events)))
        if setup_delay > 0:
            self.sim._schedule_callback(lambda: self._start(flow), setup_delay)
        else:
            self._start(flow)
        return done, events

    @property
    def active_flows(self) -> frozenset[Flow]:
        return frozenset(self._active)

    def set_link_bandwidth(self, link: Link, bandwidth: float) -> None:
        """Change *link*'s capacity at runtime.

        Progress is credited at the old rates up to "now", then every
        in-flight flow crossing the link has its fair share recomputed —
        the degraded (or restored) capacity takes effect immediately, on
        both the incremental fast path and the from-scratch slow path.
        A no-op when the capacity is unchanged or the link is idle.
        """
        if bandwidth <= 0:
            raise ValueError(f"link bandwidth must be positive, got {bandwidth}")
        bandwidth = float(bandwidth)
        if bandwidth == link.bandwidth:
            return
        # Memoized allocations assumed the old capacities.
        self._fill_memo.clear()
        self._settle()
        link.bandwidth = bandwidth
        flows = self._link_flows.get(link)
        if not flows:
            return
        self._rebalance(changed=sorted(flows, key=_flow_id))

    def reference_fair_rates(self) -> dict[Flow, float]:
        """Whole-network progressive filling, without touching flow state.

        The original from-scratch reference implementation: one global
        fill over every active flow, no component decomposition.  Returns
        the would-be rate per flow; differential tests compare this
        against the incremental allocator's assignments.
        """
        rates: dict[Flow, float] = {}
        self._fill_reference(sorted(self._active, key=_flow_id), rates)
        return rates

    # -- internals --------------------------------------------------------------

    def _start(self, flow: Flow) -> None:
        flow.started_at = self.sim.now
        if self.observer is not None:
            self.observer.on_flow_started(flow)
        if flow.remaining <= _EPSILON_BYTES:
            flow.fire_due_milestones()
            flow.done.succeed(flow)
            if self.observer is not None:
                self.observer.on_flow_completed(flow)
            return
        self._settle()
        self._active[flow] = None
        for link in flow.path:
            flows = self._link_flows.get(link)
            if flows is None:
                self._link_flows[link] = {flow}
            else:
                flows.add(flow)
        # Milestones sitting at the flow's current progress (offset 0, or
        # an offset equal to bytes already credited) are due immediately;
        # fire them here so the wake-up timer below targets the *next*
        # unfired milestone instead of deferring them to flow completion.
        if flow.milestones:
            self._milestoned[flow] = None
            flow.fire_due_milestones()
        self._rebalance(started=flow)

    def _settle(self) -> None:
        """Credit progress for time elapsed since the last rate change.

        The credit is clamped at the flow's residual bytes: a wake-up
        that lands past the flow's exact completion instant (superseded
        timers, float overshoot in ``remaining / rate``) must not push
        ``remaining`` below zero or credit ``bytes_carried`` with bytes
        the flow never had — the auditor's conservation ledger holds
        exactly because of this clamp.
        """
        now = self.sim._now
        elapsed = now - self._last_settle
        self._last_settle = now
        if elapsed <= 0:
            return
        for flow in self._active:
            moved = flow.rate * elapsed
            if moved > 0.0:
                remaining = flow.remaining
                if moved >= remaining:
                    moved = remaining if remaining > 0.0 else 0.0
                flow.remaining = remaining - moved
                for link in flow.path:
                    link.bytes_carried += moved

    def _rebalance(self, started: Flow | None = None,
                   changed: typing.Sequence[Flow] = ()) -> None:
        """Recompute fair rates where needed and re-arm the wake-up timer.

        The timer fires at the earliest flow completion *or* milestone
        crossing, whichever comes first.  On the fast path only the
        connected component(s) touched by *started*, *changed* (flows on a
        link whose capacity just moved) and just-completed flows are
        refilled; a wake-up that changes no component membership (a pure
        milestone crossing, or completions of flows that shared no link
        with a survivor) leaves every rate untouched.
        """
        self._timer_token += 1
        active = self._active
        completed = [f for f in active if f.remaining <= _EPSILON_BYTES]
        seeds: list[Flow] = [] if started is None else [started]
        if changed:
            seeds.extend(changed)
        if completed:
            link_flows = self._link_flows
            milestoned = self._milestoned
            for flow in completed:
                del active[flow]
                for link in flow.path:
                    flows = link_flows[link]
                    flows.discard(flow)
                    if flows:
                        seeds.extend(flows)
                    else:
                        del link_flows[link]
                flow.remaining = 0.0
                if flow.milestones:
                    milestoned.pop(flow, None)
                    flow.fire_due_milestones()
                flow.done.succeed(flow)
                if self.observer is not None:
                    self.observer.on_flow_completed(flow)
        if not active:
            # The network just went quiescent; auditors still need to see
            # the final (empty) allocation or their ledgers end one
            # assignment short of the run.
            if self.observer is not None:
                self.observer.on_rates_assigned(self)
            return

        if not self._incremental:
            self._fill_all_components()
        elif started is not None and not completed and not changed:
            # A flow just started and nothing finished: its component
            # seeds the fill, and when its links carry nothing else the
            # component is the flow alone — no walk, no sort.
            link_flows = self._link_flows
            for link in started.path:
                if len(link_flows[link]) > 1:
                    self._fill_component(self._component_of((started,)))
                    break
            else:
                self._fill((started,))
        elif seeds:
            self._fill_component(self._component_of(seeds))
        # else: nothing started or finished (milestone-only wake-up) —
        # the allocation is already the fair one; skip the fill entirely.
        if self.observer is not None:
            self.observer.on_rates_assigned(self)
        token = self._timer_token
        # _bytes_to_next_event over every active flow, batched: the wait
        # is the min over flows of bytes-to-next-event / rate.  Large
        # active sets take one vectorized min-reduction; small ones (the
        # common case) run an inlined loop — most flows carry no
        # milestones, so each is a pair of attribute loads and a divide.
        if self._vectorized and len(active) >= _VEC_MIN_SCAN \
                and not self._milestoned:
            count = len(active)
            rates = _np.fromiter(
                (f.rate for f in active), dtype=float, count=count)
            nbytes = _np.fromiter(
                (f.remaining for f in active), dtype=float, count=count)
            live = rates > 0.0
            if not live.any():
                return
            wait = float(_np.min(nbytes[live] / rates[live]))
        else:
            wait = _INF
            for flow in active:
                rate = flow.rate
                if rate <= 0.0:
                    continue
                nbytes = flow.remaining
                milestones = flow.milestones
                if flow._next_milestone < len(milestones):
                    to_milestone = (milestones[flow._next_milestone][0]
                                    - (flow.nbytes - flow.remaining))
                    if to_milestone < nbytes:
                        nbytes = to_milestone
                candidate = nbytes / rate
                if candidate < wait:
                    wait = candidate
            if wait == _INF:
                # Every active flow is rate-starved (e.g. links drained
                # to a zero residual by float-exhausted allocations);
                # rates will be reassigned when another flow starts or
                # finishes.
                return
        sim = self.sim
        if wait <= 0.0:
            sim._ripe.append(
                (next(sim._sequence), lambda: self._on_timer(token)))
        else:
            now = sim._now
            if now + wait <= now:
                # The next byte event is closer than one representable
                # tick of the clock (a sub-epsilon residue on a fast
                # link, late in a long run).  A same-timestamp wake-up
                # settles zero elapsed time, recomputes the identical
                # wait, and spins forever — clamp to one ulp so time,
                # and therefore settled progress, actually advances.
                wait = math.ulp(now)
            sim._schedule_callback(lambda: self._on_timer(token), wait)

    @staticmethod
    def _bytes_to_next_event(flow: Flow) -> float:
        """Bytes until *flow* completes or crosses its next milestone.

        A pending milestone distance of ``0.0`` is a real target (the
        milestone sits exactly at the current progress offset), so it must
        not be collapsed into "no milestone" by truthiness.
        """
        to_milestone = flow.next_milestone_bytes()
        if to_milestone is None:
            return flow.remaining
        return min(flow.remaining, to_milestone)

    def _component_of(self, seeds: typing.Iterable[Flow]) -> set[Flow]:
        """Active flows connected to *seeds* through chains of shared links.

        The walk is link-granular: each link's whole flow set joins the
        component in one bulk set union and each link is expanded exactly
        once, so the cost is O(flows + links) instead of the
        O(flows × links × neighbours) of a flow-by-flow walk.
        """
        active = self._active
        link_flows = self._link_flows
        component: set[Flow] = set()
        pending: list[Link] = []
        for flow in seeds:
            if flow in active and flow not in component:
                component.add(flow)
                pending.extend(flow.path)
        seen: set[Link] = set()
        while pending:
            link = pending.pop()
            if link in seen:
                continue
            seen.add(link)
            fresh = link_flows[link] - component
            if fresh:
                component |= fresh
                for flow in fresh:
                    pending.extend(flow.path)
        return component

    def _fill_all_components(self) -> None:
        """From-scratch refill of every component (the slow path).

        Each component is filled independently with the same arithmetic
        the incremental path uses, so slow- and fast-path runs produce
        bit-identical rates.
        """
        visited: set[Flow] = set()
        for flow in self._active:
            if flow in visited:
                continue
            component = self._component_of((flow,))
            visited |= component
            self._fill(sorted(component, key=_flow_id))

    # -- the water-filling kernels ------------------------------------------------
    #
    # Three implementations of weighted progressive filling share one
    # float evaluation order, which makes their outputs bit-identical:
    #
    # * _fill_reference — the original dict-bookkeeping loop, kept as the
    #   executable spec (reference_fair_rates, REPRO_SLOW_PATH=1);
    # * _fill_small — the same algorithm over flat arrays indexed by
    #   component-local integers (fast path, small components);
    # * _fill_vec — the flat-array kernel vectorized in numpy, freezing
    #   whole bottleneck groups per iteration (fast path, components of
    #   _VEC_MIN_FLOWS flows or more).
    #
    # The order contract: flows are visited in ascending flow id; a
    # frozen flow's rate is subtracted from its path links in path
    # order; per-link load/count bookkeeping follows the same sequence.
    # numpy's add.at/subtract.at apply duplicate-index updates
    # sequentially in index order, which is exactly that contract.

    def _fill_component(self, component: set[Flow]) -> None:
        """Fill one connected component given as an *unordered* set.

        The census pass is order-independent — class counts and the
        uniformity check read each flow exactly once, and a memo hit
        assigns one rate per class — so the ascending-id sort that the
        kernels require is deferred until a kernel actually has to run
        (a memo miss, a non-uniform component, or the reference path).
        """
        if len(component) < 2 or not self._incremental:
            self._fill(sorted(component, key=_flow_id))
            return
        path_class = self._path_class
        census: dict[int, int] = {}
        pairs: list[tuple[Flow, int]] = []
        weight = next(iter(component)).weight
        for flow in component:
            if flow.weight != weight or flow.max_rate is not None:
                break
            cls = path_class.get(flow.path)
            if cls is None:
                cls = path_class[flow.path] = len(path_class)
            pairs.append((flow, cls))
            census[cls] = census.get(cls, 0) + 1
        else:
            rates = self._fill_memo.get(
                (weight, tuple(sorted(census.items()))))
            if rates is not None:
                for flow, cls in pairs:
                    flow.rate = rates[cls]
                return
        self._fill(sorted(component, key=_flow_id))

    def _fill(self, ordered: typing.Sequence[Flow]) -> None:
        """Weighted progressive filling over *ordered* (a closed flow set).

        Freezes flows at bottlenecks: each unfrozen flow receives
        ``weight * share`` where ``share`` is the per-unit-weight
        allocation of its tightest link; flows capped below their fair
        share free the remainder for the rest.  *ordered* must be closed
        under link sharing (a union of connected components) and sorted
        by flow id, which fixes the float evaluation order.  Writes
        rates to ``flow.rate``.
        """
        n = len(ordered)
        if n == 0:
            # Every seed completed and took its neighbours with it;
            # nothing left to allocate.
            return
        if n == 1:
            # A lone flow (its links carry nothing else — the usual case
            # for a warm DHA read on an uncontended lane) gets the
            # per-unit-weight share of its tightest link, capped.  The
            # arithmetic is the general loop's first iteration verbatim
            # (``0.0 + weight`` is exact), so the shortcut is
            # bit-identical.
            flow = ordered[0]
            weight = flow.weight
            rate = _INF
            for link in flow.path:
                share = link.bandwidth / weight
                if share < rate:
                    rate = share
            rate = weight * rate
            if flow.max_rate is not None and flow.max_rate <= rate:
                rate = flow.max_rate
            flow.rate = rate
            return
        if not self._incremental:
            self._fill_reference(ordered)
            return
        # Uniform components — every flow the same weight, nobody capped,
        # the overwhelmingly common shape in serving replays — allocate
        # per *path class*: flows with equal paths are interchangeable in
        # the fill (equal weights make every load sum and every freeze
        # subtraction an identical float regardless of flow order), so
        # the allocation is a pure function of the path-class census.
        # The census is the memo key; a hit replays a previous fill of
        # the same census, skipping the kernel entirely.  The memo is
        # cleared whenever a link capacity changes (see
        # :meth:`set_link_bandwidth`), which keeps capacities out of the
        # key on the hot path.
        path_class = self._path_class
        classes: list[int] = []
        census: dict[int, int] = {}
        weight = ordered[0].weight
        uniform = True
        for flow in ordered:
            if flow.weight != weight or flow.max_rate is not None:
                uniform = False
                break
            cls = path_class.get(flow.path)
            if cls is None:
                cls = path_class[flow.path] = len(path_class)
            classes.append(cls)
            census[cls] = census.get(cls, 0) + 1
        if uniform:
            key = (weight, tuple(sorted(census.items())))
            memo = self._fill_memo
            rates = memo.get(key)
            if rates is not None:
                for flow, cls in zip(ordered, classes):
                    flow.rate = rates[cls]
                return
            self._run_fill_kernel(ordered, n)
            value: dict[int, float] = {}
            for flow, cls in zip(ordered, classes):
                rate = value.setdefault(cls, flow.rate)
                if rate != flow.rate:  # pragma: no cover - guards the
                    return  # per-class-rate invariant; never memo a lie
            if len(memo) >= _FILL_MEMO_MAX:
                memo.clear()
            memo[key] = value
            return
        self._run_fill_kernel(ordered, n)

    def _run_fill_kernel(self, ordered: typing.Sequence[Flow],
                         n: int) -> None:
        """Build the flat component tables and run the matching kernel."""
        link_ids: dict[Link, int] = {}
        bands: list[float] = []
        links_of: list[tuple[int, ...]] = []
        weights: list[float] = []
        caps: list[float | None] = []
        any_cap = False
        for flow in ordered:
            ids: list[int] = []
            for link in flow.path:
                j = link_ids.get(link)
                if j is None:
                    j = link_ids[link] = len(bands)
                    bands.append(link.bandwidth)
                ids.append(j)
            cap = flow.max_rate
            if cap is not None:
                any_cap = True
            links_of.append(tuple(ids))
            weights.append(flow.weight)
            caps.append(cap)
        if self._vectorized and n >= _VEC_MIN_FLOWS:
            self._fill_vec(ordered, bands, links_of, weights, caps, any_cap)
        else:
            self._fill_small(ordered, bands, links_of, weights, caps, any_cap)

    def _fill_small(self, ordered: typing.Sequence[Flow],
                    bands: list[float],
                    links_of: list[tuple[int, ...]],
                    weights: list[float],
                    caps: list[float | None],
                    any_cap: bool) -> None:
        """Flat-array progressive filling for small components.

        Links carry component-local integer ids in first-seen order (the
        same order the reference fill's dicts iterate), per-link state
        lives in parallel lists, and each iteration freezes one whole
        bottleneck group — no per-flow dict bookkeeping.
        """
        n = len(ordered)
        m = len(bands)
        residual = bands  # the caller's copy; consumed in place
        load = [0.0] * m
        count = [0] * m
        flows_of: list[list[int]] = [[] for _ in range(m)]
        for i, ids in enumerate(links_of):
            weight = weights[i]
            for j in ids:
                load[j] += weight
                count[j] += 1
                flows_of[j].append(i)

        frozen = bytearray(n)
        left = n
        while left:
            # The next bottleneck is the smallest per-unit-weight share,
            # considering links and per-flow rate caps.  One pass finds
            # both the share and the first link attaining it, matching
            # min()'s first-strict-minimum semantics on the dict order.
            share = _INF
            bottleneck = -1
            for j in range(m):
                if count[j] > 0:
                    s = residual[j] / load[j]
                    if s < share:
                        share = s
                        bottleneck = j
            if any_cap:
                capped = [i for i in range(n)
                          if not frozen[i] and caps[i] is not None
                          and caps[i] <= weights[i] * share]
                if capped:
                    # Freeze capped flows at their own limit first; their
                    # unused share is redistributed on the next iteration.
                    for i in capped:
                        rate = caps[i]
                        ordered[i].rate = rate
                        frozen[i] = 1
                        left -= 1
                        weight = weights[i]
                        for j in links_of[i]:
                            r = residual[j] - rate
                            residual[j] = r if r > 0.0 else 0.0
                            c = count[j] - 1
                            count[j] = c
                            load[j] = load[j] - weight if c else 0.0
                    continue
            for i in flows_of[bottleneck]:
                if not frozen[i]:
                    rate = weights[i] * share
                    ordered[i].rate = rate
                    frozen[i] = 1
                    left -= 1
                    weight = weights[i]
                    for j in links_of[i]:
                        r = residual[j] - rate
                        residual[j] = r if r > 0.0 else 0.0
                        c = count[j] - 1
                        count[j] = c
                        load[j] = load[j] - weight if c else 0.0

    def _fill_vec(self, ordered: typing.Sequence[Flow],
                  bands: list[float],
                  links_of: list[tuple[int, ...]],
                  weights_in: list[float],
                  caps_in: list[float | None],
                  any_cap: bool) -> None:
        """Vectorized progressive filling for large components.

        The flow×link incidence is CSR-style index arrays; every
        water-filling iteration computes all link shares at once and
        freezes the whole bottleneck (or capped) group with
        ``np.subtract.at``, whose sequential duplicate-index semantics
        reproduce the scalar kernel's float evaluation order exactly.
        """
        np = _np
        n = len(ordered)
        m = len(bands)
        weights = np.asarray(weights_in)
        caps = np.array([_INF if c is None else c for c in caps_in])
        residual = np.asarray(bands)
        flows_ix = np.repeat(np.arange(n, dtype=np.intp),
                             [len(ids) for ids in links_of])
        links_ix = np.fromiter((j for ids in links_of for j in ids),
                               dtype=np.intp, count=len(flows_ix))
        inc_weight = weights[flows_ix]
        load = np.zeros(m)
        np.add.at(load, links_ix, inc_weight)
        count = np.bincount(links_ix, minlength=m)
        rates = np.empty(n)
        unfrozen = np.ones(n, dtype=bool)
        left = n
        with np.errstate(divide="ignore", invalid="ignore"):
            while left:
                contested = count > 0
                shares = np.where(contested, residual / load, _INF)
                share = shares.min()
                if any_cap:
                    capped = unfrozen & (caps <= weights * share)
                    if capped.any():
                        group = np.nonzero(capped)[0]
                        group_rates = caps[group]
                        left -= self._freeze_group(
                            np, group, group_rates, rates, unfrozen,
                            flows_ix, links_ix, inc_weight,
                            residual, load, count, m)
                        continue
                bottleneck = shares.argmin()
                group = flows_ix[links_ix == bottleneck]
                group = group[unfrozen[group]]
                group_rates = weights[group] * share
                left -= self._freeze_group(
                    np, group, group_rates, rates, unfrozen,
                    flows_ix, links_ix, inc_weight,
                    residual, load, count, m)
        for i, rate in enumerate(rates.tolist()):
            ordered[i].rate = rate

    @staticmethod
    def _freeze_group(np, group, group_rates, rates, unfrozen,
                      flows_ix, links_ix, inc_weight,
                      residual, load, count, m) -> int:
        """Freeze *group* (ascending flow indices) at *group_rates*.

        Interleaving note: the scalar kernel clamps each link residual at
        zero after every single subtraction; doing all of a group's
        subtractions first (sequentially, via ``subtract.at``) and
        clamping once is bit-identical because rates are non-negative —
        once a residual would clamp, every later value in the chain
        clamps to the same zero.  Likewise the scalar kernel zeroes a
        link's load the moment its unfrozen count hits zero, which can
        only happen on the group's last crossing flow — so subtracting
        all group weights and then zeroing drained links matches.
        """
        rates[group] = group_rates
        unfrozen[group] = False
        member = np.zeros(len(rates), dtype=bool)
        member[group] = True
        rows = member[flows_ix]
        rows_links = links_ix[rows]
        np.subtract.at(residual, rows_links, rates[flows_ix[rows]])
        np.maximum(residual, 0.0, out=residual)
        count -= np.bincount(rows_links, minlength=m)
        np.subtract.at(load, rows_links, inc_weight[rows])
        load[count == 0] = 0.0
        return int(len(group))

    def _fill_reference(self, ordered: typing.Sequence[Flow],
                        into: dict[Flow, float] | None = None) -> None:
        """The original dict-bookkeeping progressive filling.

        Kept verbatim as the executable specification: it backs
        :meth:`reference_fair_rates` and the ``REPRO_SLOW_PATH=1``
        from-scratch path the differential sweeps compare against.
        Writes rates to ``flow.rate``, or into *into* when given
        (reference mode).
        """
        if len(ordered) == 1:
            flow = ordered[0]
            weight = flow.weight
            rate = _INF
            for link in flow.path:
                share = link.bandwidth / weight
                if share < rate:
                    rate = share
            rate = weight * rate
            if flow.max_rate is not None and flow.max_rate <= rate:
                rate = flow.max_rate
            if into is None:
                flow.rate = rate
            else:
                into[flow] = rate
            return
        residual: dict[Link, float] = {}
        load: dict[Link, float] = {}
        # Unfrozen-flow count per link.  The "link still contested" test
        # must use this integer, not ``load > 0``: fractional weights
        # (e.g. 0.4) leave float residue when subtracted back out, and a
        # drained link with residual load but no unfrozen flows would be
        # picked as a bottleneck that no iteration can freeze — an
        # infinite loop.
        count: dict[Link, int] = {}
        for flow in ordered:
            for link in flow.path:
                residual.setdefault(link, link.bandwidth)
                load[link] = load.get(link, 0.0) + flow.weight
                count[link] = count.get(link, 0) + 1

        unfrozen = dict.fromkeys(ordered)
        while unfrozen:
            # The next bottleneck is the smallest per-unit-weight share,
            # considering links and per-flow rate caps.
            share = min(residual[link] / load[link]
                        for link in residual if count[link] > 0)
            capped = [f for f in unfrozen
                      if f.max_rate is not None
                      and f.max_rate <= f.weight * share]
            if capped:
                # Freeze capped flows at their own limit first; their unused
                # share is redistributed on the next iteration.
                for flow in capped:
                    self._freeze(flow, typing.cast(float, flow.max_rate),
                                 unfrozen, residual, load, count, into)
                continue
            bottleneck = min((link for link in residual if count[link] > 0),
                             key=lambda link: residual[link] / load[link])
            for flow in [f for f in unfrozen if bottleneck in f.path]:
                self._freeze(flow, flow.weight * share, unfrozen, residual,
                             load, count, into)

    @staticmethod
    def _freeze(flow: Flow, rate: float, unfrozen: dict[Flow, None],
                residual: dict[Link, float], load: dict[Link, float],
                count: dict[Link, int],
                into: dict[Flow, float] | None = None) -> None:
        if into is None:
            flow.rate = rate
        else:
            into[flow] = rate
        del unfrozen[flow]
        for link in flow.path:
            residual[link] = max(0.0, residual[link] - rate)
            count[link] -= 1
            load[link] = load[link] - flow.weight if count[link] else 0.0

    def _on_timer(self, token: int) -> None:
        if token != self._timer_token:
            return  # superseded by a later rebalance
        self._settle()
        for flow in self._milestoned:
            flow.fire_due_milestones()
        self._rebalance()
