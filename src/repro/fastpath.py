"""Global switch for the simulation fast path.

The fast path (incremental fair-share rebalancing, planner timeline
memoization, plan caching) is on by default and produces the same
simulated results as the reference implementations; it exists purely to
cut wall-clock time.  Two ways to fall back to the reference code paths:

* environment: run with ``REPRO_SLOW_PATH=1``;
* in-process: ``with fastpath.forced(False): ...`` — used by the perf
  harness and the differential tests to run both paths side by side.
"""

from __future__ import annotations

import contextlib
import os

_forced: bool | None = None


def enabled() -> bool:
    """True when the fast path should be used."""
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_SLOW_PATH") != "1"


@contextlib.contextmanager
def forced(value: bool):
    """Force the fast path on/off for the duration of the block."""
    global _forced
    previous = _forced
    _forced = value
    try:
        yield
    finally:
        _forced = previous
