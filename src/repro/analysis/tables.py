"""Plain-text table and histogram rendering for benchmark output."""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.serving.histogram import LatencyHistogram

__all__ = ["format_table", "format_histogram"]


def format_table(headers: typing.Sequence[str],
                 rows: typing.Sequence[typing.Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Numbers are right-aligned and formatted to a sensible precision;
    everything else is left-aligned.
    """
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    columns = len(headers)
    for row in rendered_rows:
        if len(row) != columns:
            raise ValueError(f"row {row} has {len(row)} cells; "
                             f"expected {columns}")
    widths = [max(len(headers[c]), *(len(r[c]) for r in rendered_rows))
              if rendered_rows else len(headers[c])
              for c in range(columns)]
    numeric = [all(_is_numeric(row[c]) for row in rows) if rows else False
               for c in range(columns)]

    def line(cells: typing.Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            parts.append(cell.rjust(widths[c]) if numeric[c]
                         else cell.ljust(widths[c]))
        return "  ".join(parts).rstrip()

    separator = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(separator)
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


def format_histogram(histogram: "LatencyHistogram", title: str = "",
                     max_rows: int = 14, width: int = 40) -> str:
    """Render a latency histogram as an ASCII bar chart (values in ms).

    Populated log-buckets are coalesced into at most *max_rows* display
    bands; each row shows the band's latency range, count, share, and
    cumulative share, so the tail is readable at a glance.
    """
    from repro.units import MS

    lines = [title] if title else []
    if histogram.total == 0:
        lines.append("(no samples)")
        return "\n".join(lines)
    buckets = list(histogram.nonzero_buckets())
    per_band = max(1, -(-len(buckets) // max_rows))
    bands = []
    for start in range(0, len(buckets), per_band):
        group = buckets[start:start + per_band]
        low = max(group[0][0], histogram.min)
        high = min(group[-1][1], histogram.max)
        bands.append((low, high, sum(count for _, _, count in group)))
    peak = max(count for _, _, count in bands)
    cumulative = 0
    for low, high, count in bands:
        cumulative += count
        bar = "#" * max(1, round(width * count / peak))
        lines.append(
            f"  {low / MS:>10.3f} – {high / MS:<10.3f} ms "
            f"{count:>8,}  {count / histogram.total:6.1%} "
            f"{cumulative / histogram.total:6.1%}  {bar}")
    quantiles = " | ".join(
        f"p{q:g} {histogram.percentile(q) / MS:.2f}"
        for q in (50, 90, 99, 99.9))
    lines.append(f"  {histogram.total:,} samples, "
                 f"{histogram.resolution:.0%} buckets: {quantiles} | "
                 f"max {histogram.max / MS:.2f} ms")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
