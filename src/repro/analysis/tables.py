"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

import typing

__all__ = ["format_table"]


def format_table(headers: typing.Sequence[str],
                 rows: typing.Sequence[typing.Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Numbers are right-aligned and formatted to a sensible precision;
    everything else is left-aligned.
    """
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    columns = len(headers)
    for row in rendered_rows:
        if len(row) != columns:
            raise ValueError(f"row {row} has {len(row)} cells; "
                             f"expected {columns}")
    widths = [max(len(headers[c]), *(len(r[c]) for r in rendered_rows))
              if rendered_rows else len(headers[c])
              for c in range(columns)]
    numeric = [all(_is_numeric(row[c]) for row in rows) if rows else False
               for c in range(columns)]

    def line(cells: typing.Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            parts.append(cell.rjust(widths[c]) if numeric[c]
                         else cell.ljust(widths[c]))
        return "  ".join(parts).rstrip()

    separator = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(separator)
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
