"""Reporting helpers: render experiment results as the paper does.

The benchmark harness uses these to print, for every table and figure of
the paper, the same rows/series the paper reports — ASCII tables for
Tables 1-5, labelled series for the figures — so a run's output can be
compared against the published artifact side by side.
"""

from repro.analysis.tables import format_histogram, format_table
from repro.analysis.cluster import format_cluster_report
from repro.analysis.figures import format_series, normalize
from repro.analysis.stats import SeedSummary, compare, summarize
from repro.analysis.gantt import render_gantt

__all__ = ["SeedSummary", "compare", "format_cluster_report",
           "format_histogram", "format_series", "format_table", "normalize",
           "render_gantt", "summarize"]
