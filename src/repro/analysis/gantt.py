"""ASCII timeline view of an executed plan.

Renders what the paper's Figures 7-9 sketch: the execution stream's
busy/stall alternation and each PCIe lane's transfer window, on a shared
time axis — handy for eyeballing *where* a plan stalls and what DHA or
parallel transmission changed.

Requires a result produced with ``detailed_traces=True`` (the default
for single inferences).
"""

from __future__ import annotations

from repro.core.plan import ExecMethod
from repro.engine.executor import ExecutionResult
from repro.units import MS

__all__ = ["render_gantt"]

BUSY = "#"
STALL = "."
DHA = "x"
TRANSFER = "="
IDLE = " "


def render_gantt(result: ExecutionResult, width: int = 72) -> str:
    """Render one execution as aligned per-lane timelines."""
    if width < 16:
        raise ValueError(f"width must be >= 16, got {width}")
    if not result.layer_traces:
        raise ValueError(
            "gantt rendering needs per-layer traces; execute the plan "
            "with detailed_traces=True")
    span = result.finished_at - result.started_at
    if span <= 0:
        raise ValueError("result covers no time")

    def column(t: float) -> int:
        fraction = (t - result.started_at) / span
        return min(width - 1, max(0, int(fraction * width)))

    lanes: dict[str, list[str]] = {}

    exec_lane = [IDLE] * width
    for trace in result.layer_traces:
        if trace.stall > 0:
            for c in range(column(trace.start - trace.stall),
                           column(trace.start) + 1):
                exec_lane[c] = STALL
        mark = DHA if (trace.method is ExecMethod.DHA
                       and result.plan.model.layers[trace.index].loadable) \
            else BUSY
        for c in range(column(trace.start), column(trace.end) + 1):
            exec_lane[c] = mark
    lanes[f"exec gpu{result.primary_gpu}"] = exec_lane

    for gpu_index in sorted(result.lane_span):
        start, end = result.lane_span[gpu_index]
        lane = [IDLE] * width
        for c in range(column(start), column(end) + 1):
            lane[c] = TRANSFER
        lanes[f"pcie gpu{gpu_index}"] = lane

    label_width = max(len(label) for label in lanes)
    lines = [
        f"timeline: 0.00 .. {span / MS:.2f} ms "
        f"({BUSY} exec, {DHA} dha exec, {STALL} stall, {TRANSFER} transfer)",
    ]
    for label, lane in lanes.items():
        lines.append(f"{label.ljust(label_width)} |{''.join(lane)}|")
    return "\n".join(lines)
