"""Render a cluster run's report: fleet summary plus per-machine rows."""

from __future__ import annotations

import typing

from repro.analysis.tables import format_table
from repro.units import MS

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import ClusterReport

__all__ = ["format_cluster_report"]


def format_cluster_report(report: "ClusterReport") -> str:
    """A human-readable breakdown of one cluster run."""
    summary = report.summary()
    shed = f", {len(report.shed)} shed" if report.shed else ""
    lines = [
        f"cluster: {report.submitted} submitted, {report.completed} "
        f"completed, {len(report.dropped)} dropped{shed}, {report.retries} "
        f"retries over {report.duration:.2f} s",
    ]
    if report.degraded_cold_starts or report.aborted_provisions:
        lines.append(
            f"  degraded: {report.aborted_provisions} provision(s) aborted, "
            f"{report.degraded_cold_starts} cold start(s) served on the "
            f"fallback plan")
    if report.metrics.records:
        lines.append(
            f"  p99 {summary['p99_ms']:.2f} ms | goodput "
            f"{summary['goodput']:.3f} | cold-start rate "
            f"{summary['cold_start_rate']:.3f}")
        hist = report.metrics.histogram
        lines.append(
            "  latency histogram (ms): "
            + " | ".join(f"p{q:g} {hist.percentile(q) / MS:.2f}"
                         for q in (50, 90, 99, 99.9))
            + f" | max {hist.max / MS:.2f}")
    rows = []
    for stats in report.per_machine:
        rows.append([
            stats.name,
            stats.state,
            stats.served,
            f"{stats.p99 / MS:.2f}" if stats.p99 is not None else "-",
            f"{stats.cold_start_rate:.3f}",
            f"{stats.utilization:.3f}",
            stats.crashes,
        ])
    lines.append(format_table(
        ["machine", "state", "served", "p99 (ms)", "cold rate",
         "util", "crashes"], rows))
    if report.fault_log:
        applied = sum(1 for _, ok in report.fault_log if ok)
        lines.append(f"  faults: {applied}/{len(report.fault_log)} "
                     f"schedule entries applied")
        for event, ok in report.fault_log:
            marker = "" if ok else " (skipped)"
            lines.append(f"    t={event.time:8.2f}  {event.action:7s} "
                         f"{event.target}{marker}")
    if report.scaling_events:
        lines.append(f"  autoscaler: {len(report.scaling_events)} action(s)")
        for event in report.scaling_events:
            lines.append(f"    t={event.time:8.2f}  {event.action:10s} "
                         f"{event.machine_name}  "
                         f"(p99 {event.p99 / MS:.1f} ms)")
    return "\n".join(lines)
