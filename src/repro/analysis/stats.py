"""Small statistics helpers for multi-seed experiment summaries.

Serving results are stochastic (Poisson arrivals, random instance
targeting); when a claim is close, run the experiment across seeds and
report mean +/- spread instead of a single draw.
"""

from __future__ import annotations

import dataclasses
import math
import typing

__all__ = ["SeedSummary", "summarize", "compare"]


@dataclasses.dataclass(frozen=True)
class SeedSummary:
    """Aggregate of one metric across seeds."""

    samples: tuple[float, ...]
    mean: float
    stddev: float
    minimum: float
    maximum: float

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def stderr(self) -> float:
        return self.stddev / math.sqrt(len(self.samples))

    def __str__(self) -> str:
        return (f"{self.mean:.4g} +/- {self.stddev:.2g} "
                f"(n={self.count}, range [{self.minimum:.4g}, "
                f"{self.maximum:.4g}])")


def summarize(samples: typing.Iterable[float]) -> SeedSummary:
    """Mean/stddev/min/max of a sample list (sample stddev, n-1)."""
    values = tuple(float(s) for s in samples)
    if not values:
        raise ValueError("no samples to summarize")
    mean = sum(values) / len(values)
    if len(values) > 1:
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    else:
        variance = 0.0
    return SeedSummary(samples=values, mean=mean, stddev=math.sqrt(variance),
                       minimum=min(values), maximum=max(values))


def compare(a: typing.Iterable[float], b: typing.Iterable[float],
            margin_stderrs: float = 2.0) -> int:
    """Crude separation test between two sample sets.

    Returns -1 if ``a``'s mean is below ``b``'s by more than
    ``margin_stderrs`` combined standard errors, +1 for the reverse, and
    0 when the difference is within noise.
    """
    sa, sb = summarize(a), summarize(b)
    margin = margin_stderrs * math.sqrt(sa.stderr ** 2 + sb.stderr ** 2)
    if sa.mean < sb.mean - margin:
        return -1
    if sa.mean > sb.mean + margin:
        return 1
    return 0
