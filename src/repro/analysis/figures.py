"""Series rendering for figure-style benchmark output."""

from __future__ import annotations

import typing

__all__ = ["format_series", "normalize"]


def normalize(values: typing.Sequence[float],
              reference: float) -> list[float]:
    """Speedups relative to *reference* (the paper normalizes to Baseline)."""
    if reference <= 0:
        raise ValueError(f"reference must be positive, got {reference}")
    return [reference / v for v in values]


def format_series(x_label: str, x_values: typing.Sequence[object],
                  series: dict[str, typing.Sequence[float]],
                  title: str = "", value_format: str = "{:.3f}") -> str:
    """Render multiple named series against a shared x-axis.

    Output shape mirrors a figure's underlying data table::

        x      seriesA   seriesB
        1      0.911     1.000
        ...
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_values)} x points")
    headers = [x_label] + list(series)
    width = {h: max(len(h), 10) for h in headers}
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(width[h]) for h in headers).rstrip())
    out.append("  ".join("-" * width[h] for h in headers))
    for i, x in enumerate(x_values):
        cells = [str(x).ljust(width[x_label])]
        for name, values in series.items():
            cells.append(value_format.format(values[i]).rjust(width[name]))
        out.append("  ".join(cells).rstrip())
    return "\n".join(out)
