"""Model instances: one deployed tenant of the serving system.

The paper's serving experiments deploy many *instances* of a few model
architectures ("each instance mimics a model corresponding to a different
user or service", Section 5.3.1).  Instances share nothing at runtime —
each has its own parameters in pinned host memory and its own residency
state on its home GPU.
"""

from __future__ import annotations

import dataclasses

from repro.core.plan import ExecutionPlan

__all__ = ["ModelInstance"]


@dataclasses.dataclass
class ModelInstance:
    """One deployed model instance and its provisioning plan."""

    #: Unique name, e.g. ``bert-base#17``.
    name: str
    #: The cold-start plan (also defines warm execution: DHA layers keep
    #: reading host memory on every inference).
    plan: ExecutionPlan
    #: The GPU this instance is homed on.
    home_gpu: int
    #: Whether the loaded layers are currently resident on the home GPU.
    resident: bool = False
    #: Plan the instance is *currently* provisioned under.  ``None`` means
    #: the primary ``plan``; the server sets the degraded fallback here
    #: when a parallel provision aborts mid-flight, and eviction clears it
    #: (the next cold start retries the primary plan).
    active_plan: ExecutionPlan | None = None

    @property
    def model_name(self) -> str:
        return self.plan.model.name

    @property
    def current_plan(self) -> ExecutionPlan:
        return self.active_plan if self.active_plan is not None else self.plan

    @property
    def degraded(self) -> bool:
        return self.active_plan is not None

    @property
    def gpu_bytes(self) -> int:
        """GPU memory the instance occupies while resident."""
        return self.current_plan.gpu_resident_bytes

    def __str__(self) -> str:
        state = "resident" if self.resident else "cold"
        if self.degraded:
            state += ", degraded"
        return f"{self.name}@gpu{self.home_gpu} ({state})"
