"""Serving metrics: tail latency, goodput, cold-start accounting.

The paper's serving figures report three quantities (Figures 13-15):

* **99 % latency** — request latency (arrival to completion) percentile;
* **goodput** — the fraction of requests finishing within the SLO
  (100 ms unless stated otherwise);
* **cold-start rate** — the fraction of requests that had to provision
  their model first.

:class:`MetricsCollector` records every completed request and produces
both aggregate numbers and per-window time series (Figure 15 plots
minute-by-minute curves over a 3-hour trace).
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.units import MS

__all__ = ["RequestRecord", "MetricsCollector", "WindowStats"]

DEFAULT_SLO = 100 * MS


@dataclasses.dataclass(frozen=True)
class RequestRecord:
    """Everything remembered about one completed request."""

    request_id: int
    instance_name: str
    arrival_time: float
    started_at: float
    finished_at: float
    cold_start: bool

    @property
    def latency(self) -> float:
        return self.finished_at - self.arrival_time

    @property
    def queueing_delay(self) -> float:
        return self.started_at - self.arrival_time


@dataclasses.dataclass(frozen=True)
class WindowStats:
    """Aggregates for one time window of the trace."""

    window_start: float
    num_requests: int
    p99_latency: float
    goodput: float
    cold_start_rate: float


class MetricsCollector:
    """Accumulates request records and summarizes them."""

    def __init__(self, slo: float = DEFAULT_SLO) -> None:
        if slo <= 0:
            raise ValueError(f"SLO must be positive, got {slo}")
        self.slo = slo
        self.records: list[RequestRecord] = []

    def record(self, record: RequestRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- aggregates ---------------------------------------------------------------

    def _latencies(self) -> numpy.ndarray:
        return numpy.array([r.latency for r in self.records])

    def percentile(self, q: float) -> float:
        """Latency percentile (q in [0, 100])."""
        if not self.records:
            raise ValueError("no requests recorded")
        return float(numpy.percentile(self._latencies(), q))

    @property
    def p99_latency(self) -> float:
        return self.percentile(99.0)

    @property
    def p50_latency(self) -> float:
        return self.percentile(50.0)

    @property
    def mean_latency(self) -> float:
        if not self.records:
            raise ValueError("no requests recorded")
        return float(self._latencies().mean())

    @property
    def goodput(self) -> float:
        """Fraction of requests completed within the SLO."""
        if not self.records:
            raise ValueError("no requests recorded")
        return float((self._latencies() <= self.slo).mean())

    @property
    def cold_start_rate(self) -> float:
        if not self.records:
            raise ValueError("no requests recorded")
        return sum(r.cold_start for r in self.records) / len(self.records)

    @property
    def cold_start_count(self) -> int:
        return sum(r.cold_start for r in self.records)

    @property
    def throughput(self) -> float:
        """Completed requests per second over the observed span."""
        if not self.records:
            raise ValueError("no requests recorded")
        span = (max(r.finished_at for r in self.records)
                - min(r.arrival_time for r in self.records))
        return len(self.records) / span if span > 0 else float("inf")

    # -- time series (Figure 15) -----------------------------------------------------

    def windows(self, window_seconds: float = 60.0) -> list[WindowStats]:
        """Per-window statistics over the trace, by arrival time."""
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        if not self.records:
            return []
        buckets: dict[int, list[RequestRecord]] = {}
        for record in self.records:
            buckets.setdefault(int(record.arrival_time // window_seconds),
                               []).append(record)
        stats = []
        for index in sorted(buckets):
            group = buckets[index]
            latencies = numpy.array([r.latency for r in group])
            stats.append(WindowStats(
                window_start=index * window_seconds,
                num_requests=len(group),
                p99_latency=float(numpy.percentile(latencies, 99)),
                goodput=float((latencies <= self.slo).mean()),
                cold_start_rate=sum(r.cold_start for r in group) / len(group),
            ))
        return stats

    # -- reporting --------------------------------------------------------------------

    def summary(self) -> dict[str, float]:
        return {
            "requests": float(len(self.records)),
            "p50_ms": self.p50_latency / MS,
            "p99_ms": self.p99_latency / MS,
            "goodput": self.goodput,
            "cold_start_rate": self.cold_start_rate,
        }


def merge(collectors: typing.Iterable[MetricsCollector],
          slo: float = DEFAULT_SLO) -> MetricsCollector:
    """Combine several collectors into one (e.g., per-GPU collectors)."""
    merged = MetricsCollector(slo=slo)
    for collector in collectors:
        for record in collector.records:
            merged.record(record)
    return merged
