"""Synthetic Microsoft-Azure-Functions-like trace (paper Figure 15).

The paper replays a scaled-down Microsoft Azure Functions (MAF) trace
[Shahrad et al., ATC'20], treating each function invocation as an
inference request on the model mapped to that function.  The trace is not
redistributable here, so this module synthesizes one with the properties
the paper calls out (Section 5.3.2): "heavy sustained requests,
fluctuations in request rates, and spikes in requests", plus the heavy
tail of rarely invoked functions that makes cold-starts unavoidable.

Instance behaviours:

* **sustained** — near-constant rate (the MAF head: a few functions
  dominate total invocations);
* **fluctuating** — sinusoidal rate with random period/phase (diurnal /
  periodic triggers);
* **spiky** — low base rate with Poisson-arriving burst episodes of
  large amplitude;
* **rare** — the long tail, invoked sporadically (these drive the
  cold-start behaviour).

Popularity across instances within each class is Zipf-distributed, and
the whole trace is normalized so the mean aggregate rate matches the
configured requests-per-second.
"""

from __future__ import annotations

import dataclasses
import math
import typing

import numpy

from repro.errors import WorkloadError

__all__ = ["MAFTraceConfig", "SyntheticTrace", "synthesize_maf_trace"]


@dataclasses.dataclass(frozen=True)
class MAFTraceConfig:
    """Knobs of the synthetic trace generator."""

    duration: float = 3 * 3600.0  # the paper replays 3 hours
    target_rps: float = 150.0     # the paper stresses with 150 req/s
    #: Rate-curve resolution; arrivals are thinned per bucket.
    bucket_seconds: float = 10.0
    #: Fractions of instances per behaviour class (rest become "rare").
    sustained_fraction: float = 0.10
    fluctuating_fraction: float = 0.35
    spiky_fraction: float = 0.20
    #: Zipf exponent for the popularity skew.
    zipf_exponent: float = 0.9
    #: Mean number of spike episodes per spiky instance per hour.
    spikes_per_hour: float = 1.5
    #: Spike amplitude as a multiple of the instance's base rate.
    spike_amplitude: float = 25.0
    spike_duration: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.target_rps <= 0:
            raise WorkloadError("duration and target_rps must be positive")
        total = (self.sustained_fraction + self.fluctuating_fraction
                 + self.spiky_fraction)
        if total > 1.0 + 1e-9:
            raise WorkloadError(f"class fractions sum to {total} > 1")


@dataclasses.dataclass
class SyntheticTrace:
    """The generated trace plus its per-bucket offered load."""

    config: MAFTraceConfig
    arrivals: list[tuple[float, str]]
    #: Offered load (req/s) per bucket — the top panel of Figure 15.
    bucket_times: numpy.ndarray
    offered_load: numpy.ndarray
    #: Behaviour class of each instance, for inspection.
    instance_classes: dict[str, str]

    @property
    def num_requests(self) -> int:
        return len(self.arrivals)

    @property
    def mean_rps(self) -> float:
        return self.num_requests / self.config.duration


def synthesize_maf_trace(instance_names: typing.Sequence[str],
                         config: MAFTraceConfig = MAFTraceConfig()
                         ) -> SyntheticTrace:
    """Generate a synthetic MAF-like trace over *instance_names*."""
    if not instance_names:
        raise WorkloadError("need at least one instance")
    rng = numpy.random.default_rng(config.seed)
    names = list(instance_names)
    classes = _assign_classes(len(names), config, rng)

    n_buckets = max(1, math.ceil(config.duration / config.bucket_seconds))
    bucket_times = numpy.arange(n_buckets) * config.bucket_seconds

    weights = _zipf_weights(len(names), config.zipf_exponent, rng)
    rates = numpy.zeros((len(names), n_buckets))
    for i, klass in enumerate(classes):
        rates[i] = weights[i] * _rate_curve(klass, bucket_times, config, rng)

    # Normalize the aggregate mean to the configured requests/second.
    mean_total = rates.sum(axis=0).mean()
    rates *= config.target_rps / mean_total

    arrivals = _thin_arrivals(names, rates, config, rng)
    offered = rates.sum(axis=0)
    return SyntheticTrace(
        config=config,
        arrivals=arrivals,
        bucket_times=bucket_times,
        offered_load=offered,
        instance_classes={name: klass for name, klass in zip(names, classes)},
    )


def _assign_classes(count: int, config: MAFTraceConfig,
                    rng: numpy.random.Generator) -> list[str]:
    n_sustained = round(count * config.sustained_fraction)
    n_fluct = round(count * config.fluctuating_fraction)
    n_spiky = round(count * config.spiky_fraction)
    classes = (["sustained"] * n_sustained + ["fluctuating"] * n_fluct
               + ["spiky"] * n_spiky)
    classes += ["rare"] * (count - len(classes))
    classes = classes[:count]
    rng.shuffle(classes)
    return classes


def _zipf_weights(count: int, exponent: float,
                  rng: numpy.random.Generator) -> numpy.ndarray:
    ranks = rng.permutation(count) + 1
    return 1.0 / numpy.power(ranks.astype(float), exponent)


def _rate_curve(klass: str, bucket_times: numpy.ndarray,
                config: MAFTraceConfig,
                rng: numpy.random.Generator) -> numpy.ndarray:
    """Unnormalized per-bucket rate for one instance of class *klass*."""
    n = len(bucket_times)
    if klass == "sustained":
        jitter = rng.normal(1.0, 0.05, size=n).clip(0.7, 1.3)
        return 3.0 * jitter
    if klass == "fluctuating":
        period = rng.uniform(15 * 60, 90 * 60)
        phase = rng.uniform(0, 2 * math.pi)
        wave = 1.0 + 0.7 * numpy.sin(2 * math.pi * bucket_times / period + phase)
        return 1.5 * wave.clip(min=0.05)
    if klass == "spiky":
        base = numpy.full(n, 0.3)
        duration = max(config.bucket_seconds, config.spike_duration)
        expected = config.spikes_per_hour * (bucket_times[-1] + 1) / 3600.0
        for _ in range(rng.poisson(max(expected, 0.1))):
            start = rng.uniform(0, bucket_times[-1])
            in_spike = ((bucket_times >= start)
                        & (bucket_times < start + duration))
            base[in_spike] += 0.3 * config.spike_amplitude
        return base
    if klass == "rare":
        return numpy.full(n, 0.08)
    raise WorkloadError(f"unknown instance class {klass!r}")


def _thin_arrivals(names: list[str], rates: numpy.ndarray,
                   config: MAFTraceConfig,
                   rng: numpy.random.Generator) -> list[tuple[float, str]]:
    """Piecewise-constant Poisson thinning: counts per (instance, bucket)."""
    arrivals: list[tuple[float, str]] = []
    dt = config.bucket_seconds
    counts = rng.poisson(rates * dt)
    for i, name in enumerate(names):
        buckets = numpy.nonzero(counts[i])[0]
        for b in buckets:
            start = b * dt
            times = start + rng.uniform(0, dt, size=counts[i][b])
            arrivals.extend((float(t), name) for t in times
                            if t < config.duration)
    arrivals.sort(key=lambda item: item[0])
    return arrivals
