"""Instance residency cache with pluggable eviction policies.

When GPU memory cannot fit a newly requested instance, the paper evicts
the least recently used instance (Section 5.3.1) — eviction is
bookkeeping only, since every instance keeps a pinned host copy.  LRU is
the default; LFU, FIFO and seeded-random policies are provided for the
eviction-policy ablation (`benchmarks/bench_ablation_eviction.py`).
"""

from __future__ import annotations

import collections
import typing

import numpy

from repro.errors import OutOfGPUMemoryError
from repro.hw.memory import GPUMemory
from repro.serving.instance import ModelInstance

__all__ = ["InstanceCache", "LRUInstanceCache", "EVICTION_POLICIES"]

EVICTION_POLICIES = ("lru", "lfu", "fifo", "random")


class InstanceCache:
    """Tracks which instances are resident on one GPU."""

    def __init__(self, memory: GPUMemory, policy: str = "lru",
                 seed: int = 0) -> None:
        if policy not in EVICTION_POLICIES:
            raise ValueError(f"unknown eviction policy {policy!r}; "
                             f"options: {', '.join(EVICTION_POLICIES)}")
        self.memory = memory
        self.policy = policy
        self.evictions = 0
        # Recency order (least recently used first) doubles as FIFO
        # insertion order when touch() skips reordering.
        self._order: collections.OrderedDict[str, ModelInstance] = \
            collections.OrderedDict()
        self._frequency: collections.Counter[str] = collections.Counter()
        self._rng = numpy.random.default_rng(seed)

    # -- queries ---------------------------------------------------------------

    def __contains__(self, instance: ModelInstance) -> bool:
        return instance.name in self._order

    def __len__(self) -> int:
        return len(self._order)

    @property
    def resident_names(self) -> tuple[str, ...]:
        """Resident instance names in eviction-candidate order."""
        return tuple(self._order)

    # -- operations ----------------------------------------------------------------

    def touch(self, instance: ModelInstance) -> None:
        """Record a hit (call on every warm request)."""
        if instance.name not in self._order:
            raise KeyError(f"{instance.name} is not resident")
        self._frequency[instance.name] += 1
        if self.policy == "lru":
            self._order.move_to_end(instance.name)

    def admit(self, instance: ModelInstance) -> list[ModelInstance]:
        """Make room for and admit *instance*; returns evicted instances.

        Raises :class:`OutOfGPUMemoryError` if the instance cannot fit
        even on an otherwise empty GPU.
        """
        if instance.name in self._order:
            raise ValueError(f"{instance.name} is already resident")
        evicted = []
        while not self.memory.fits(instance.gpu_bytes):
            if not self._order:
                raise OutOfGPUMemoryError(
                    instance.gpu_bytes, self.memory.available_bytes,
                    self.memory.device)
            evicted.append(self._evict_victim())
        self.memory.reserve(instance.name, instance.gpu_bytes)
        self._order[instance.name] = instance
        self._frequency[instance.name] += 1
        instance.resident = True
        return evicted

    def _select_victim(self) -> str:
        if self.policy in ("lru", "fifo"):
            return next(iter(self._order))
        if self.policy == "lfu":
            return min(self._order,
                       key=lambda name: (self._frequency[name], name))
        names = tuple(self._order)
        return names[int(self._rng.integers(len(names)))]

    def _evict_victim(self) -> ModelInstance:
        name = self._select_victim()
        victim = self._order.pop(name)
        self.memory.release(name)
        victim.resident = False
        # Evicting a degraded-resident instance resets it to the primary
        # plan: the next cold start retries full parallel transmission.
        victim.active_plan = None
        self.evictions += 1
        return victim

    def evict(self, instance: ModelInstance) -> None:
        """Explicitly evict one instance (e.g., decommissioning)."""
        if instance.name not in self._order:
            raise KeyError(f"{instance.name} is not resident")
        del self._order[instance.name]
        self.memory.release(instance.name)
        instance.resident = False
        instance.active_plan = None
        self.evictions += 1

    def prewarm(self, instances: typing.Iterable[ModelInstance]) -> int:
        """Admit instances (in order) until the GPU is full; returns count.

        Models the paper's warm-up phase before measurement begins.
        """
        admitted = 0
        for instance in instances:
            if instance.name in self._order:
                continue
            if not self.memory.fits(instance.gpu_bytes):
                break
            self.memory.reserve(instance.name, instance.gpu_bytes)
            self._order[instance.name] = instance
            instance.resident = True
            admitted += 1
        return admitted


class LRUInstanceCache(InstanceCache):
    """The paper's policy: least-recently-used eviction."""

    def __init__(self, memory: GPUMemory) -> None:
        super().__init__(memory, policy="lru")
