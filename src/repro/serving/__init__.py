"""The DL inference serving system (paper Section 5.3).

A Clockwork-style multi-GPU server: each GPU executes one inference at a
time; model *instances* (one per tenant/service) are statically homed on
GPUs; when a request arrives for an instance that is not resident, the
least-recently-used instances are evicted and the model is provisioned
with the configured strategy (PipeSwitch pipelining or a DeepPlan plan —
optionally borrowing the cross-switch partner GPU's PCIe lane for
parallel transmission).

Workloads: Poisson arrivals uniformly spread over instances (Figures 13
and 14) and a synthetic Microsoft-Azure-Functions-like trace with heavy
sustained functions, rate fluctuations, and spikes (Figure 15).

Everything runs in simulated time on the same machine model the engine
uses, so serving traffic, DHA reads, and cold-start transmissions all
contend on the same PCIe links.
"""

from repro.serving.instance import ModelInstance
from repro.serving.cache import InstanceCache, LRUInstanceCache
from repro.serving.workload import PoissonWorkload, Request, TraceWorkload
from repro.serving.maf import MAFTraceConfig, synthesize_maf_trace
from repro.serving.histogram import LatencyHistogram, merge_histograms
from repro.serving.metrics import (MIN_TAIL_COUNT, MetricsCollector,
                                   RequestRecord, WindowStats)
from repro.serving.server import InferenceServer, ServerConfig, ServingReport

__all__ = [
    "InferenceServer",
    "InstanceCache",
    "LatencyHistogram",
    "LRUInstanceCache",
    "MAFTraceConfig",
    "MetricsCollector",
    "MIN_TAIL_COUNT",
    "merge_histograms",
    "ModelInstance",
    "PoissonWorkload",
    "Request",
    "RequestRecord",
    "ServerConfig",
    "ServingReport",
    "TraceWorkload",
    "WindowStats",
    "synthesize_maf_trace",
]
