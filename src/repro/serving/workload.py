"""Workload generators: request streams for the serving experiments.

:class:`PoissonWorkload` reproduces the synthetic setup of paper
Section 5.3.1: a fixed aggregate request rate with exponential
inter-arrival times, each request targeting an instance chosen uniformly
at random.  :class:`TraceWorkload` replays an explicit arrival list
(e.g., one produced by :mod:`repro.serving.maf`).
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.errors import WorkloadError

__all__ = ["Request", "PoissonWorkload", "TraceWorkload"]


@dataclasses.dataclass
class Request:
    """One inference request.

    Time convention: ``arrival_time`` is *relative* to the start of the
    run that serves the request (workload generators emit offsets from
    zero).  All other timestamps are *absolute* simulator times —
    ``submitted_at`` is stamped by the server as
    ``run-start + arrival_time``, so latency math stays correct when
    ``InferenceServer.run()`` begins at ``sim.now > 0`` (e.g.,
    back-to-back runs on one simulator).

    ``batch_size`` must match the batch size of the execution plan the
    target instance was deployed with; the server rejects mismatches at
    submission (plans are specialized per batch size).
    """

    request_id: int
    instance_name: str
    arrival_time: float
    batch_size: int = 1
    #: Traffic/tenant QoS class (stamped by the load generator;
    #: "standard" for plain trace replay).
    qos: str = "standard"
    #: Filled in by the server as the request moves through the system
    #: (absolute simulator times).
    submitted_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    cold_start: bool = False

    @property
    def latency(self) -> float:
        if self.finished_at is None:
            raise WorkloadError(f"request {self.request_id} not finished")
        if self.submitted_at is None:
            raise WorkloadError(f"request {self.request_id} never submitted")
        return self.finished_at - self.submitted_at


class PoissonWorkload:
    """Poisson arrivals at ``rate`` req/s over uniformly random instances."""

    def __init__(self, instance_names: typing.Sequence[str], rate: float,
                 num_requests: int, seed: int = 0) -> None:
        if rate <= 0:
            raise WorkloadError(f"rate must be positive, got {rate}")
        if num_requests < 1:
            raise WorkloadError(f"need at least one request, got {num_requests}")
        if not instance_names:
            raise WorkloadError("need at least one instance")
        self.instance_names = list(instance_names)
        self.rate = rate
        self.num_requests = num_requests
        self.seed = seed

    def generate(self) -> list[Request]:
        """Materialize the request list (deterministic per seed)."""
        rng = numpy.random.default_rng(self.seed)
        gaps = rng.exponential(1.0 / self.rate, size=self.num_requests)
        arrivals = numpy.cumsum(gaps)
        targets = rng.integers(0, len(self.instance_names),
                               size=self.num_requests)
        return [Request(request_id=i,
                        instance_name=self.instance_names[int(t)],
                        arrival_time=float(at))
                for i, (at, t) in enumerate(zip(arrivals, targets))]


class TraceWorkload:
    """Replay an explicit (time, instance) arrival list."""

    def __init__(self, arrivals: typing.Sequence[tuple[float, str]]) -> None:
        if not arrivals:
            raise WorkloadError("trace is empty")
        ordered = sorted(arrivals, key=lambda item: item[0])
        self.arrivals = ordered

    @property
    def duration(self) -> float:
        return self.arrivals[-1][0]

    @property
    def num_requests(self) -> int:
        return len(self.arrivals)

    def generate(self) -> list[Request]:
        return [Request(request_id=i, instance_name=name, arrival_time=time)
                for i, (time, name) in enumerate(self.arrivals)]
