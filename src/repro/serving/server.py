"""The inference server: dispatch, workers, cold-start provisioning.

Execution discipline follows the paper (Section 5.3): each GPU runs one
inference at a time (as in Clockwork); every instance has a *home* GPU
(instances are spread round-robin); requests queue FIFO at their home
GPU.  On a miss, the worker evicts least-recently-used instances until
the model fits, then provisions it with the configured strategy — for
parallel transmission the home GPU borrows the PCIe lane of its
cross-switch NVLink partner, which may simultaneously be serving its own
requests (the interference the paper measures in Table 4).

Warm-up: before measurement, instances are admitted in round-robin order
until every GPU is full, mirroring the paper's warm-up phase.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.deepplan import DeepPlan, Strategy
from repro.core.plan import ExecutionPlan
from repro.core.validate import validate_plan_on_machine
from repro.engine.executor import (
    plan_generator,
    warm_generator,
    warm_segments,
)
from repro.errors import WorkloadError
from repro.hw.machine import Machine
from repro.models.graph import ModelSpec
from repro.serving.cache import InstanceCache
from repro.serving.instance import ModelInstance
from repro.serving.metrics import DEFAULT_SLO, MetricsCollector, RequestRecord
from repro.serving.workload import Request
from repro.simkit import Event, Interrupt, Link, Process, Store

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.audit import ServingAuditor

__all__ = ["ServerConfig", "InferenceServer", "ServingReport"]


HOMING_POLICIES = ("round-robin", "least-loaded")


@dataclasses.dataclass(frozen=True)
class ServerConfig:
    """Serving-system configuration."""

    strategy: "Strategy | str" = Strategy.PT_DHA
    slo: float = DEFAULT_SLO
    #: Admit instances round-robin until GPUs are full before measuring.
    prewarm: bool = True
    #: Victim selection when GPU memory runs out ("lru" is the paper's).
    eviction_policy: str = "lru"
    #: How deploy() assigns instances to home GPUs.
    homing: str = "round-robin"
    #: Enable the runtime invariant-audit layer (:mod:`repro.audit`):
    #: link conservation, memory reserve/release balance, drained queues,
    #: exactly-once request accounting.  ``run()`` raises
    #: :class:`~repro.audit.AuditError` on any violation.
    audit: bool = False
    #: Use the per-layer execution paths (full traces for cold starts,
    #: one event per layer when warm) instead of the coalesced fast
    #: paths.  Slow; for debugging and differential testing only.
    detailed_traces: bool = False
    #: Per-request deadline (seconds, measured from submission).  When
    #: set, submit() sheds requests whose predicted completion (queue
    #: backlog + provision/service time) already exceeds the deadline
    #: instead of letting them queue and blow the tail.  ``None`` (the
    #: default) disables shedding entirely.
    deadline: float | None = None
    #: Fraction of nominal bandwidth below which a link counts as too
    #: degraded for parallel transmission: in-flight provisions crossing
    #: it abort to the fallback plan, and peer selection avoids it.
    degraded_link_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.homing not in HOMING_POLICIES:
            raise WorkloadError(
                f"unknown homing policy {self.homing!r}; options: "
                f"{', '.join(HOMING_POLICIES)}")
        if self.deadline is not None and self.deadline <= 0:
            raise WorkloadError(
                f"deadline must be positive, got {self.deadline}")
        if not 0 < self.degraded_link_threshold <= 1:
            raise WorkloadError(
                f"degraded_link_threshold must be in (0, 1], got "
                f"{self.degraded_link_threshold}")


@dataclasses.dataclass
class ServingReport:
    """Outcome of one serving run."""

    metrics: MetricsCollector
    num_instances: int
    #: Instances resident after warm-up (the system's warm capacity).
    prewarmed: int
    evictions: int
    duration: float
    #: Planner plan-cache counters over the planner's lifetime (zero when
    #: the planner runs without a cache).
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Completed requests whose cold start ran on the degraded fallback
    #: plan after a device/link fault.
    degraded_cold_starts: int = 0
    #: Parallel provisions aborted mid-flight by a device/link fault.
    aborted_provisions: int = 0
    #: Requests shed at admission by the deadline guardrail.
    shed: int = 0

    def summary(self) -> dict[str, float]:
        data = self.metrics.summary()
        data.update(instances=float(self.num_instances),
                    prewarmed=float(self.prewarmed),
                    evictions=float(self.evictions),
                    plan_cache_hits=float(self.plan_cache_hits),
                    plan_cache_misses=float(self.plan_cache_misses))
        if self.degraded_cold_starts or self.aborted_provisions:
            data.update(degraded_cold_starts=float(self.degraded_cold_starts),
                        aborted_provisions=float(self.aborted_provisions))
        if self.shed:
            data.update(shed=float(self.shed))
        return data


class InferenceServer:
    """A multi-GPU model-serving system on one simulated machine."""

    def __init__(self, machine: Machine, planner: DeepPlan,
                 config: ServerConfig = ServerConfig()) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.planner = planner
        self.config = config
        self.strategy = Strategy.parse(config.strategy)
        self.metrics = MetricsCollector(slo=config.slo)
        self._instances: dict[str, ModelInstance] = {}
        self._caches = {gpu.index: InstanceCache(
            gpu.memory, policy=config.eviction_policy, seed=gpu.index)
            for gpu in machine.gpus}
        self._deployed_bytes = {gpu.index: 0 for gpu in machine.gpus}
        self._queues = {gpu.index: Store(self.sim, name=f"queue{gpu.index}")
                        for gpu in machine.gpus}
        self._plans: dict[str, ExecutionPlan] = {}
        self._secondaries = self._plan_secondaries()
        self._outstanding = 0
        self._drained: Event | None = None
        self._workers_started = False
        # -- lifecycle state (drain / crash / recover) --
        self._draining = False
        self._down = False
        #: Bumped on every fail_over(); in-flight executions from an older
        #: epoch finish silently (no metrics, no callbacks) — the cluster
        #: re-runs their requests elsewhere.
        self._epoch = 0
        self._drain_event: Event | None = None
        #: The request each GPU worker is currently executing.
        self._active: dict[int, Request] = {}
        self._completion_callbacks: list[
            typing.Callable[[Request, RequestRecord], None]] = []
        #: Called with each request orphaned by a crash race (popped from
        #: its queue but not yet started when the machine went down).
        self.on_orphan: typing.Callable[[Request], None] | None = None
        # -- device-fault / guardrail state (all idle unless enabled) --
        #: When True, parallel cold starts run as abortable child
        #: processes so a GPU/link fault mid-provision can interrupt them
        #: (see handle_gpu_failure / handle_link_degradation).  Off by
        #: default: the watch wrapper changes event scheduling order, and
        #: fault-free runs must stay bit-identical to the plain path.
        self.watch_device_faults = False
        #: Per-GPU fault epoch, bumped by handle_gpu_failure(); in-flight
        #: phantom executions from an older GPU epoch are discarded just
        #: like machine-crash phantoms.
        self._gpu_epochs = {gpu.index: 0 for gpu in machine.gpus}
        #: gpu -> (provision process, peer GPU set, links it depends on).
        self._provisions: dict[
            int, tuple["Process", frozenset[int], frozenset[Link]]] = {}
        #: Lazily built degraded (single-partition DHA) plans per model,
        #: used when the deployed plan carries no precomputed fallback.
        self._fallback_plans: dict[str, ExecutionPlan] = {}
        self.aborted_provisions = 0
        self.degraded_cold_starts = 0
        #: Called with each request completing a degraded cold start (the
        #: cluster trips its router circuit breaker here).
        self.on_degraded: typing.Callable[[Request], None] | None = None
        #: Requests shed at admission by the deadline guardrail, and the
        #: shed notification hook (the cluster accounts them as terminal).
        self.shed_requests: list[Request] = []
        self.on_shed: typing.Callable[[Request], None] | None = None
        #: Predicted-service backlog per GPU, maintained only when a
        #: deadline is configured (the admission-control signal).
        self._backlog = {gpu.index: 0.0 for gpu in machine.gpus}
        self._backlog_charge: dict[int, tuple[int, float]] = {}
        #: Where worker exceptions surface when no run() is in progress
        #: (the cluster points this at its own completion event).
        self.failure_event: Event | None = None
        #: Accumulated GPU busy time and completions across the server's
        #: lifetime (utilization accounting for cluster reports).
        self.busy_time = 0.0
        self.requests_served = 0
        self.auditor: "ServingAuditor | None" = None
        if config.audit:
            from repro.audit import ServingAuditor
            self.auditor = ServingAuditor(self)

    # -- deployment ----------------------------------------------------------------

    def deploy(self, models: typing.Sequence[tuple[ModelSpec, int]]
               ) -> list[ModelInstance]:
        """Deploy ``count`` instances of each model.

        Each instance's parameters are pinned in host memory (the
        substrate for both DMA loads and direct-host-access), so host RAM
        bounds total deployment.  Plans are generated once per
        architecture and shared by its instances.  Homing follows
        ``config.homing``: round-robin (the paper's setup) or
        least-loaded by deployed bytes.
        """
        created = []
        for model, count in models:
            if count < 1:
                raise WorkloadError(f"instance count must be >= 1, got {count}")
            existing = sum(1 for i in self._instances.values()
                           if i.model_name == model.name)
            for k in range(existing, existing + count):
                created.append(self.deploy_instance(model,
                                                    f"{model.name}#{k}"))
        return created

    def deploy_instance(self, model: ModelSpec, name: str) -> ModelInstance:
        """Deploy one instance under an explicit name.

        Cluster placement uses this so the *same* logical instance name
        (e.g. ``bert-base#3``) can exist as a replica on several machines.
        """
        if name in self._instances:
            raise WorkloadError(f"instance {name!r} already deployed")
        plan = self._plan_for(model)
        validate_plan_on_machine(plan, self.machine)
        self.machine.host.pin(name, model.param_bytes)
        instance = ModelInstance(name=name, plan=plan,
                                 home_gpu=self._choose_home(plan))
        self._instances[instance.name] = instance
        self._deployed_bytes[instance.home_gpu] += plan.gpu_resident_bytes
        return instance

    def undeploy(self, instance_name: str) -> None:
        """Decommission one instance: evict it and release its host pin."""
        try:
            instance = self._instances.pop(instance_name)
        except KeyError:
            raise WorkloadError(f"no deployed instance {instance_name!r}") \
                from None
        cache = self._caches[instance.home_gpu]
        if instance in cache:
            cache.evict(instance)
        self._deployed_bytes[instance.home_gpu] -= \
            instance.plan.gpu_resident_bytes
        self.machine.host.unpin(instance_name)

    def _choose_home(self, plan: ExecutionPlan) -> int:
        if self.config.homing == "least-loaded":
            return min(self._deployed_bytes, key=lambda gpu:
                       (self._deployed_bytes[gpu], gpu))
        counts: dict[int, int] = {gpu.index: 0 for gpu in self.machine.gpus}
        for instance in self._instances.values():
            counts[instance.home_gpu] += 1
        return min(counts, key=lambda gpu: (counts[gpu], gpu))

    def _plan_for(self, model: ModelSpec) -> ExecutionPlan:
        if model.name not in self._plans:
            self._plans[model.name] = self.planner.plan(model, self.strategy)
        return self._plans[model.name]

    def _plan_secondaries(self) -> dict[int, list[int]]:
        """Cross-switch NVLink partners used for parallel transmission."""
        partners = {}
        for gpu in self.machine.gpus:
            peers = self.machine.parallel_transmission_peers(gpu.index)
            partners[gpu.index] = peers
        return partners

    @property
    def instances(self) -> dict[str, ModelInstance]:
        return dict(self._instances)

    def warm_capacity(self) -> int:
        """How many deployed instances fit resident simultaneously."""
        return self._prewarm(dry_run=True)

    def plan_of(self, instance_name: str) -> ExecutionPlan:
        """The execution plan a deployed instance was provisioned with."""
        try:
            return self._instances[instance_name].plan
        except KeyError:
            raise WorkloadError(f"no deployed instance {instance_name!r}") \
                from None

    def is_warm(self, instance_name: str) -> bool:
        """Whether the instance is currently GPU-resident."""
        try:
            return self._instances[instance_name].resident
        except KeyError:
            raise WorkloadError(f"no deployed instance {instance_name!r}") \
                from None

    # -- lifecycle -------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Requests submitted but not yet completed (or orphaned)."""
        return self._outstanding

    @property
    def is_down(self) -> bool:
        return self._down

    @property
    def is_draining(self) -> bool:
        return self._draining

    def prewarm(self) -> int:
        """Admit instances until GPU memory is full; returns the count."""
        return self._prewarm()

    def start(self) -> None:
        """Start the per-GPU worker processes (idempotent).

        ``run()`` calls this implicitly; open-ended callers (the cluster)
        start workers once and then ``submit()`` at will.
        """
        self._start_workers()

    def drain(self) -> Event:
        """Stop accepting work; the event fires once in-flight work ends.

        Requests submitted after this point raise
        :class:`~repro.errors.WorkloadError` instead of silently queueing
        behind a server that will never pick them up.  ``resume()``
        reopens the server.
        """
        self._draining = True
        if self._drain_event is None:
            self._drain_event = self.sim.event(name="server-drain")
        if self._outstanding == 0 and not self._drain_event.triggered:
            self._drain_event.succeed()
        return self._drain_event

    def resume(self) -> None:
        """Accept work again after a drain()."""
        self._draining = False
        self._drain_event = None

    def fail_over(self) -> list[Request]:
        """Crash the machine: orphan all queued and in-flight requests.

        Queued requests are pulled back out of every GPU queue; in-flight
        executions become *phantoms* — their simulated work completes (the
        events are already scheduled) but an epoch check discards the
        results.  Returns the orphans, which the caller re-routes.  The
        server rejects submissions until :meth:`recover`.
        """
        self._epoch += 1
        self._down = True
        orphans: list[Request] = []
        for queue in self._queues.values():
            orphans.extend(typing.cast(Request, item)
                           for item in queue.drain())
        for gpu_index in sorted(self._active):
            orphans.append(self._active.pop(gpu_index))
        self._outstanding -= len(orphans)
        for request in orphans:
            self._settle_backlog(request)
            if self.auditor is not None:
                self.auditor.on_orphan(request)
        self._maybe_finish_drain()
        return orphans

    def recover(self) -> None:
        """Bring a crashed machine back, with cold GPUs.

        The crash lost all GPU state, so every previously resident
        instance is evicted — the first request per instance after
        recovery pays a full cold start.
        """
        if not self._down:
            raise WorkloadError("recover() on a machine that is not down")
        self._down = False
        self.invalidate_residency()

    def invalidate_residency(self) -> None:
        """Evict every resident instance (models GPU memory loss)."""
        for instance in self._instances.values():
            if instance.resident:
                self._caches[instance.home_gpu].evict(instance)

    # -- device faults ----------------------------------------------------------------

    def handle_gpu_failure(self, gpu_index: int) -> list[Request]:
        """React to one GPU dying while the machine keeps serving.

        Aborts any parallel provision that depends on the device (as
        primary or as peer), orphans the GPU's queued and in-flight
        requests (in-flight work becomes a phantom, discarded by the
        per-GPU epoch check), evicts instances resident there and rehomes
        them onto surviving GPUs.  Like :meth:`fail_over`, the orphans
        are returned for the caller to re-route; ``on_orphan`` is not
        fired for them (it covers only orphans the server discovers on
        its own, which have no other path back to the re-router).
        """
        self.machine.gpu(gpu_index)  # validate the index
        self._gpu_epochs[gpu_index] += 1
        for primary, (proc, peers, _links) in list(self._provisions.items()):
            if not proc.is_alive:
                continue
            if primary == gpu_index:
                proc.interrupt("primary-gpu-failed")
            elif gpu_index in peers:
                proc.interrupt("peer-gpu-failed")
        orphans = [typing.cast(Request, item)
                   for item in self._queues[gpu_index].drain()]
        if gpu_index in self._active:
            orphans.append(self._active.pop(gpu_index))
        # The device's memory is gone: every instance homed here goes
        # cold, and a surviving GPU takes over as home so later requests
        # (including cluster retries) have somewhere to run.
        cache = self._caches[gpu_index]
        healthy = [g.index for g in self.machine.gpus if not g.failed]
        for instance in self._instances.values():
            if instance.home_gpu != gpu_index:
                continue
            if instance in cache:
                cache.evict(instance)
            if healthy:
                new_home = min(healthy, key=lambda g:
                               (self._deployed_bytes[g], g))
                bytes_ = instance.plan.gpu_resident_bytes
                self._deployed_bytes[gpu_index] -= bytes_
                self._deployed_bytes[new_home] += bytes_
                instance.home_gpu = new_home
        for request in orphans:
            self._orphan(request, notify=False)
        return orphans

    def handle_link_degradation(self, link: Link) -> None:
        """Abort parallel provisions crossing a link degraded too far.

        Called after a link's capacity changed.  A provision whose lane
        or NVLink fell below ``config.degraded_link_threshold`` of
        nominal is interrupted; its worker retries on the fallback plan.
        Restorations (capacity back above threshold) need no action.
        """
        threshold = self.config.degraded_link_threshold
        if link.bandwidth >= link.nominal_bandwidth * threshold:
            return
        for _primary, (proc, _peers, links) in list(self._provisions.items()):
            if proc.is_alive and link in links:
                proc.interrupt("link-degraded")

    def add_completion_callback(
            self, callback: typing.Callable[[Request, RequestRecord], None]
    ) -> None:
        """Call *callback* with each request and its record on completion."""
        self._completion_callbacks.append(callback)

    def remove_completion_callback(
            self, callback: typing.Callable[[Request, RequestRecord], None]
    ) -> None:
        self._completion_callbacks.remove(callback)

    def _maybe_finish_drain(self) -> None:
        if (self._outstanding == 0 and self._draining
                and self._drain_event is not None
                and not self._drain_event.triggered):
            self._drain_event.succeed()

    def _settle_backlog(self, request: Request) -> None:
        if self.config.deadline is None:
            return
        entry = self._backlog_charge.pop(request.request_id, None)
        if entry is None:
            return
        gpu, cost = entry
        self._backlog[gpu] = max(0.0, self._backlog[gpu] - cost)

    def _orphan(self, request: Request, notify: bool = True) -> None:
        """Account one orphaned request; optionally hand it to the
        re-router (bulk fault handlers return their orphans instead)."""
        self._outstanding -= 1
        self._settle_backlog(request)
        if self.auditor is not None:
            self.auditor.on_orphan(request)
        self._maybe_finish_drain()
        if notify and self.on_orphan is not None:
            self.on_orphan(request)

    # -- running --------------------------------------------------------------------

    def run(self, requests: typing.Sequence[Request]) -> ServingReport:
        """Serve *requests* to completion and report metrics.

        Drives the machine's simulator; the server takes ownership of the
        simulation loop for the duration of the run.
        """
        if not self._instances:
            raise WorkloadError("no instances deployed")
        if not requests:
            raise WorkloadError("no requests to serve")
        unknown = {r.instance_name for r in requests} - set(self._instances)
        if unknown:
            raise WorkloadError(f"requests target unknown instances: "
                                f"{sorted(unknown)[:5]}")
        for request in requests:
            self._check_batch_size(request)

        prewarmed = self._prewarm() if self.config.prewarm else 0
        self._start_workers()
        remaining = len(requests)
        drained = self._drained = self.sim.event(name="drained")

        def _count_down(request: Request, record: RequestRecord) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0 and not drained.triggered:
                drained.succeed()

        self._completion_callbacks.append(_count_down)
        # Shed requests are terminal too: count them toward completion so
        # a deadline-guarded run doesn't wait forever for them.
        prev_on_shed = self.on_shed

        def _shed_count_down(request: Request) -> None:
            if prev_on_shed is not None:
                prev_on_shed(request)
            nonlocal remaining
            remaining -= 1
            if remaining == 0 and not drained.triggered:
                drained.succeed()

        self.on_shed = _shed_count_down
        start_time = self.sim.now
        self.sim.process(self._arrival_process(list(requests)),
                         name="arrivals")
        try:
            self.sim.run(drained)
        finally:
            self._completion_callbacks.remove(_count_down)
            self.on_shed = prev_on_shed
            self._drained = None
        if self.auditor is not None:
            self.auditor.check_quiesce()
        plan_cache = self.planner.plan_cache
        return ServingReport(
            metrics=self.metrics,
            num_instances=len(self._instances),
            prewarmed=prewarmed,
            evictions=sum(c.evictions for c in self._caches.values()),
            duration=self.sim.now - start_time,
            plan_cache_hits=plan_cache.hits if plan_cache is not None else 0,
            plan_cache_misses=(plan_cache.misses
                               if plan_cache is not None else 0),
            degraded_cold_starts=self.metrics.degraded_cold_starts,
            aborted_provisions=self.aborted_provisions,
            shed=len(self.shed_requests),
        )

    def _prewarm(self, dry_run: bool = False) -> int:
        """Admit instances round-robin per home GPU until memory is full."""
        total = 0
        by_gpu: dict[int, list[ModelInstance]] = {}
        for instance in self._instances.values():
            by_gpu.setdefault(instance.home_gpu, []).append(instance)
        for gpu_index, group in by_gpu.items():
            if dry_run:
                budget = self._caches[gpu_index].memory.available_bytes
                for instance in group:
                    if instance.gpu_bytes <= budget:
                        budget -= instance.gpu_bytes
                        total += 1
                    else:
                        break
            else:
                total += self._caches[gpu_index].prewarm(group)
        return total

    def _start_workers(self) -> None:
        if self._workers_started:
            return
        for gpu in self.machine.gpus:
            self.sim.process(self._worker(gpu.index), name=f"worker{gpu.index}")
        self._workers_started = True

    # -- processes ---------------------------------------------------------------------

    def _arrival_process(self, requests: list[Request]
                         ) -> typing.Generator[Event, object, None]:
        base = self.sim.now
        for request in requests:
            due = base + request.arrival_time
            if due > self.sim.now:
                yield self.sim.timeout(due - self.sim.now)
            # The absolute arrival: request.arrival_time is relative to
            # the run's start, so latency accounting stays correct when
            # run() begins at sim.now > 0 (e.g., back-to-back runs).
            request.submitted_at = due
            self.submit(request)

    def submit(self, request: Request) -> bool:
        """Enqueue one request at its instance's home GPU.

        The request's batch size must match its instance's plan (plans
        are specialized per batch size); mismatches raise
        :class:`~repro.errors.WorkloadError`.  A draining or crashed
        server rejects submissions outright (also ``WorkloadError``) —
        silently queueing behind a server that will never run them would
        strand the requests.

        Returns ``True`` when the request was admitted; ``False`` when
        the deadline guardrail shed it (predicted completion past the
        deadline — see ``ServerConfig.deadline``).  Shed requests are a
        terminal outcome: they are appended to ``shed_requests`` and
        reported through ``on_shed``, never queued or retried here.
        """
        if self._draining:
            raise WorkloadError(
                f"request {request.request_id} rejected: server is draining")
        if self._down:
            raise WorkloadError(
                f"request {request.request_id} rejected: server is down")
        self._check_batch_size(request)
        instance = self._instances[request.instance_name]
        if request.submitted_at is None:
            request.submitted_at = self.sim.now
        deadline = self.config.deadline
        if deadline is not None:
            gpu = instance.home_gpu
            service = (instance.current_plan.predicted_warm_latency
                       if instance.resident
                       else instance.plan.predicted_latency)
            predicted_finish = self.sim.now + self._backlog[gpu] + service
            if predicted_finish > request.submitted_at + deadline:
                self.shed_requests.append(request)
                self.metrics.record_shed()
                if self.on_shed is not None:
                    self.on_shed(request)
                return False
            self._backlog[gpu] += service
            self._backlog_charge[request.request_id] = (gpu, service)
        if self.auditor is not None:
            self.auditor.on_submit(request)
        self._outstanding += 1
        self._queues[instance.home_gpu].put(request)
        return True

    def _check_batch_size(self, request: Request) -> None:
        try:
            instance = self._instances[request.instance_name]
        except KeyError:
            raise WorkloadError(
                f"request {request.request_id} targets unknown instance "
                f"{request.instance_name!r}") from None
        expected = instance.plan.batch_size
        if request.batch_size != expected:
            raise WorkloadError(
                f"request {request.request_id} has batch size "
                f"{request.batch_size}, but instance {instance.name} was "
                f"deployed with a plan for batch size {expected}; deploy a "
                f"plan for the desired batch size instead")

    def _worker(self, gpu_index: int) -> typing.Generator[Event, object, None]:
        # The serving body lives directly in this loop (rather than in a
        # delegated sub-generator): the worker's frame is resumed once per
        # simulated event during plan execution, and every level of
        # ``yield from`` delegation adds a frame traversal to each resume.
        queue = self._queues[gpu_index]
        cache = self._caches[gpu_index]
        sim = self.sim
        network = self.machine.network
        pcie_path = self.machine.pcie_path(gpu_index)
        while True:
            request = typing.cast(Request, (yield queue.get()))
            if self._down:
                # The crash hit between this request leaving the queue and
                # the worker resuming: it is in neither the queue (so
                # fail_over's drain missed it) nor _active.  Orphan it
                # here so it is retried like the rest.
                self._orphan(request)
                continue
            if self.machine.gpus[gpu_index].failed:
                # Same race for a device fault: the request left the queue
                # before handle_gpu_failure() drained it.
                self._orphan(request)
                continue
            try:
                instance = self._instances[request.instance_name]
                epoch = self._epoch
                gpu_epoch = self._gpu_epochs[gpu_index]
                self._active[gpu_index] = request
                request.started_at = started = sim.now
                cold = instance not in cache
                request.cold_start = cold
                degraded = False
                if cold and self.watch_device_faults:
                    outcome = yield from self._provision_cold(
                        gpu_index, instance, request)
                    if outcome == "orphaned":
                        # The home GPU died mid-provision;
                        # handle_gpu_failure() already orphaned the
                        # request and popped it from _active.
                        continue
                    degraded = outcome == "degraded"
                elif cold:
                    cache.admit(instance)
                    secondaries = self._cold_start_secondaries(instance)
                    yield from plan_generator(
                        self.machine, self.planner.cost_model, instance.plan,
                        gpu_index, secondaries,
                        detailed_traces=self.config.detailed_traces)
                elif self.config.detailed_traces:
                    cache.touch(instance)
                    yield from warm_generator(
                        self.machine, self.planner.cost_model,
                        instance.current_plan, gpu_index, coalesced=False)
                else:
                    # Warm hits dominate a serving run; the coalesced warm
                    # loop lives here directly (the arithmetic of
                    # _PlanRunner._run_dha_layer, precomputed into
                    # segments) so each of its events resumes exactly one
                    # generator frame.  current_plan is the primary plan
                    # object itself unless the instance is resident under
                    # its degraded fallback.
                    cache.touch(instance)
                    for kind, value in warm_segments(instance.current_plan,
                                                     self.planner.cost_model):
                        if kind == "exec":
                            yield sim.timeout(value)
                            continue
                        traffic, max_rate, compute, tail, extra = value
                        compute_end = sim.now + compute
                        if traffic > 0:
                            yield network.transfer(pcie_path, traffic,
                                                   max_rate=max_rate)
                        resumed = sim.now
                        if resumed < compute_end:
                            resumed = compute_end
                        yield sim.timeout_at(resumed + tail + extra)
                if (epoch != self._epoch
                        or gpu_epoch != self._gpu_epochs[gpu_index]):
                    # The machine (or this GPU) crashed mid-execution.
                    # The simulated work ran to completion (its events
                    # were already in flight), but the result is lost:
                    # fail_over()/handle_gpu_failure() already orphaned
                    # this request, so record nothing and notify no one.
                    continue
                self._active.pop(gpu_index, None)
                request.finished_at = sim.now
                self.busy_time += sim.now - started
                self.requests_served += 1
                record = RequestRecord(
                    request_id=request.request_id,
                    instance_name=request.instance_name,
                    arrival_time=request.arrival_time,
                    submitted_at=typing.cast(float, request.submitted_at),
                    started_at=request.started_at,
                    finished_at=request.finished_at,
                    cold_start=cold,
                    degraded=degraded,
                    qos=request.qos,
                )
                self.metrics.record(record)
                self._outstanding -= 1
                self._settle_backlog(request)
                for callback in list(self._completion_callbacks):
                    callback(request, record)
                self._maybe_finish_drain()
            except Exception as error:
                # Surface worker failures to run() (or the cluster)
                # instead of letting the simulation hang.
                if self._drained is not None and not self._drained.triggered:
                    self._drained.fail(error)
                elif (self.failure_event is not None
                        and not self.failure_event.triggered):
                    self.failure_event.fail(error)
                raise

    def _cold_start_secondaries(self, instance: ModelInstance) -> list[int]:
        needed = instance.plan.num_partitions - 1
        if needed == 0:
            return []
        partners = self._secondaries[instance.home_gpu]
        if len(partners) < needed:
            raise WorkloadError(
                f"gpu{instance.home_gpu} lacks {needed} cross-switch NVLink "
                f"partners for parallel transmission")
        return partners[:needed]

    # -- degraded-mode provisioning ----------------------------------------------

    def _provision_cold(self, gpu_index: int, instance: ModelInstance,
                        request: Request
                        ) -> typing.Generator[Event, object, str]:
        """Cold-start provisioning under device-fault watch.

        Parallel provisions run as an abortable child process registered
        in ``_provisions`` so fault handlers can interrupt them.  Returns
        ``"ok"`` (primary plan landed), ``"degraded"`` (aborted or
        pre-empted by a fault; the request was served on the fallback
        plan) or ``"orphaned"`` (the home GPU itself died; the fault
        handler already re-routed the request).
        """
        cache = self._caches[gpu_index]
        plan = instance.plan
        if plan.uses_parallel_transmission:
            secondaries = self._healthy_secondaries(instance)
            if secondaries is not None:
                cache.admit(instance)
                proc = self.sim.process(
                    plan_generator(
                        self.machine, self.planner.cost_model, plan,
                        gpu_index, secondaries,
                        detailed_traces=self.config.detailed_traces),
                    name=f"provision:{instance.name}")
                self._provisions[gpu_index] = (
                    proc, frozenset(secondaries),
                    self._provision_links(gpu_index, secondaries))
                try:
                    yield proc.done
                    return "ok"
                except Interrupt as interrupt:
                    self.aborted_provisions += 1
                    # The partial residency is garbage; clear it before
                    # retrying.  handle_gpu_failure() may already have
                    # evicted it while rehoming, hence the guard.
                    if instance in cache:
                        cache.evict(instance)
                    if interrupt.cause == "primary-gpu-failed":
                        return "orphaned"
                finally:
                    self._provisions.pop(gpu_index, None)
            # Either too few healthy peers to even start, or the parallel
            # provision just aborted: serve the request on the degraded
            # single-GPU plan instead of dropping it.
            fallback = self._fallback_for(instance)
            instance.active_plan = fallback
            cache.admit(instance)
            yield from plan_generator(
                self.machine, self.planner.cost_model, fallback,
                gpu_index, (), detailed_traces=self.config.detailed_traces)
            self.degraded_cold_starts += 1
            if self.on_degraded is not None:
                self.on_degraded(request)
            return "degraded"
        cache.admit(instance)
        yield from plan_generator(
            self.machine, self.planner.cost_model, plan, gpu_index,
            self._cold_start_secondaries(instance),
            detailed_traces=self.config.detailed_traces)
        return "ok"

    def _healthy_secondaries(self, instance: ModelInstance
                             ) -> list[int] | None:
        """The plan's peer-GPU set, or ``None`` when too few are healthy.

        A peer qualifies when its GPU is alive and both links the
        provision would cross (its PCIe lane and the NVLink back to the
        primary) sit at or above the degraded-link threshold.
        """
        needed = instance.plan.num_partitions - 1
        primary = instance.home_gpu
        threshold = self.config.degraded_link_threshold
        machine = self.machine
        healthy = []
        for peer in self._secondaries[primary]:
            gpu = machine.gpus[peer]
            if gpu.failed:
                continue
            nvlink = machine.nvlinks[(peer, primary)]
            if nvlink.bandwidth < nvlink.nominal_bandwidth * threshold:
                continue
            lane = gpu.pcie_lane
            if lane.bandwidth < lane.nominal_bandwidth * threshold:
                continue
            healthy.append(peer)
            if len(healthy) == needed:
                return healthy
        return None

    def _provision_links(self, primary: int,
                         secondaries: typing.Sequence[int]
                         ) -> frozenset[Link]:
        """Every link a parallel provision depends on (abort triggers)."""
        links = set(self.machine.pcie_path(primary))
        for secondary in secondaries:
            links.update(self.machine.pcie_path(secondary))
            links.add(self.machine.nvlinks[(secondary, primary)])
        return frozenset(links)

    def _fallback_for(self, instance: ModelInstance) -> ExecutionPlan:
        plan = instance.plan
        if plan.fallback is not None:
            return plan.fallback
        fallback = self._fallback_plans.get(plan.model.name)
        if fallback is None:
            fallback = self.planner.plan(plan.model, Strategy.DHA,
                                         batch_size=plan.batch_size)
            self._fallback_plans[plan.model.name] = fallback
        return fallback
