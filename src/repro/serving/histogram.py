"""HDR-style latency histograms: log-bucketed, mergeable, exact-rank.

Single p99 scalars are a poor transport for latency data: they cannot be
merged across machines or shards (the p99 of two p99s is meaningless),
and recomputing them from raw sample lists does not scale to
millions-of-requests traces.  :class:`LatencyHistogram` is the
HdrHistogram-shaped alternative used throughout the serving metrics:

* **log-bucketed** — bucket edges grow geometrically by a configured
  ``resolution`` (1 % by default), so relative quantization error is
  bounded by ``resolution`` across the full dynamic range from
  microseconds to hours;
* **mergeable** — two histograms with the same ``(min_latency,
  resolution)`` share bucket edges *exactly*, so per-machine or
  per-shard histograms combine by adding counts, with no re-sampling
  error (the prerequisite for the sharded-simulation roadmap item);
* **exact-rank percentiles** — quantiles walk the cumulative counts to
  the exact rank (the same ``method="higher"`` rank convention the
  :class:`~repro.serving.metrics.MetricsCollector` uses on raw samples),
  never interpolating between order statistics, so a reported p99 is
  always a value some real request actually (almost — up to bucket
  resolution) experienced.
"""

from __future__ import annotations

import math
import typing

__all__ = ["LatencyHistogram", "merge_histograms"]

#: Relative bucket width: adjacent bucket edges differ by 1 %.
DEFAULT_RESOLUTION = 0.01
#: Values at or below this (seconds) collapse into bucket 0.
DEFAULT_MIN_LATENCY = 1e-6


class LatencyHistogram:
    """Log-bucketed latency histogram with exact-rank percentiles.

    Bucket ``i >= 1`` covers ``(m * g**(i-1), m * g**i]`` where ``m`` is
    ``min_latency`` and ``g = 1 + resolution``; bucket 0 absorbs
    everything at or below ``m``.  A bucket's *representative* value is
    its upper edge, clamped to the exact observed minimum/maximum, so
    percentile estimates are conservative (never below the true order
    statistic) and within ``resolution`` of it.
    """

    __slots__ = ("resolution", "min_latency", "_log_growth", "counts",
                 "total", "sum", "min", "max")

    def __init__(self, resolution: float = DEFAULT_RESOLUTION,
                 min_latency: float = DEFAULT_MIN_LATENCY) -> None:
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        if min_latency <= 0:
            raise ValueError(
                f"min_latency must be positive, got {min_latency}")
        self.resolution = resolution
        self.min_latency = min_latency
        self._log_growth = math.log1p(resolution)
        #: Sparse bucket counts: index -> count.
        self.counts: dict[int, int] = {}
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    # -- recording ------------------------------------------------------------------

    def add(self, value: float, count: int = 1) -> None:
        """Record *count* observations of *value* (seconds)."""
        if value < 0:
            raise ValueError(f"latency must be >= 0, got {value}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        index = self._index(value)
        self.counts[index] = self.counts.get(index, 0) + count
        self.total += count
        self.sum += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def _index(self, value: float) -> int:
        if value <= self.min_latency:
            return 0
        # ceil of the log-ratio, with a relative epsilon so values that
        # sit exactly on a bucket edge stay in the lower bucket despite
        # floating-point log noise.
        ratio = math.log(value / self.min_latency) / self._log_growth
        return max(1, math.ceil(ratio - 1e-9))

    # -- inspection -----------------------------------------------------------------

    def __len__(self) -> int:
        return self.total

    @property
    def mean(self) -> float:
        if self.total == 0:
            raise ValueError("empty histogram")
        return self.sum / self.total

    def bucket_edges(self, index: int) -> tuple[float, float]:
        """The ``(low, high]`` value range of one bucket."""
        if index == 0:
            return (0.0, self.min_latency)
        growth = 1.0 + self.resolution
        return (self.min_latency * growth ** (index - 1),
                self.min_latency * growth ** index)

    def nonzero_buckets(self) -> typing.Iterator[tuple[float, float, int]]:
        """Yield ``(low, high, count)`` for populated buckets, ascending."""
        for index in sorted(self.counts):
            low, high = self.bucket_edges(index)
            yield low, high, self.counts[index]

    def percentile(self, q: float) -> float:
        """Exact-rank percentile (``q`` in [0, 100]), to bucket resolution.

        Uses the same rank convention as ``numpy.percentile(...,
        method="higher")``: the value returned represents the sample at
        (0-indexed) rank ``ceil(q/100 * (total - 1))``.
        """
        if self.total == 0:
            raise ValueError("empty histogram")
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        rank = math.ceil(q / 100.0 * (self.total - 1) - 1e-9)
        cumulative = 0
        for index in sorted(self.counts):
            cumulative += self.counts[index]
            if cumulative > rank:
                high = self.bucket_edges(index)[1]
                return min(max(high, self.min), self.max)
        return self.max  # pragma: no cover - counts always sum to total

    def percentiles(self, qs: typing.Sequence[float]) -> list[float]:
        return [self.percentile(q) for q in qs]

    # -- merging --------------------------------------------------------------------

    def compatible(self, other: "LatencyHistogram") -> bool:
        """Whether *other* shares this histogram's exact bucket edges."""
        return (self.resolution == other.resolution
                and self.min_latency == other.min_latency)

    def update(self, other: "LatencyHistogram") -> None:
        """Add *other*'s counts into this histogram (exact, in place)."""
        if not self.compatible(other):
            raise ValueError(
                f"cannot merge histograms with different bucket layouts: "
                f"(resolution={self.resolution}, min={self.min_latency}) vs "
                f"(resolution={other.resolution}, min={other.min_latency})")
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.total += other.total
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def copy(self) -> "LatencyHistogram":
        clone = LatencyHistogram(self.resolution, self.min_latency)
        clone.counts = dict(self.counts)
        clone.total = self.total
        clone.sum = self.sum
        clone.min = self.min
        clone.max = self.max
        return clone

    # -- serialization (cross-machine / cross-shard transport) ----------------------

    def to_dict(self) -> dict[str, object]:
        return {
            "resolution": self.resolution,
            "min_latency": self.min_latency,
            "counts": {str(index): count
                       for index, count in sorted(self.counts.items())},
            "sum": self.sum,
            "min": self.min if self.total else None,
            "max": self.max if self.total else None,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "LatencyHistogram":
        hist = cls(resolution=typing.cast(float, data["resolution"]),
                   min_latency=typing.cast(float, data["min_latency"]))
        counts = typing.cast(dict, data["counts"])
        hist.counts = {int(index): int(count)
                       for index, count in counts.items()}
        hist.total = sum(hist.counts.values())
        hist.sum = typing.cast(float, data["sum"])
        if hist.total:
            hist.min = typing.cast(float, data["min"])
            hist.max = typing.cast(float, data["max"])
        return hist

    # -- comparison -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (self.compatible(other)
                and self.total == other.total
                and self.counts == other.counts
                and self.sum == other.sum
                and self.min == other.min
                and self.max == other.max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.total == 0:
            return "LatencyHistogram(empty)"
        return (f"LatencyHistogram(n={self.total}, "
                f"min={self.min:.6f}, max={self.max:.6f}, "
                f"buckets={len(self.counts)})")


def merge_histograms(histograms: typing.Iterable[LatencyHistogram]
                     ) -> LatencyHistogram:
    """Merge several compatible histograms into a new one."""
    iterator = iter(histograms)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("need at least one histogram to merge") from None
    merged = first.copy()
    for histogram in iterator:
        merged.update(histogram)
    return merged
