# Development targets for the DeepPlan reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Paper-sized serving experiments (full 3-hour trace, 1000+ requests per
# point); expect a multi-hour run.
bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
