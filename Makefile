# Development targets for the DeepPlan reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full perf perf-baseline examples regolden clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Paper-sized serving experiments (full 3-hour trace, 1000+ requests per
# point); expect a multi-hour run.
bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Wall-clock perf of the simulator itself (see docs/performance.md):
# full probe suite, fast vs slow path, writes BENCH_perf.json.
perf:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_simcore.py --emit-bench

# Refresh the perf-smoke baseline (run on the CI reference machine).
perf-baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_simcore.py --smoke --write-baseline

# Regenerate tests/golden/paper_figures.json after a deliberate
# cost-model recalibration; review and commit the diff.
regolden:
	PYTHONPATH=src $(PYTHON) tests/make_golden.py

examples:
	for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
