# Development targets for the DeepPlan reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full examples regolden clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Paper-sized serving experiments (full 3-hour trace, 1000+ requests per
# point); expect a multi-hour run.
bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate tests/golden/paper_figures.json after a deliberate
# cost-model recalibration; review and commit the diff.
regolden:
	PYTHONPATH=src $(PYTHON) tests/make_golden.py

examples:
	for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
