"""Ablation: DMA priority of borrowed-lane (secondary-partition) copies.

The engine issues secondary-partition copies at a reduced DMA weight
(``SECONDARY_LOAD_WEIGHT`` = 0.4) relative to a lane's own traffic, so a
concurrent cold-start on the borrowed GPU keeps most of its bandwidth.  This
ablation re-runs the Table 4 interference experiment with equal priority
to show the mechanism matters: without it, two simultaneous PT+DHA
cold-starts hurt each other's first partitions badly enough that
exec-bound models fall behind PipeSwitch.
"""

from conftest import run_once

import repro.engine.executor as executor_module
from repro.analysis import format_table
from repro.core import Strategy
from repro.engine import run_concurrent_cold_starts, run_single_inference
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.units import MS

MODELS = ("bert-base", "gpt2-medium")


def _contended(planner, model, weight):
    original = executor_module.SECONDARY_LOAD_WEIGHT
    executor_module.SECONDARY_LOAD_WEIGHT = weight
    try:
        results = run_concurrent_cold_starts(
            p3_8xlarge(), model, Strategy.PT_DHA, primaries=[0, 2],
            planner=planner)
    finally:
        executor_module.SECONDARY_LOAD_WEIGHT = original
    return sum(r.latency for r in results) / len(results)


def test_ablation_secondary_copy_priority(benchmark, planner_v100, emit):
    def run():
        rows = []
        for name in MODELS:
            model = build_model(name)
            pipeswitch = run_single_inference(
                p3_8xlarge(), model, Strategy.PIPESWITCH,
                planner=planner_v100).latency
            low_priority = _contended(
                planner_v100, model, executor_module.SECONDARY_LOAD_WEIGHT)
            equal_priority = _contended(planner_v100, model, 1.0)
            rows.append([name, pipeswitch / MS, low_priority / MS,
                         equal_priority / MS])
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_priority", format_table(
        ["model", "PipeSwitch (ms)", "PT+DHA(2) default weight (ms)",
         "PT+DHA(2) weight=1.0 (ms)"],
        rows,
        title="Ablation — DMA priority of borrowed-lane copies under "
              "two concurrent PT+DHA cold-starts"))

    by_model = {row[0]: row for row in rows}
    for name, pipeswitch, low, equal in rows:
        # Load-bound models barely notice (both partitions gate equally);
        # never meaningfully worse.
        assert low <= equal * 1.02, name
        assert low < pipeswitch, name  # the paper's Table 4 property
    # For the exec-bound GPT-2 Medium, equal priority lets the borrowed
    # lane starve the victim's first partition past PipeSwitch.
    assert by_model["gpt2-medium"][3] > by_model["gpt2-medium"][1]
