"""Figure 15: replaying a (synthetic) Microsoft-Azure-Functions-like
trace against the serving system.

Setup follows the paper: BERT-Base, RoBERTa-Base, and GPT-2 instances in
a 4:4:1 ratio, 150 req/s aggregate, SLO 100 ms, per-minute 99% latency /
goodput / cold-start time series.  The paper replays 3 hours; by default
this benchmark replays a 10-minute slice with the same structure (set
REPRO_FULL=1 for the full 3 hours).

Paper's claims: DeepPlan (DHA and PT+DHA) achieve 98-99% goodput where
PipeSwitch delivers ~81-98%, and DeepPlan keeps p99 under ~100 ms where
PipeSwitch exceeds 150 ms; occasional spikes appear but do not persist.
"""

from conftest import full_scale, run_once

from repro.analysis import format_series, format_table
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.serving import (
    InferenceServer,
    MAFTraceConfig,
    ServerConfig,
    TraceWorkload,
    synthesize_maf_trace,
)
from repro.simkit import Simulator
from repro.units import MS

STRATEGIES = ("pipeswitch", "dha", "pt+dha")
# Paper: "The number of instances follows about a 4:4:1 ratio" over
# BERT-Base, RoBERTa-Base and GPT-2, stressing the 4-GPU server.
INSTANCE_MIX = (("bert-base", 64), ("roberta-base", 64), ("gpt2", 16))


def test_fig15_maf_trace_replay(benchmark, planner_v100, emit):
    duration = 3 * 3600.0 if full_scale() else 600.0
    config = MAFTraceConfig(duration=duration, target_rps=150.0, seed=7)

    def run():
        reports = {}
        trace = None
        for strategy in STRATEGIES:
            machine = Machine(Simulator(), p3_8xlarge())
            server = InferenceServer(machine, planner_v100,
                                     ServerConfig(strategy=strategy))
            server.deploy([(build_model(name), count)
                           for name, count in INSTANCE_MIX])
            trace = synthesize_maf_trace(list(server.instances), config)
            workload = TraceWorkload(trace.arrivals)
            reports[strategy] = server.run(workload.generate())
        return reports, trace

    reports, trace = run_once(benchmark, run)

    window = 60.0
    blocks = [format_series(
        "minute", [int(t // 60) for t in trace.bucket_times[::6]],
        {"offered load (req/s)": list(trace.offered_load[::6])},
        title="Figure 15 (offered load)", value_format="{:.0f}")]
    for metric, fmt in (("p99_latency", "{:.1f}"), ("goodput", "{:.3f}"),
                        ("cold_start_rate", "{:.3f}")):
        series = {}
        minutes = None
        for strategy in STRATEGIES:
            windows = reports[strategy].metrics.windows(window)
            minutes = [int(w.window_start // 60) for w in windows]
            values = [getattr(w, metric) for w in windows]
            if metric == "p99_latency":
                values = [v / MS for v in values]
            series[strategy] = values
        blocks.append(format_series(
            "minute", minutes, series,
            title=f"Figure 15 — per-minute {metric}", value_format=fmt))

    summary_rows = [[s,
                     reports[s].metrics.p99_latency / MS,
                     reports[s].metrics.goodput,
                     reports[s].metrics.cold_start_rate,
                     float(len(reports[s].metrics))]
                    for s in STRATEGIES]
    blocks.append(format_table(
        ["strategy", "p99 (ms)", "goodput", "cold rate", "requests"],
        summary_rows, title="Figure 15 — whole-trace summary"))
    emit("fig15_maf_trace", "\n\n".join(blocks))

    # Paper's claims: DeepPlan goodput 98-99%; PipeSwitch below it.
    assert reports["pt+dha"].metrics.goodput > 0.97
    assert reports["dha"].metrics.goodput > 0.96
    assert (reports["pipeswitch"].metrics.goodput
            < reports["pt+dha"].metrics.goodput)
    assert (reports["pt+dha"].metrics.p99_latency
            < reports["pipeswitch"].metrics.p99_latency)
