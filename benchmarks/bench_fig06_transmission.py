"""Figure 6 + Table 2: serial vs parallel(-pipeline) model transmission,
and the average PCIe bandwidth each mode achieves.

Paper's claims: parallel(2) cuts load time 30-45%; parallel-pipeline(2)
roughly halves it for transformers (~40% for ResNet); with four GPUs the
two-per-switch topology halves per-lane bandwidth (~11 -> ~6 GB/s) and
erases most of the remaining gain.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.engine import transmit_model
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.simkit import Simulator
from repro.units import MS

MODELS = ("resnet50", "bert-base", "roberta-large", "gpt2-medium")
MODES = (("serial", 1), ("parallel", 2), ("parallel-pipeline", 2),
         ("parallel-pipeline", 4))

# Table 2 of the paper (GB/s) for the modes it reports.
PAPER_TABLE2 = {
    ("resnet50", "serial", 1): 9.10,
    ("bert-base", "serial", 1): 10.87,
    ("roberta-large", "serial", 1): 10.94,
    ("gpt2-medium", "serial", 1): 11.52,
    ("resnet50", "parallel-pipeline", 2): 9.13,
    ("bert-base", "parallel-pipeline", 2): 10.67,
    ("roberta-large", "parallel-pipeline", 2): 10.75,
    ("gpt2-medium", "parallel-pipeline", 2): 11.32,
    ("resnet50", "parallel-pipeline", 4): 7.01,
    ("bert-base", "parallel-pipeline", 4): 5.89,
    ("roberta-large", "parallel-pipeline", 4): 6.01,
    ("gpt2-medium", "parallel-pipeline", 4): 5.96,
}


def _transmit(model, mode, num_gpus):
    machine = Machine(Simulator(), p3_8xlarge())
    process = transmit_model(machine, model, target=0, mode=mode,
                             num_gpus=num_gpus)
    return machine.sim.run(process.done)


def test_fig06_transmission_modes(benchmark, emit):
    def run():
        results = {}
        for name in MODELS:
            model = build_model(name)
            for mode, gpus in MODES:
                results[name, mode, gpus] = _transmit(model, mode, gpus)
        return results

    results = run_once(benchmark, run)

    time_rows = []
    bw_rows = []
    for name in MODELS:
        serial = results[name, "serial", 1].load_time
        time_rows.append(
            [name] + [results[name, mode, gpus].load_time / MS
                      for mode, gpus in MODES])
        bw_row = [name]
        for mode, gpus in ((("serial"), 1), ("parallel-pipeline", 2),
                           ("parallel-pipeline", 4)):
            measured = results[name, mode, gpus].average_pcie_bandwidth / 1e9
            paper = PAPER_TABLE2[name, mode, gpus]
            bw_row.extend([measured, paper])
        bw_rows.append(bw_row)

        # Figure 6 shape assertions.
        parallel = results[name, "parallel", 2].load_time
        pipelined = results[name, "parallel-pipeline", 2].load_time
        four = results[name, "parallel-pipeline", 4].load_time
        assert 0.25 < 1 - parallel / serial < 0.50, name
        # Pipelined forwarding is never slower; for ResNet the primary
        # partition is the critical path, so the two tie.
        assert pipelined <= parallel
        if name != "resnet50":
            # Transformers: switch contention erases most of the 4-GPU
            # gain ("a small performance benefit", Section 3.2).  ResNet's
            # many small layers underutilize PCIe, so it contends less.
            assert four > 0.75 * pipelined, name

    emit("fig06_transmission", format_table(
        ["model", "serial (ms)", "parallel(2) (ms)",
         "parallel-pipeline(2) (ms)", "parallel-pipeline(4) (ms)"],
        time_rows, title="Figure 6 — model loading time by transmission "
                         "mode (host -> GPU0)"))
    emit("table2_pcie_bandwidth", format_table(
        ["model", "serial", "paper", "pp(2)", "paper ", "pp(4)", "paper  "],
        bw_rows, title="Table 2 — average PCIe bandwidth (GB/s), "
                       "measured vs paper"))

    for (name, mode, gpus), paper in PAPER_TABLE2.items():
        measured = results[name, mode, gpus].average_pcie_bandwidth / 1e9
        assert abs(measured - paper) / paper < 0.20, (name, mode, gpus)
