"""Ablation (paper Section 7): serving a model under a GPU memory budget.

Sweeps the resident-memory budget for GPT-2 Medium and reports the warm
inference latency of the budget-constrained plan — the "cost-effective
alternative" to pipeline parallelism the paper sketches for models that
outgrow one GPU.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.large_model import plan_within_budget, warm_latency
from repro.models import build_model
from repro.units import GB, MB, MS

BUDGETS_MB = (1400, 1160, 1024, 768, 512, 256)


def test_ablation_memory_budget_sweep(benchmark, planner_v100, emit):
    model = build_model("gpt2-medium")
    cost_model = planner_v100.cost_model

    def run():
        rows = []
        unconstrained = warm_latency(
            cost_model, plan_within_budget(cost_model, model, 8 * GB))
        for budget_mb in BUDGETS_MB:
            plan = plan_within_budget(cost_model, model,
                                      int(budget_mb * MB))
            latency = warm_latency(cost_model, plan)
            rows.append([budget_mb,
                         plan.gpu_resident_bytes / MB,
                         plan.host_resident_bytes / MB,
                         latency / MS,
                         latency / unconstrained])
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_large_model", format_table(
        ["budget (MiB)", "resident (MiB)", "host-side (MiB)",
         "warm latency (ms)", "slowdown"],
        rows,
        title="Ablation — GPT-2 Medium (1354 MiB) under a GPU memory "
              "budget: DHA as the overflow mechanism"))

    slowdowns = [row[4] for row in rows]
    # Monotone trade-off, and shedding the embeddings (~200 MiB) is free.
    assert slowdowns == sorted(slowdowns)
    assert slowdowns[1] < 1.05   # 1160 MiB: embeddings offloaded, ~no cost
    assert slowdowns[-1] > 2.0   # 256 MiB: deep offload has a real price
