"""Table 1: number of PCIe read transactions (PCIeRdCur events) when a
layer is loaded vs executed by direct-host-access.

Paper's numbers are measured with Intel PCM hardware counters; our model
derives them from the traffic descriptors (64 B payload per event) and
matches within ~4%.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.hw.specs import p3_8xlarge
from repro.models import CostModel
from repro.models.zoo import microbench_layers
from repro.units import MB

PAPER = {
    "embedding-medium": (24_580, 18_267),
    "embedding-large": (1_465_112, 18_459),
    "conv-medium": (36_869, 65_891),
    "conv-large": (147_465, 273_487),
    "fc-small": (36_920, 446_276),
    "fc-large": (147_660, 1_765_787),
}


def test_table1_pcie_events(benchmark, emit):
    cost_model = CostModel(p3_8xlarge())
    layers = microbench_layers()

    def run():
        rows = []
        for key, (paper_load, paper_dha) in PAPER.items():
            layer = layers[key]
            load = cost_model.pcie_read_events(layer, 1, "load")
            dha = cost_model.pcie_read_events(layer, 1, "dha")
            rows.append([key, layer.param_bytes / MB, load, paper_load,
                         dha, paper_dha])
        return rows

    rows = run_once(benchmark, run)
    emit("table1_pcie_events", format_table(
        ["layer", "size (MiB)", "load events", "paper", "dha events",
         "paper "],
        rows, title="Table 1 — PCIe read events: load vs direct-host-access"))

    for key, _, load, paper_load, dha, paper_dha in rows:
        assert abs(load - paper_load) / paper_load < 0.04, key
        assert abs(dha - paper_dha) / paper_dha < 0.04, key
