"""Wall-clock performance harness for the simulation fast path.

Unlike the ``bench_fig*`` modules (which reproduce the *paper's* numbers,
i.e. simulated milliseconds), this harness measures how fast the
simulator itself runs: how many wall-clock seconds it takes to push
simulated traffic through the kernel.  Five probes:

* **events/sec** — raw event-loop throughput (timeout churn across many
  concurrent processes);
* **flows/sec** — ``FlowNetwork`` churn: contended transfers starting
  and finishing, each triggering a fair-share rebalance;
* **plans/sec** — ``DeepPlan.plan`` throughput, cold (fresh planner
  state) and repeat (same planner asked again — the plan-cache path);
* **shard replay requests/sec** — the ``repro.shard`` epoch engine on
  the serial backend: route-ahead planning, vectorized broker routing,
  adaptive epochs, per-epoch reconciliation;
* **fig13/fig15 runtime** — end-to-end wall time of reduced versions of
  the two serving benchmarks, together with their *simulated* outputs so
  the fast path can be proven behavior-preserving.

Modes (run as a script)::

    python benchmarks/bench_perf_simcore.py --measure -o out.json
        Run the probe suite on the current tree and dump raw metrics.
    python benchmarks/bench_perf_simcore.py --emit-bench
        Run the suite with the fast path ON and OFF, compare simulated
        outputs, fold in the checked-in pre-change measurement
        (benchmarks/results/perf_prechange.json), and write BENCH_perf.json
        at the repo root.
    python benchmarks/bench_perf_simcore.py --smoke --check
        Reduced workload; fail if events/sec regresses >30% against
        benchmarks/results/perf_baseline.json (the CI perf-smoke job).

Under ``pytest benchmarks/`` the module contributes a smoke test that
asserts the fast and slow paths produce identical simulated results.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import sys
import time
import typing

_HERE = pathlib.Path(__file__).resolve().parent
_ROOT = _HERE.parent
if str(_ROOT / "src") not in sys.path:  # script-mode convenience
    sys.path.insert(0, str(_ROOT / "src"))

from repro.cluster.cluster import ClusterConfig  # noqa: E402
from repro.core import DeepPlan  # noqa: E402
from repro.hw.machine import Machine  # noqa: E402
from repro.hw.specs import p3_8xlarge  # noqa: E402
from repro.models import build_model  # noqa: E402
from repro.serving import (  # noqa: E402
    InferenceServer,
    MAFTraceConfig,
    PoissonWorkload,
    ServerConfig,
    TraceWorkload,
    synthesize_maf_trace,
)
from repro.shard import ShardConfig, ShardedReplay  # noqa: E402
from repro.simkit import Simulator  # noqa: E402
from repro.units import MS  # noqa: E402

try:  # The fast-path switch lands with this harness; tolerate its absence
    from repro import fastpath  # noqa: E402
except ImportError:  # pragma: no cover - pre-change capture only
    fastpath = None

PRECHANGE_PATH = _HERE / "results" / "perf_prechange.json"
BASELINE_PATH = _HERE / "results" / "perf_baseline.json"
BENCH_PATH = _ROOT / "BENCH_perf.json"

#: events/sec may regress this much against the checked-in baseline
#: before the smoke check fails (hardware jitter allowance is on top,
#: inside the baseline file).
SMOKE_REGRESSION_LIMIT = 0.30

STRATEGIES = ("pipeswitch", "dha", "pt+dha")
INSTANCE_MIX = (("bert-base", 64), ("roberta-base", 64), ("gpt2", 16))


# -- probes -----------------------------------------------------------------


def measure_event_churn(processes: int = 50, timeouts: int = 2000) -> dict:
    """Raw event-loop throughput: concurrent processes yielding timeouts."""
    sim = Simulator()

    def ticker(period: float):
        for _ in range(timeouts):
            yield sim.timeout(period)

    for k in range(processes):
        sim.process(ticker(0.0005 * (k + 1)), name=f"ticker{k}")
    gc.collect()  # don't bill this probe for a previous probe's garbage
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    events = processes * timeouts
    return {"events": events, "wall_s": wall,
            "events_per_sec": events / wall}


def measure_flow_churn(flows: int = 4000, concurrency: int = 16) -> dict:
    """FlowNetwork churn: contended transfers with per-flow rebalances."""
    sim = Simulator()
    machine = Machine(sim, p3_8xlarge())
    per_proc = flows // concurrency

    def churn(seed: int):
        # Deterministic LCG so the schedule is identical across runs and
        # across fast/slow paths without importing random.
        state = seed * 2654435761 % 2**32
        for _ in range(per_proc):
            state = (1103515245 * state + 12345) % 2**31
            gpu = state % 4
            nbytes = 1e6 + (state % 997) * 5e4
            yield machine.network.transfer(machine.pcie_path(gpu), nbytes)

    for k in range(concurrency):
        sim.process(churn(k + 1), name=f"churn{k}")
    gc.collect()
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    total = per_proc * concurrency
    return {"flows": total, "wall_s": wall, "flows_per_sec": total / wall}


def measure_plan_throughput(rounds: int = 12) -> dict:
    """DeepPlan.plan wall throughput, cold and repeat-keyed."""
    spec = p3_8xlarge()
    models = [build_model(name) for name, _ in INSTANCE_MIX]
    pairs = [(m, s) for m in models for s in ("dha", "pt+dha")]

    gc.collect()
    start = time.perf_counter()
    for _ in range(3):
        planner = DeepPlan(spec, noise=0.0)
        for model, strategy in pairs:
            planner.plan(model, strategy)
    cold_wall = time.perf_counter() - start
    cold_plans = 3 * len(pairs)

    planner = DeepPlan(spec, noise=0.0)
    for model, strategy in pairs:  # prime profiles (and cache, if any)
        planner.plan(model, strategy)
    start = time.perf_counter()
    for _ in range(rounds):
        for model, strategy in pairs:
            planner.plan(model, strategy)
    repeat_wall = time.perf_counter() - start
    repeat_plans = rounds * len(pairs)

    return {
        "cold_plans": cold_plans, "cold_wall_s": cold_wall,
        "cold_plans_per_sec": cold_plans / cold_wall,
        "repeat_plans": repeat_plans, "repeat_wall_s": repeat_wall,
        "repeat_plans_per_sec": repeat_plans / repeat_wall,
    }


def measure_shard_replay(num_requests: int = 1200) -> dict:
    """Sharded replay throughput: 2-shard pipelined epoch engine.

    Serial backend, so the probe measures the epoch pipeline itself —
    route-ahead planning, vectorized broker routing, adaptive epoch
    sizing, per-epoch reconciliation — without multiprocessing jitter,
    which keeps the number meaningful on a 1-CPU runner.
    """
    config = ClusterConfig(num_machines=4, replication=2,
                           policy="least-loaded", prewarm=True,
                           max_retries=2, audit=True,
                           breaker_cooldown=0.0)
    catalog = [("bert-base", 2), ("resnet50", 2)]
    instances = [f"{model}#{k}" for model, count in catalog
                 for k in range(count)]
    requests = PoissonWorkload(instances, rate=200.0,
                               num_requests=num_requests,
                               seed=5).generate()
    replay = ShardedReplay(p3_8xlarge(), config, ShardConfig(
        num_shards=2, backend="serial", epoch_length=50 * MS,
        adaptive_epochs=True))
    replay.deploy(catalog)
    gc.collect()
    start = time.perf_counter()
    report = replay.run(requests)
    wall = time.perf_counter() - start
    return {"requests": num_requests, "wall_s": wall,
            "requests_per_sec": num_requests / wall,
            "epochs": report.epochs,
            "completed": report.ledger.completed}


def _summarize(report) -> dict:
    metrics = report.metrics
    records = metrics.records
    return {
        "completed": len(records),
        "cold_starts": sum(1 for r in records if r.cold_start),
        "p99_ms": metrics.p99_latency / MS,
        "goodput": metrics.goodput,
        "cold_start_rate": metrics.cold_start_rate,
        # Order-insensitive checksum over every request latency: any
        # behavioral drift in the simulation shows up here.
        "latency_sum_s": float(sum(sorted(r.latency for r in records))),
    }


def measure_fig15(duration: float = 120.0) -> dict:
    """Reduced fig15 MAF-trace replay: wall time + simulated outputs."""
    planner = DeepPlan(p3_8xlarge(), noise=0.0)
    config = MAFTraceConfig(duration=duration, target_rps=150.0, seed=7)
    walls, outputs = {}, {}
    gc.collect()
    start_all = time.perf_counter()
    for strategy in STRATEGIES:
        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, planner,
                                 ServerConfig(strategy=strategy))
        server.deploy([(build_model(name), count)
                       for name, count in INSTANCE_MIX])
        trace = synthesize_maf_trace(list(server.instances), config)
        workload = TraceWorkload(trace.arrivals)
        start = time.perf_counter()
        report = server.run(workload.generate())
        walls[strategy] = time.perf_counter() - start
        outputs[strategy] = _summarize(report)
    return {"duration_simulated_s": duration,
            "wall_s": time.perf_counter() - start_all,
            "wall_by_strategy_s": walls, "outputs": outputs}


def measure_fig13(num_requests: int = 400,
                  concurrencies: tuple[int, ...] = (120, 180)) -> dict:
    """Reduced fig13 concurrency sweep: wall time + simulated outputs."""
    planner = DeepPlan(p3_8xlarge(), noise=0.0)
    outputs = {}
    gc.collect()
    start_all = time.perf_counter()
    for strategy in STRATEGIES:
        for concurrency in concurrencies:
            machine = Machine(Simulator(), p3_8xlarge())
            server = InferenceServer(machine, planner,
                                     ServerConfig(strategy=strategy))
            server.deploy([(build_model("bert-base"), concurrency)])
            workload = PoissonWorkload(list(server.instances), rate=100.0,
                                       num_requests=num_requests, seed=11)
            report = server.run(workload.generate())
            outputs[f"{strategy}@{concurrency}"] = _summarize(report)
    return {"num_requests": num_requests,
            "wall_s": time.perf_counter() - start_all, "outputs": outputs}


def _best_of(measure: typing.Callable[[], dict], repeats: int) -> dict:
    """Best (lowest wall time) of *repeats* runs of a churn probe.

    The churn probes finish in well under a second, which leaves a
    single sample at the mercy of scheduler jitter; the minimum over a
    few runs is the standard way to estimate the undisturbed cost.
    """
    best: dict | None = None
    for _ in range(repeats):
        result = measure()
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    return typing.cast(dict, best)


def run_suite(smoke: bool = False) -> dict:
    """Run every probe at smoke or full scale."""
    if smoke:
        return {
            "scale": "smoke",
            "event_churn": measure_event_churn(processes=20, timeouts=1000),
            "flow_churn": measure_flow_churn(flows=1200, concurrency=8),
            "plan_throughput": measure_plan_throughput(rounds=3),
            "shard_replay": measure_shard_replay(num_requests=400),
            "fig15": measure_fig15(duration=30.0),
        }
    return {
        "scale": "full",
        "event_churn": _best_of(measure_event_churn, 3),
        "flow_churn": _best_of(measure_flow_churn, 3),
        "plan_throughput": measure_plan_throughput(),
        "shard_replay": _best_of(measure_shard_replay, 3),
        "fig15": measure_fig15(),
        "fig13": measure_fig13(),
    }


# -- comparison -------------------------------------------------------------


def _outputs_equal(a: dict, b: dict, rel_tol: float = 1e-9
                   ) -> tuple[bool, bool, list[str]]:
    """Compare simulated-output dicts: (identical, within_tol, diffs)."""
    bit_identical = True
    within = True
    diffs = []
    for key in sorted(set(a) | set(b)):
        left, right = a.get(key), b.get(key)
        if isinstance(left, dict) and isinstance(right, dict):
            sub_bit, sub_within, sub_diffs = _outputs_equal(left, right,
                                                            rel_tol)
            bit_identical &= sub_bit
            within &= sub_within
            diffs.extend(f"{key}.{d}" for d in sub_diffs)
            continue
        if left == right:
            continue
        bit_identical = False
        if (isinstance(left, float) and isinstance(right, float)
                and abs(left - right)
                <= rel_tol * max(abs(left), abs(right))):
            continue
        within = False
        diffs.append(f"{key}: {left!r} != {right!r}")
    return bit_identical, within, diffs


def compare_runs(fast: dict, other: dict, label: str) -> dict:
    """Speedups + simulated-output identity between two suite runs."""
    result: dict = {"against": label, "speedup": {}, "identity": {}}
    for probe, metric in (("event_churn", "events_per_sec"),
                          ("flow_churn", "flows_per_sec"),
                          ("shard_replay", "requests_per_sec")):
        if probe in fast and probe in other:
            result["speedup"][metric] = (fast[probe][metric]
                                         / other[probe][metric])
    if "plan_throughput" in fast and "plan_throughput" in other:
        plans = result["speedup"]
        plans["cold_plans_per_sec"] = (
            fast["plan_throughput"]["cold_plans_per_sec"]
            / other["plan_throughput"]["cold_plans_per_sec"])
        plans["repeat_plans_per_sec"] = (
            fast["plan_throughput"]["repeat_plans_per_sec"]
            / other["plan_throughput"]["repeat_plans_per_sec"])
    for figure in ("fig15", "fig13"):
        if figure not in fast or figure not in other:
            continue
        result["speedup"][figure] = (other[figure]["wall_s"]
                                     / fast[figure]["wall_s"])
        bit, within, diffs = _outputs_equal(fast[figure]["outputs"],
                                            other[figure]["outputs"])
        result["identity"][figure] = {
            "bit_identical": bit,
            "within_1e-9": within,
            "diffs": diffs[:20],
        }
    return result


def emit_bench(smoke: bool = False) -> dict:
    """Fast vs slow vs checked-in pre-change; writes BENCH_perf.json."""
    if fastpath is None:
        raise SystemExit("--emit-bench requires the fast-path build "
                         "(repro.fastpath is missing)")
    print("== fast path ==")
    fast = run_suite(smoke=smoke)
    print(json.dumps({k: v for k, v in fast.items() if k != "scale"},
                     indent=2, default=str)[:2000])
    print("== slow path (fast path disabled) ==")
    with fastpath.forced(False):
        slow = run_suite(smoke=smoke)
    payload: dict = {
        "generated_by": "benchmarks/bench_perf_simcore.py --emit-bench",
        "scale": fast["scale"],
        "fast": fast,
        "slow_path": slow,
        "comparison_vs_slow_path": compare_runs(fast, slow, "slow_path"),
    }
    if PRECHANGE_PATH.exists():
        prechange = json.loads(PRECHANGE_PATH.read_text())
        payload["prechange"] = prechange
        payload["comparison_vs_prechange"] = compare_runs(
            fast, prechange, "prechange (measured on the pre-change tree, "
            "same machine)")
        payload["speedup"] = payload["comparison_vs_prechange"]["speedup"]
    else:  # pragma: no cover - prechange capture missing
        payload["speedup"] = payload["comparison_vs_slow_path"]["speedup"]
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_PATH}")
    print("speedups:", json.dumps(payload["speedup"], indent=2))
    return payload


#: Gated probes: (baseline key, probe name, probe metric).  Baselines
#: written before a gate existed simply skip it, so the check degrades
#: gracefully across baseline-file generations.
SMOKE_GATES = (
    ("events_per_sec", "event_churn", "events_per_sec"),
    ("flows_per_sec", "flow_churn", "flows_per_sec"),
    ("shard_replay_rps", "shard_replay", "requests_per_sec"),
)


def check_baseline(measured: dict, baseline_path: pathlib.Path) -> None:
    """Fail (SystemExit) if a gated metric regressed >30% vs the baseline."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for key, probe, metric in SMOKE_GATES:
        if key not in baseline:
            print(f"perf-smoke: baseline has no {key}; gate skipped")
            continue
        floor = baseline[key] * (1.0 - SMOKE_REGRESSION_LIMIT)
        got = measured[probe][metric]
        print(f"perf-smoke: {key} {got:,.0f} "
              f"(baseline {baseline[key]:,.0f}, floor {floor:,.0f})")
        if got < floor:
            failures.append(
                f"{key} {got:,.0f} is more than "
                f"{SMOKE_REGRESSION_LIMIT:.0%} below the baseline "
                f"{baseline[key]:,.0f}")
    if failures:
        raise SystemExit(
            "perf-smoke FAILED: " + "; ".join(failures)
            + " (see benchmarks/results/perf_baseline.json)")
    print("perf-smoke OK")


# -- pytest entry points ----------------------------------------------------


def test_perf_simcore_smoke(benchmark, emit):
    """Fast and slow paths must produce identical simulated results."""
    from conftest import run_once

    def run():
        fast = measure_fig15(duration=20.0)
        if fastpath is not None:
            with fastpath.forced(False):
                slow = measure_fig15(duration=20.0)
        else:  # pragma: no cover - pre-change tree
            slow = fast
        return fast, slow

    fast, slow = run_once(benchmark, run)
    bit, within, diffs = _outputs_equal(fast["outputs"], slow["outputs"])
    lines = [f"fig15 20s slice: fast {fast['wall_s']:.2f}s "
             f"slow {slow['wall_s']:.2f}s "
             f"speedup {slow['wall_s'] / fast['wall_s']:.2f}x",
             f"bit identical: {bit}; within 1e-9: {within}"]
    emit("perf_simcore_smoke", "\n".join(lines))
    assert within, f"fast path changed simulated results: {diffs}"


# -- CLI --------------------------------------------------------------------


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--measure", action="store_true",
                        help="run the probe suite on the current tree")
    parser.add_argument("--emit-bench", action="store_true",
                        help="fast-vs-slow comparison; writes BENCH_perf.json")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workloads (CI)")
    parser.add_argument("--check", action="store_true",
                        help="compare events/sec against the checked-in "
                             "baseline; exit non-zero on >30%% regression")
    parser.add_argument("--write-baseline", action="store_true",
                        help="refresh benchmarks/results/perf_baseline.json "
                             "from this run")
    parser.add_argument("-o", "--output", type=pathlib.Path, default=None)
    args = parser.parse_args(argv)

    if args.emit_bench:
        emit_bench(smoke=args.smoke)
        return

    measured = run_suite(smoke=args.smoke)
    print(json.dumps(measured, indent=2))
    if args.output:
        args.output.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.write_baseline:
        BASELINE_PATH.write_text(json.dumps({
            "note": "perf-smoke baseline: each gated metric's floor is "
                    "its value minus 30%; regenerate with "
                    "`python benchmarks/bench_perf_simcore.py --smoke "
                    "--write-baseline` on the reference machine",
            "events_per_sec": measured["event_churn"]["events_per_sec"],
            "flows_per_sec": measured["flow_churn"]["flows_per_sec"],
            "shard_replay_rps": measured["shard_replay"]
                                        ["requests_per_sec"],
        }, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
    if args.check:
        check_baseline(measured, BASELINE_PATH)


if __name__ == "__main__":
    main()
