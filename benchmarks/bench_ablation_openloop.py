"""Ablation: closed-loop vs open-loop measurement of the same traffic.

The fig15 MAF mix (BERT-Base/RoBERTa-Base/GPT-2, 4:4:1) is replayed with
a flash-crowd overlay through the :mod:`repro.loadgen` frontend twice —
once through a closed-loop connection pool (the naive benchmark harness:
send, wait for the response, send again) and once open-loop (arrivals
fire at their intended times regardless of backpressure, latency
measured from the intended arrival).

Both runs use a fresh server with identical configuration and the same
intended arrival stream, so the difference in reported tail latency is
purely *coordinated omission*: during the overload episodes the closed
loop stops offering load, never samples the stall it induced, and
reports a p99 that no open-world client would observe.
"""

from conftest import full_scale, run_once

from repro.analysis import format_histogram, format_table
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.loadgen import (
    ConstantRate,
    FlashCrowd,
    LoadGen,
    LoadGenConfig,
    MergedTraffic,
    SyntheticTraffic,
    TraceTraffic,
    TrafficClass,
)
from repro.models import build_model
from repro.serving import (
    InferenceServer,
    MAFTraceConfig,
    ServerConfig,
    synthesize_maf_trace,
)
from repro.simkit import Simulator
from repro.units import MS

# The fig15 serving mix (paper Section 5.3.2).
INSTANCE_MIX = (("bert-base", 64), ("roberta-base", 64), ("gpt2", 16))
CLOSED_CLIENTS = 8


def test_ablation_openloop_vs_closedloop(benchmark, planner_v100, emit):
    duration = 3600.0 if full_scale() else 300.0
    maf_config = MAFTraceConfig(duration=duration, target_rps=150.0, seed=7)

    def make_server():
        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, planner_v100,
                                 ServerConfig(strategy="pt+dha"))
        server.deploy([(build_model(name), count)
                       for name, count in INSTANCE_MIX])
        return server

    def make_traffic(instances):
        # The MAF trace replayed verbatim, plus a flash crowd at 40% of
        # the run that pushes the 4-GPU server well past saturation —
        # the stall that separates the two measurement disciplines.
        trace = synthesize_maf_trace(instances, maf_config)
        crowd = FlashCrowd(start=0.4 * duration,
                           duration=max(10.0, 0.05 * duration),
                           magnitude=1500.0)
        overlay = SyntheticTraffic(
            [TrafficClass("flash-crowd", crowd, instances, qos="burst")],
            seed=maf_config.seed)
        return MergedTraffic([TraceTraffic(trace.arrivals), overlay])

    def run():
        reports = {}
        for mode in ("closed", "open"):
            server = make_server()
            traffic = make_traffic(list(server.instances))
            config = LoadGenConfig(duration=duration, mode=mode,
                                   clients=CLOSED_CLIENTS)
            reports[mode] = LoadGen(server, traffic, config).run()
        return reports

    reports = run_once(benchmark, run)
    closed, open_ = reports["closed"], reports["open"]

    rows = []
    for mode, report in (("closed", closed), ("open", open_)):
        metrics = report.metrics
        rows.append([mode, report.offered, report.completed,
                     metrics.p50_latency / MS, metrics.p99_latency / MS,
                     metrics.percentile(99.9) / MS, metrics.goodput])
    gap = open_.metrics.p99_latency / closed.metrics.p99_latency
    blocks = [
        format_table(
            ["mode", "offered", "completed", "p50 (ms)", "p99 (ms)",
             "p99.9 (ms)", "goodput"], rows,
            title=f"Coordinated omission on the MAF trace + flash crowd "
                  f"({CLOSED_CLIENTS} closed-loop clients)"),
        f"omission gap: open p99 / closed p99 = {gap:.1f}x",
        format_histogram(open_.metrics.histogram,
                         title="open-loop latency distribution"),
        format_histogram(closed.metrics.histogram,
                         title="closed-loop latency distribution"),
    ]
    emit("ablation_openloop", "\n\n".join(blocks))

    # Both disciplines saw the same intended arrivals...
    assert open_.offered == closed.offered
    assert open_.completed + open_.shed + open_.dropped == open_.offered
    # ...but the closed loop under-reports the tail it caused: the
    # open-loop p99 must be at least as large (and under this overload,
    # far larger).
    assert open_.metrics.p99_latency >= closed.metrics.p99_latency
    assert gap > 2.0
    # The open-loop goodput correctly reflects the overload.
    assert open_.metrics.goodput < closed.metrics.goodput
