"""Ablation: how much does pipeline awareness (Algorithm 1) matter?

Quantifies the Table 3 story: compare executed cold-start latency under
(a) pure pipelining, (b) the naive per-layer "initial approach", and
(c) Algorithm 1.  The naive plan converts every layer whose isolated
DHA time beats load-then-execute — ignoring that pipelining hides many
of those loads — and also ignores that its zero-copy reads contend with
the load stream.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core import Strategy
from repro.core.plan import ExecutionPlan, Partition
from repro.core.planner import initial_approach
from repro.engine import execute_plan
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.simkit import Simulator
from repro.units import MS

MODELS = ("resnet101", "bert-base", "gpt2")


def _execute(planner, plan):
    machine = Machine(Simulator(), p3_8xlarge())
    process = execute_plan(machine, planner.cost_model, plan, 0)
    return machine.sim.run(process.done)


def test_ablation_pipeline_aware_planning(benchmark, planner_v100, emit):
    def run():
        rows = []
        for name in MODELS:
            model = build_model(name)
            pipeswitch = planner_v100.plan(model, Strategy.PIPESWITCH)
            algorithm1 = planner_v100.plan(model, Strategy.DHA)
            naive_decisions = initial_approach(
                planner_v100.cost_model.model_costs(model, 1))
            naive = ExecutionPlan(
                model=model, batch_size=1,
                decisions=tuple(naive_decisions),
                partitions=(Partition(0, 0, len(model.layers)),),
                strategy="initial-approach", machine_name="p3.8xlarge")
            rows.append([
                name,
                _execute(planner_v100, pipeswitch).latency / MS,
                _execute(planner_v100, naive).latency / MS,
                _execute(planner_v100, algorithm1).latency / MS,
                len(naive.dha_indices()),
                len(algorithm1.dha_indices()),
            ])
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_planner", format_table(
        ["model", "pipeswitch (ms)", "initial approach (ms)",
         "algorithm 1 (ms)", "naive DHA layers", "algo1 DHA layers"],
        rows,
        title="Ablation — per-layer comparison vs pipeline-aware planning "
              "(executed cold-start latency)"))

    for name, pipeswitch, naive, algorithm1, *_ in rows:
        # Algorithm 1 dominates both alternatives on every model.
        assert algorithm1 <= naive * 1.005, name
        assert algorithm1 <= pipeswitch * 1.005, name
