"""Shared fixtures for the paper-reproduction benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  Each benchmark prints the same
rows/series the paper reports and also writes them to
``benchmarks/results/<experiment>.txt`` for later inspection.

Scale knob: serving benchmarks default to scaled-down request counts and
trace durations so the whole harness finishes in minutes; set
``REPRO_FULL=1`` to run the paper-sized versions (e.g., the full 3-hour
MAF trace of Figure 15).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core import DeepPlan
from repro.hw.specs import a5000x2, p3_8xlarge

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale() -> bool:
    """True when REPRO_FULL=1 asks for paper-sized experiments."""
    return os.environ.get("REPRO_FULL") == "1"


@pytest.fixture(scope="session")
def planner_v100() -> DeepPlan:
    """The paper's main platform: 4x V100, PCIe 3.0, NVLink."""
    return DeepPlan(p3_8xlarge(), noise=0.0)


@pytest.fixture(scope="session")
def planner_a5000() -> DeepPlan:
    """The PCIe 4.0 validation platform of Section 5.4."""
    return DeepPlan(a5000x2(), noise=0.0)


@pytest.fixture(scope="session")
def emit():
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, func):
    """Run *func* exactly once under pytest-benchmark timing.

    These are simulations: the meaningful output is the *simulated*
    metrics they print, not wall time, so one round suffices.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
