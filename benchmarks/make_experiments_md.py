#!/usr/bin/env python
"""Assemble EXPERIMENTS.md from benchmarks/results/*.txt.

Run after ``pytest benchmarks/ --benchmark-only`` so the document always
reflects the latest measured numbers:

    python benchmarks/make_experiments_md.py
"""

from __future__ import annotations

import pathlib

RESULTS = pathlib.Path(__file__).parent / "results"
TARGET = pathlib.Path(__file__).parent.parent / "EXPERIMENTS.md"

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (Section 5), reproduced
on the simulated p3.8xlarge and compared against the published values.
Regenerate with:

```bash
python -m pytest benchmarks/ --benchmark-only   # writes benchmarks/results/
python benchmarks/make_experiments_md.py        # rebuilds this file
```

**Reading guidance.** Our substrate is a calibrated discrete-event
simulator, not the authors' AWS testbed, so absolute numbers are model
outputs; the claims we reproduce are the paper's *shapes* — who wins, by
roughly what factor, where crossovers fall. A handful of the paper's own
measurements are used as calibration anchors (marked below); everything
else is out-of-sample. Serving results here use the default scaled-down
request counts; `REPRO_FULL=1` runs the paper-sized versions with the
same qualitative outcomes.
"""

# (results file, title, commentary) in paper order.
SECTIONS = [
    ("fig02_stall_decomposition", "Figure 2 — PipeSwitch latency decomposition", """
**Paper:** under pipelined provisioning, stalls account for 73–75 % of
inference latency for BERT/RoBERTa (large embeddings) and 27–37 % for
ResNet and GPT-2.

**Measured:** BERT/RoBERTa land at 71–76 %, ResNet/GPT-2 at 21–32 %.
GPT-2 Medium comes in slightly below the paper's band (its seq-1024
compute hides more of the loading in our model). **Shape holds.**
"""),
    ("fig05_layer_microbench", "Figure 5 — load-then-execute vs direct-host-access per layer", """
**Paper (Section 3.1):** DHA wins for embeddings at every size (its cost
is independent of table size); small/medium convolutions are close to a
wash and large ones favour loading; fully-connected layers favour loading
at every size; BatchNorm favours DHA, LayerNorm loading.

**Measured:** every winner matches, the embedding DHA time is constant
across table sizes (168 µs for 1.5 MiB and 89.4 MiB alike), the conv gap
widens with size, and FC DHA is ~10× worse. **Shape holds.** (The layer
traffic model is calibrated to Table 1; the *time* winners here are
out-of-sample consequences.)
"""),
    ("table1_pcie_events", "Table 1 — PCIe read transactions (calibration anchor)", """
**Paper:** hardware-counter (PCIeRdCur) readings for loading vs DHA.

**Measured:** all 12 entries within 4 % — this table is what the DHA
traffic model (embedding row gathers, conv ≈1.8× restream, FC tile
re-reads at seq/32, i.e. 12× at 384 tokens) is fitted to.
"""),
    ("fig06_transmission", "Figure 6 — serial vs parallel model transmission", """
**Paper (Section 3.2):** parallel(2) cuts load time 30–45 %;
parallel-pipeline(2) nearly halves it for transformers and ~40 % for
ResNet; with four GPUs (two per switch) the gain mostly evaporates.

**Measured:** parallel(2) reductions of 31–45 %; parallel-pipeline(2)
halves BERT/RoBERTa/GPT-2 load times; four GPUs regress the transformers
back toward two-GPU times. For ResNet-50 parallel and parallel-pipeline
tie (its primary partition, dense with small layers, is the critical
path either way). **Shape holds.**
"""),
    ("table2_pcie_bandwidth", "Table 2 — average PCIe bandwidth (calibration anchor)", """
**Paper:** 9.1–11.5 GB/s effective per lane serial; unchanged with one
cross-switch partner; ~6 GB/s per lane with four GPUs.

**Measured:** within 20 % everywhere and usually much closer — the lane
rate (12 GB/s) and per-copy overhead (28 µs) are fitted to the serial
column; the contended column *emerges* from switch-uplink sharing.
"""),
    ("fig11_single_inference", "Figure 11 — single-inference speedups (the headline)", """
**Paper:** DeepPlan (DHA) beats PipeSwitch on every model (1.10–1.43×
for transformers, 1.01–1.03× for ResNet); PT+DHA is best everywhere —
1.94× for BERT-Base, 2.21× for RoBERTa-Base, 1.74× for BERT-Large over
PipeSwitch; PT alone barely helps GPT-2.

**Measured:** DHA gives 1.12–1.41× on transformers and is never worse
than PipeSwitch; PT+DHA is best on every model with BERT-Base at ~1.9–2.0×
and BERT-Large at ~1.75×. Deviations: our ResNet DHA gain (~1.15–1.2×)
exceeds the paper's 1.01–1.03× — real zero-copy convolution kernels are
evidently worse than our 25 µs-penalty model — and our RoBERTa-Base
PT+DHA (~1.94×) sits below the paper's 2.21× best case. **Shape holds**
(ordering, headline factor, GPT-2's indifference to PT).
"""),
    ("fig11_raw_latency", "Figure 11 (raw latencies)", """
Raw cold-start latencies behind the speedups. PipeSwitch values track
the paper's Table 4 column within ~5–8 % (calibration anchor); the
Baseline and PT columns are out-of-sample.
"""),
    ("table3_plan_excerpts", "Table 3 — generated plan excerpts", """
**Paper:** the per-layer "initial approach" picks DHA for layers whose
isolated time favours it, but DeepPlan re-decides with pipeline
awareness: some mid-network ResNet convolutions flip back to loading
(their load latency is hidden anyway), and GPT-2 keeps only ``wte``
host-side — the published row is X O O O O.

**Measured:** GPT-2's row is exactly X O O O O, and the ResNet-101
excerpt shows the same conv flips (plus BatchNorms converted to kill
stalls). **Matches.**
"""),
    ("table4_interference", "Table 4 — parallel-transmission interference", """
**Paper:** two simultaneous PT+DHA cold-starts slow each other but each
still beats PipeSwitch.

**Measured:** the same property on every model. Absolute PT+DHA(2)
numbers land within ~10 % of the paper's except GPT-2 Medium (~6 % above
the paper but still below PipeSwitch). The mildness of the interference
required issuing borrowed-lane copies at reduced DMA priority
(weight 0.4) — `bench_ablation_priority.py` shows that with equal
priority the exec-bound GPT-2 Medium would fall behind PipeSwitch,
contradicting this table. **Shape holds.**
"""),
    ("fig12_batching", "Figure 12 — throughput with batching 1–8", """
**Paper:** PT+DHA has the best throughput at every batch size; its lead
over PipeSwitch narrows as batching grows the computation that pipelining
can hide behind.

**Measured:** PT+DHA ≥ PipeSwitch at every (model, batch) point, and the
transformer gaps narrow monotonically with batch size. **Shape holds.**
"""),
    ("table5_profiling_cost", "Table 5 — profiling cost", """
**Paper:** one-time per-(model, machine) profiling of seconds to ~a
minute; the DHA pre-run dominates; cost grows with model size and
execution time.

**Measured:** same structure and magnitude (ResNet-50 ≈ 9 s …
GPT-2 Medium ≈ 66 s for 10 iterations). Our per-model ordering differs
from the paper's in one place (the paper's RoBERTa-Large DHA pre-run is
anomalously expensive relative to GPT-2 Medium; ours tracks DHA traffic,
which seq-1024 GPT-2 dominates). The paper's own caveat applies: this is
a one-time cost, not on the serving path.
"""),
    ("fig13_serving_concurrency", "Figure 13 — serving BERT-Base past GPU memory", """
**Paper:** with 100 req/s over growing instance counts on four V100s:
PipeSwitch's p99 degrades sharply from ~120 instances; DeepPlan (DHA)
stays stable to ~160; PT+DHA serves 180 within the 100 ms SLO and
improves goodput 1.84× over PipeSwitch at 180. PipeSwitch fits 100
instances warm, DeepPlan 124, so DeepPlan's cold-starts start later.

**Measured:** PipeSwitch violates the SLO at 120 (p99 ≈ 128 ms); DHA
holds to 160 (≈ 87 ms) and violates at 180; PT+DHA stays within SLO at
180 (≈ 75 ms); warm capacities are exactly 100 and 124; cold-starts
begin at 120 vs 140 on the sweep grid; the goodput ratio at 180 is
≈ 2.2× (paper 1.84×). **Shape holds** — including the two capacity
numbers, which fall out of the 5.8 GB workspace carve-out plus the
planner's decision to keep ~91 MiB of embeddings host-side.
"""),
    ("fig14_large_models", "Figure 14 — serving BERT-Large and GPT-2", """
**Paper:** same experiment at 30 req/s (BERT-Large) and 90 req/s
(GPT-2): DeepPlan improves the tail substantially over PipeSwitch; for
GPT-2 the DHA-vs-PT+DHA gap is small (PT+DHA's single-inference lead
over DHA is narrow there).

**Measured:** both DeepPlan variants dominate PipeSwitch at every
over-capacity point for both models, and GPT-2's DHA and PT+DHA curves
stay within ~25 % of each other. **Shape holds.**
"""),
    ("fig15_maf_trace", "Figure 15 — Azure-Functions-like trace replay", """
**Paper:** replaying a scaled MAF trace (BERT-Base : RoBERTa-Base : GPT-2
= 4:4:1, 150 req/s, 3 h): DeepPlan achieves 98–99 % goodput vs ~81–98 %
for PipeSwitch, keeps p99 under ~100 ms where PipeSwitch exceeds 150 ms,
with occasional non-persistent spikes.

**Measured (synthetic trace with the paper's stated properties —
sustained heavy hitters, fluctuations, spikes, rare-function tail):**
DHA and PT+DHA goodput ≥ 98 %, PipeSwitch below both; whole-trace p99
for PT+DHA a fraction of PipeSwitch's; per-minute curves show the same
occasional spikes that subside. **Shape holds.** (Default run replays a
10-minute slice; `REPRO_FULL=1` replays 3 hours.)
"""),
    ("fig16_pcie4", "Figure 16 — PCIe 4.0 / 2× RTX A5000", """
**Paper (Section 5.4):** the plan-generation approach transfers to a
different machine; the Figure 11 improvement trend holds on two A5000s
with NVLink over PCIe 4.0, where faster links shrink absolute stalls.

**Measured:** same ordering on the `a5000x2` preset (DHA ≥ PipeSwitch,
PT+DHA best), with every cold start absolutely faster than on the PCIe
3.0 V100 box. **Shape holds.**
"""),
    ("ablation_planner", "Ablation — pipeline-aware planning (Algorithm 1)", """
Quantifies Table 3's story on executed latency: the naive per-layer
comparison is better than pure pipelining but Algorithm 1 dominates both
on every model tested.
"""),
    ("ablation_topology", "Ablation — PCIe-switch-aware secondary choice", """
Section 4.3.3's rule, quantified: a same-switch secondary forfeits most
of PT's benefit, and for the exec-bound GPT-2 Medium it is *worse than
not parallelizing at all* — which is why the planner refuses PT without
a cross-switch NVLink peer.
"""),
    ("ablation_priority", "Ablation — borrowed-lane DMA priority", """
The mechanism behind Table 4's mild interference: with equal-priority
copies, a concurrent cold-start's borrowed-lane traffic starves the
victim's first partition; at weight 0.4 both concurrent PT+DHA
cold-starts stay ahead of PipeSwitch on every model.
"""),
    ("ablation_eviction", "Ablation — eviction policy on a heavy-tailed trace", """
The paper's LRU choice, stress-tested: under the skewed MAF-like trace,
recency/frequency-aware policies (LRU, LFU) keep the hot instances
resident and beat random eviction on cold-start rate.
"""),
    ("ablation_large_model", "Extension (§7) — serving beyond GPU memory", """
The paper's "cost-effective alternative to pipeline parallelism":
shedding GPT-2 Medium's embeddings (~200 MiB) to host memory costs
almost no warm latency; shedding dense GEMM weights has a real,
monotonically growing price. The sweep makes the memory/latency
trade-off explicit.
"""),
    ("ablation_moe", "Extension (§7) — mixture-of-experts provisioning", """
The paper's MoE sketch, implemented: once the routed experts of a pass
are identified, provisioning the routed submodel instead of the full
8-expert bank cuts transmission ~65 % and stacks with PT+DHA for a
multi-x total cold-start speedup.
"""),
    ("ablation_dgx1", "Extension — 3-way parallel transmission on DGX-1", """
On an 8-GPU, 4-switch DGX-1 (hybrid cube-mesh NVLink) a primary can
recruit two cross-switch secondaries. The third lane keeps helping the
big load-bound models (BERT-Large) with diminishing returns elsewhere —
consistent with the paper's observation that PT's value tracks how
load-bound the model is.
"""),
    ("ablation_openloop", "Methodology — coordinated omission "
                          "(open vs closed loop)", """
Why the harness measures the way it does: the fig15 MAF mix plus a
flash crowd, measured twice through `repro.loadgen` — once by a
closed-loop connection pool (the naive harness), once open-loop
(arrivals fire at their intended times, latency from intended arrival).
The closed loop's arrivals evaporate during the overload it causes, so
its p99 misses the stall almost entirely; the open-loop p99 is the one
an open-world client population would experience. All latency reporting
in this repo is open-loop-safe (exact-rank percentiles over HDR-style
histograms; goodput counts shed/dropped requests) — see
`docs/loadgen.md`.
"""),
    ("ablation_sharded", "Methodology — sharded parallel replay "
                         "(differential oracle)", """
How large fleet replays scale without giving up determinism: the fleet
is partitioned into per-process shards synchronized in bounded time
epochs (`repro.shard`), with the router acting as an epoch-boundary
message broker. Every row of the sweep — any shard count, serial or
spawn-process backend — reproduces the single-process reference
bit-for-bit (same request outcomes, same merged latency histograms,
same conservation ledgers); wall-clock falls as shards spread the
event-loop work across cores (`REPRO_FULL=1` runs the 100-machine
replay; the >2x speedup criterion applies on hosts with >= 4 CPUs).
See `docs/sharding.md` for the epoch protocol and the lookahead
argument.
"""),
]

FOOTER = """\
## Summary of deviations

1. **ResNet DHA-only speedup** measured ~1.15–1.2× vs the paper's
   1.01–1.03×: our fixed 25 µs zero-copy kernel penalty understates how
   badly real cudnn kernels behave on pinned memory. The qualitative
   claim (ResNet gains least from DHA) is preserved.
2. **RoBERTa-Base PT+DHA** ~1.9–2.0× vs the paper's 2.21× best case
   (and symmetrically our RoBERTa-Large slightly exceeds the paper's).
3. **GPT-2 Medium PT+DHA(2)** ~6 % above the paper's value (but, as the
   paper claims, still below PipeSwitch).
4. **Table 5 profiling costs** match in magnitude and structure but not
   per-model ordering (see that section).
5. Serving defaults use fewer requests than the paper's 1,000+ per point
   and a 10-minute trace slice; `REPRO_FULL=1` removes this difference.

Calibration anchors (fitted, not independent evidence): Table 1 event
counts, Table 2 serial bandwidths, warm BERT-Base latency (9.35 ms),
PipeSwitch Table 4 column, the Figure 13 warm capacities. Everything
else above is out-of-sample behaviour of the calibrated model.

## Wall-clock performance

The numbers above are *simulated* milliseconds; how long the simulator
itself takes to produce them is a separate question. The simulation fast
path (incremental fair-share rebalancing, Algorithm-1 memoization, plan
caching — see `docs/performance.md`) runs the Figure 15 trace replay
~3.2× faster than the pre-change tree with bit-identical simulated
outputs. `make perf` reproduces the measurement and writes
`BENCH_perf.json`; CI's perf-smoke job guards against regressions.
"""


def main() -> None:
    parts = [HEADER]
    missing = []
    for name, title, commentary in SECTIONS:
        path = RESULTS / f"{name}.txt"
        parts.append(f"\n---\n\n## {title}\n{commentary}")
        if path.exists():
            parts.append("```\n" + path.read_text().rstrip() + "\n```\n")
        else:
            missing.append(name)
            parts.append(f"*(run the benchmarks to generate "
                         f"`benchmarks/results/{name}.txt`)*\n")
    parts.append("\n---\n\n" + FOOTER)
    TARGET.write_text("".join(parts))
    status = f"wrote {TARGET}"
    if missing:
        status += f" ({len(missing)} result files missing: {missing})"
    print(status)


if __name__ == "__main__":
    main()
