"""Ablation: eviction policy under a skewed (MAF-like) workload.

The paper evicts the least recently used instance.  Under the synthetic
Azure-Functions trace — heavy-tailed popularity with sustained heavy
hitters — recency/frequency-aware policies keep the hot instances
resident, while FIFO and random eviction churn them out.
"""

from conftest import full_scale, run_once

from repro.analysis import format_table
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.serving import (
    InferenceServer,
    MAFTraceConfig,
    ServerConfig,
    TraceWorkload,
    synthesize_maf_trace,
)
from repro.simkit import Simulator
from repro.units import MS

POLICIES = ("lru", "lfu", "fifo", "random")


def test_ablation_eviction_policy(benchmark, planner_v100, emit):
    duration = 1200.0 if full_scale() else 150.0
    config = MAFTraceConfig(duration=duration, target_rps=150.0, seed=9)

    def run():
        rows = []
        for policy in POLICIES:
            machine = Machine(Simulator(), p3_8xlarge())
            server = InferenceServer(machine, planner_v100, ServerConfig(
                strategy="pt+dha", eviction_policy=policy))
            server.deploy([(build_model("bert-base"), 90),
                           (build_model("roberta-base"), 54)])
            trace = synthesize_maf_trace(list(server.instances), config)
            report = server.run(TraceWorkload(trace.arrivals).generate())
            rows.append([policy,
                         report.metrics.cold_start_rate,
                         report.metrics.p99_latency / MS,
                         report.metrics.goodput,
                         report.evictions])
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_eviction", format_table(
        ["policy", "cold-start rate", "p99 (ms)", "goodput", "evictions"],
        rows,
        title="Ablation — eviction policy on a heavy-tailed MAF-like "
              "trace (144 instances, 150 req/s)"))

    by = {row[0]: row for row in rows}
    # Popularity-aware policies beat churn-blind ones on cold-start rate.
    assert by["lru"][1] < by["random"][1]
    assert by["lfu"][1] < by["random"][1]
