"""Figure 14: 99% latency vs concurrency for BERT-Large (30 req/s) and
GPT-2 (90 req/s).

Paper's claims: DeepPlan significantly improves tail latency over
PipeSwitch for both; for GPT-2 the gap between DHA and PT+DHA is small
(PT+DHA's single-inference lead over DHA is narrow for GPT-2).
"""

from conftest import full_scale, run_once

from repro.analysis import format_series
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.serving import InferenceServer, PoissonWorkload, ServerConfig
from repro.simkit import Simulator
from repro.units import MS

STRATEGIES = ("pipeswitch", "dha", "pt+dha")
SETUPS = {
    # model: (requests/s, concurrency sweep) — rates from the paper.
    "bert-large": (30.0, (28, 32, 36, 40)),
    "gpt2": (90.0, (80, 100, 120, 140)),
}


def _serve(planner, model_name, strategy, concurrency, rate, num_requests):
    machine = Machine(Simulator(), p3_8xlarge())
    server = InferenceServer(machine, planner, ServerConfig(strategy=strategy))
    server.deploy([(build_model(model_name), concurrency)])
    workload = PoissonWorkload(list(server.instances), rate=rate,
                               num_requests=num_requests, seed=23)
    return server.run(workload.generate())


def test_fig14_large_model_serving(benchmark, planner_v100, emit):
    num_requests = 3000 if full_scale() else 800

    def run():
        results = {}
        for model_name, (rate, sweep) in SETUPS.items():
            for strategy in STRATEGIES:
                for concurrency in sweep:
                    report = _serve(planner_v100, model_name, strategy,
                                    concurrency, rate, num_requests)
                    results[model_name, strategy, concurrency] = report
        return results

    results = run_once(benchmark, run)

    blocks = []
    for model_name, (rate, sweep) in SETUPS.items():
        series = {s: [results[model_name, s, c].metrics.p99_latency / MS
                      for c in sweep] for s in STRATEGIES}
        blocks.append(format_series(
            "instances", list(sweep), series,
            title=f"Figure 14 [{model_name}] — 99% latency (ms) "
                  f"@ {rate:.0f} req/s", value_format="{:.1f}"))
    emit("fig14_large_models", "\n\n".join(blocks))

    for model_name, (rate, sweep) in SETUPS.items():
        # Under memory pressure DeepPlan's tail beats PipeSwitch's.
        stressed = sweep[-1]
        ps = results[model_name, "pipeswitch", stressed].metrics.p99_latency
        dha = results[model_name, "dha", stressed].metrics.p99_latency
        ptdha = results[model_name, "pt+dha", stressed].metrics.p99_latency
        assert dha < ps, model_name
        assert ptdha < ps, model_name

    # GPT-2: DHA and PT+DHA are close (paper: "the latency gap ... is
    # not noticeable").
    for concurrency in SETUPS["gpt2"][1]:
        dha = results["gpt2", "dha", concurrency].metrics.p99_latency
        ptdha = results["gpt2", "pt+dha", concurrency].metrics.p99_latency
        assert abs(dha - ptdha) < 0.35 * dha
