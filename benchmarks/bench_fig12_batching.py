"""Figure 12: throughput while batching 1-8, normalized to Baseline at
batch 1.

Paper's claims: DeepPlan (PT+DHA) achieves the best throughput at every
batch size; its lead over PipeSwitch narrows as the batch grows (more
computation gives pipelining more room to hide loads).
"""

from conftest import run_once

from repro.analysis import format_series
from repro.core import Strategy
from repro.engine import run_single_inference
from repro.hw.specs import p3_8xlarge
from repro.models import build_model

MODELS = ("resnet50", "bert-base", "roberta-large", "gpt2-medium")
BATCHES = (1, 2, 4, 8)
STRATEGIES = (Strategy.BASELINE, Strategy.PIPESWITCH, Strategy.PT_DHA)


def test_fig12_batching_throughput(benchmark, planner_v100, emit):
    spec = p3_8xlarge()

    def run():
        table = {}
        for name in MODELS:
            model = build_model(name)
            for batch in BATCHES:
                for strategy in STRATEGIES:
                    result = run_single_inference(
                        spec, model, strategy, batch_size=batch,
                        planner=planner_v100)
                    # Throughput = images (or sequences) per second.
                    table[name, batch, strategy] = batch / result.latency
        return table

    throughput = run_once(benchmark, run)

    blocks = []
    for name in MODELS:
        reference = throughput[name, 1, Strategy.BASELINE]
        series = {
            s.value: [throughput[name, b, s] / reference for b in BATCHES]
            for s in STRATEGIES
        }
        blocks.append(format_series(
            "batch", list(BATCHES), series,
            title=f"Figure 12 [{name}] — throughput normalized to "
                  f"Baseline @ batch 1", value_format="{:.2f}"))
    emit("fig12_batching", "\n\n".join(blocks))

    for name in MODELS:
        gaps = []
        for batch in BATCHES:
            ours = throughput[name, batch, Strategy.PT_DHA]
            pipeswitch = throughput[name, batch, Strategy.PIPESWITCH]
            assert ours >= pipeswitch * 0.999, (name, batch)
            gaps.append(ours / pipeswitch)
        # The PT+DHA lead narrows with batch size for transformers.
        if name != "resnet50":
            assert gaps[-1] < gaps[0], name
