"""Ablation (paper Section 7): provisioning mixture-of-experts models.

The paper anticipates that once the routed experts of a forward pass are
known, DeepPlan need only transmit those.  This benchmark cold-starts an
8-expert/top-2 MoE decoder three ways: full model with PipeSwitch, the
routed submodel with PipeSwitch, and the routed submodel with PT+DHA.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core import Strategy
from repro.engine import execute_plan
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models.moe import (
    build_moe_transformer,
    routed_submodel,
    uniform_routing,
)
from repro.simkit import Simulator
from repro.units import MB, MS


def _execute(planner, plan, secondaries=()):
    machine = Machine(Simulator(), p3_8xlarge())
    process = execute_plan(machine, planner.cost_model, plan, 0,
                           secondaries)
    return machine.sim.run(process.done)


def test_ablation_moe_routed_provisioning(benchmark, planner_v100, emit):
    moe = build_moe_transformer(num_layers=12, num_experts=8, top_k=2,
                                seq_len=1024)
    routed = routed_submodel(moe, uniform_routing(moe, top_k=2, seed=0))

    def run():
        rows = []
        full_plan = planner_v100.plan(moe, Strategy.PIPESWITCH)
        full = _execute(planner_v100, full_plan)
        rows.append(["full model, pipeswitch", moe.param_bytes / MB,
                     full.latency / MS, 1.0])
        routed_plan = planner_v100.plan(routed, Strategy.PIPESWITCH)
        routed_ps = _execute(planner_v100, routed_plan)
        rows.append(["routed experts, pipeswitch",
                     routed.param_bytes / MB, routed_ps.latency / MS,
                     full.latency / routed_ps.latency])
        routed_best = planner_v100.plan(routed, Strategy.PT_DHA)
        routed_dha = _execute(planner_v100, routed_best,
                              planner_v100.secondary_gpus(0, routed_best))
        rows.append(["routed experts, pt+dha", routed.param_bytes / MB,
                     routed_dha.latency / MS,
                     full.latency / routed_dha.latency])
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_moe", format_table(
        ["configuration", "transmitted (MiB)", "cold-start (ms)",
         "speedup vs full"],
        rows,
        title="Ablation — MoE provisioning (8 experts, top-2, 12 blocks): "
              "transmit only the routed experts"))

    speedups = [row[3] for row in rows]
    assert speedups[1] > 1.4   # routing alone cuts transmission deeply
    assert speedups[2] > speedups[1]  # DHA + PT stack on top
