"""Ablation: parallel-transmission scaling on an 8-GPU DGX-1.

The paper's p3.8xlarge caps parallel transmission at two GPUs (one
secondary per other PCIe switch).  A DGX-1 has four switches and a
hybrid-cube-mesh NVLink, so a primary can recruit *two* cross-switch
secondaries: this ablation measures how much a third lane still buys
once the first partition is no longer the bottleneck.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core import Strategy
from repro.engine import execute_plan
from repro.hw.machine import Machine
from repro.hw.specs import dgx1_v100
from repro.models import build_model
from repro.simkit import Simulator
from repro.units import MS

MODELS = ("bert-base", "bert-large", "gpt2-medium")


def _execute(planner, plan, secondaries):
    machine = Machine(Simulator(), dgx1_v100())
    process = execute_plan(machine, planner.cost_model, plan, 0, secondaries)
    return machine.sim.run(process.done)


def test_ablation_dgx1_pt_scaling(benchmark, emit):
    from repro.core import DeepPlan
    planner = DeepPlan(dgx1_v100(), noise=0.0)

    def run():
        rows = []
        for name in MODELS:
            model = build_model(name)
            pipeswitch = planner.plan(model, Strategy.PIPESWITCH)
            two = planner.plan(model, Strategy.PT_DHA, num_gpus=2)
            three = planner.plan(model, Strategy.PT_DHA, num_gpus=3)
            latency_two = _execute(planner, two,
                                   planner.secondary_gpus(0, two)).latency
            latency_three = _execute(planner, three,
                                     planner.secondary_gpus(0, three)).latency
            rows.append([name,
                         pipeswitch.predicted_latency / MS,
                         latency_two / MS,
                         latency_three / MS,
                         latency_two / latency_three])
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_dgx1", format_table(
        ["model", "pipeswitch (ms)", "pt+dha 2 GPUs (ms)",
         "pt+dha 3 GPUs (ms)", "3-way gain"],
        rows,
        title="Ablation — parallel-transmission width on DGX-1 "
              "(four PCIe switches, cube-mesh NVLink)"))

    for name, pipeswitch, two, three, gain in rows:
        assert three <= two * 1.01, name
    by = {row[0]: row for row in rows}
    # The big, load-bound models keep scaling; diminishing returns are
    # expected but the third lane should still matter for BERT-Large.
    assert by["bert-large"][4] > 1.10
