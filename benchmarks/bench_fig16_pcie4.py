"""Figure 16: single-inference speedups on a different system — two RTX
A5000 GPUs with NVLink on PCIe 4.0.

Paper's claim: DeepPlan's plan generation transfers to new hardware; the
improvement trend of Figure 11 holds even though PCIe 4.0 shrinks the
absolute stall times.
"""

from conftest import run_once

from repro.analysis import format_series, normalize
from repro.core import Strategy
from repro.engine import run_single_inference
from repro.hw.specs import a5000x2, p3_8xlarge
from repro.models import MODEL_NAMES, build_model


STRATEGIES = (Strategy.BASELINE, Strategy.PIPESWITCH, Strategy.DHA,
              Strategy.PT, Strategy.PT_DHA)


def test_fig16_pcie4_speedups(benchmark, planner_a5000, planner_v100, emit):
    spec = a5000x2()

    def run():
        table = {}
        for name in MODEL_NAMES:
            model = build_model(name)
            for strategy in STRATEGIES:
                result = run_single_inference(spec, model, strategy,
                                              planner=planner_a5000)
                table[name, strategy] = result.latency
        return table

    latencies = run_once(benchmark, run)

    series = {s.value: [] for s in STRATEGIES}
    for name in MODEL_NAMES:
        base = latencies[name, Strategy.BASELINE]
        for strategy, speedup in zip(
                STRATEGIES,
                normalize([latencies[name, s] for s in STRATEGIES], base)):
            series[strategy.value].append(speedup)
    emit("fig16_pcie4", format_series(
        "model", list(MODEL_NAMES), series,
        title="Figure 16 — speedup over Baseline on 2x RTX A5000 "
              "(PCIe 4.0), batch 1", value_format="{:.2f}"))

    for name in MODEL_NAMES:
        ps = latencies[name, Strategy.PIPESWITCH]
        # The Figure 11 trend holds on the new platform.
        assert latencies[name, Strategy.DHA] <= ps * 1.01, name
        assert latencies[name, Strategy.PT_DHA] <= \
            latencies[name, Strategy.DHA] * 1.01, name
        # PCIe 4.0 makes cold starts absolutely faster than on PCIe 3.0.
        v100 = run_single_inference(p3_8xlarge(), build_model(name),
                                    Strategy.PIPESWITCH,
                                    planner=planner_v100)
        assert ps < v100.latency
