"""Figure 5: per-layer comparison of load-then-execute vs
direct-host-access for embedding, convolutional, and fully-connected
layers (plus the BatchNorm/LayerNorm cases discussed in the text).

Paper's claims: DHA wins for embeddings at every size (load time grows
with the table, DHA cost does not); DHA is competitive for small/medium
convs but loses for large ones; load-then-execute wins for FC layers at
every size; DHA wins for BatchNorm but loses for LayerNorm.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.models import CostModel
from repro.hw.specs import p3_8xlarge
from repro.models.zoo import microbench_layers
from repro.units import MB, US

ORDER = (
    "embedding-medium", "embedding-large",
    "conv-small", "conv-medium", "conv-large",
    "fc-small", "fc-large",
    "batchnorm", "layernorm",
)


def test_fig05_layer_microbench(benchmark, emit):
    cost_model = CostModel(p3_8xlarge())
    layers = microbench_layers()

    def run():
        rows = []
        for key in ORDER:
            layer = layers[key]
            load = cost_model.load_time(layer)
            exec_inmem = cost_model.exec_inmem(layer, 1)
            dha = cost_model.exec_dha(layer, 1)
            rows.append([
                key, layer.param_bytes / MB,
                load / US, exec_inmem / US, (load + exec_inmem) / US,
                dha / US,
                "dha" if dha < load + exec_inmem else "load",
            ])
        return rows

    rows = run_once(benchmark, run)
    emit("fig05_layer_microbench", format_table(
        ["layer", "size (MiB)", "load (us)", "exec (us)",
         "load-then-exec (us)", "direct-host-access (us)", "winner"],
        rows,
        title="Figure 5 — layer execution: load-then-execute vs DHA "
              "(batch 1, V100/PCIe3)"))

    winner = {row[0]: row[6] for row in rows}
    assert winner["embedding-medium"] == "dha"
    assert winner["embedding-large"] == "dha"
    assert winner["conv-small"] == "dha"
    assert winner["conv-large"] == "load"
    assert winner["fc-small"] == "load"
    assert winner["fc-large"] == "load"
    assert winner["batchnorm"] == "dha"
    assert winner["layernorm"] == "load"
    # Medium conv: "the performance difference ... is negligible" (paper).
    by_name = {row[0]: row for row in rows}
    medium_gap = by_name["conv-medium"][5] / by_name["conv-medium"][4]
    assert 0.6 < medium_gap < 1.4
