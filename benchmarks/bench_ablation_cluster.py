"""Ablation: cluster routing policy under a skewed (MAF-like) workload.

Three routers over the same oversubscribed fleet — round-robin,
least-loaded, and the cold-start-cost-aware cache-affinity policy.
Round-robin spreads each instance's traffic over every replica, so the
heavy hitters thrash the GPU caches on all machines at once; affinity
keeps each instance pinned to its warm replica and only spills when the
warm backlog exceeds the planner's predicted provision penalty, which
shows up directly in cold-start rate and tail latency.
"""

from conftest import full_scale, run_once

from repro.analysis import format_table
from repro.cluster import ROUTING_POLICIES, Cluster, ClusterConfig
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.serving import MAFTraceConfig, TraceWorkload, synthesize_maf_trace
from repro.units import MS


def test_ablation_cluster_routing_policy(benchmark, emit):
    duration = 1200.0 if full_scale() else 120.0
    trace_config = MAFTraceConfig(duration=duration, target_rps=80.0,
                                  seed=11)

    def run():
        rows = {}
        for policy in ROUTING_POLICIES:
            cluster = Cluster(p3_8xlarge(), ClusterConfig(
                num_machines=3, replication=2, policy=policy,
                strategy="pt+dha", audit=True))
            # Oversubscribed on purpose: each machine can keep ~36 of
            # its 96 replicas warm, so routing decides who stays warm.
            names = cluster.deploy([(build_model("bert-large"), 90),
                                    (build_model("roberta-large"), 54)])
            trace = synthesize_maf_trace(names, trace_config)
            report = cluster.run(TraceWorkload(trace.arrivals).generate())
            # Fault-free run: every request must complete exactly once
            # (the audit above also enforces this).
            assert report.completed == trace.num_requests
            rows[policy] = [policy,
                            report.metrics.cold_start_rate,
                            report.metrics.p99_latency / MS,
                            report.metrics.goodput,
                            report.completed]
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_cluster_routing", format_table(
        ["policy", "cold-start rate", "p99 (ms)", "goodput", "completed"],
        [rows[p] for p in ROUTING_POLICIES],
        title="Ablation — cluster routing policy on a heavy-tailed "
              "MAF-like trace (144 instances, 3 machines, replication 2, "
              "80 req/s)"))

    affinity = rows["affinity"]
    round_robin = rows["round-robin"]
    # The headline claim: cold-start-aware affinity routing beats
    # replica-oblivious round-robin on both tail latency and cold rate.
    assert affinity[2] <= round_robin[2], "affinity p99 regressed"
    assert affinity[1] <= round_robin[1], "affinity cold-start regressed"
