"""Figure 2: decomposition of PipeSwitch inference latency into GPU
execution time and pipeline stall time, batch size 1.

Paper's claim: stalls account for 73-75% of latency for BERT/RoBERTa
(large embedding layers) and 27-37% for ResNet and GPT-2.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core import Strategy
from repro.engine import run_single_inference
from repro.hw.specs import p3_8xlarge
from repro.models import MODEL_NAMES, build_model
from repro.units import MS


def test_fig02_stall_decomposition(benchmark, planner_v100, emit):
    def run():
        rows = []
        for name in MODEL_NAMES:
            result = run_single_inference(p3_8xlarge(), build_model(name),
                                          Strategy.PIPESWITCH,
                                          planner=planner_v100)
            rows.append([
                name,
                result.execution_time / MS,
                result.total_stall / MS,
                result.latency / MS,
                100.0 * result.total_stall / result.latency,
            ])
        return rows

    rows = run_once(benchmark, run)
    emit("fig02_stall_decomposition", format_table(
        ["model", "gpu exec (ms)", "stall (ms)", "total (ms)", "stall %"],
        rows,
        title="Figure 2 — PipeSwitch latency decomposition (batch 1)\n"
              "paper: BERT/RoBERTa stall 73-75%, ResNet/GPT-2 27-37%"))

    fractions = {row[0]: row[4] for row in rows}
    assert 65 < fractions["bert-base"] < 85
    assert 65 < fractions["roberta-large"] < 85
    assert 20 < fractions["resnet50"] < 45
    assert 20 < fractions["gpt2"] < 45
