"""Ablation: PCIe-switch-aware secondary-GPU selection.

Section 3.2 / 4.3.3: parallel transmission must pick a secondary on a
*different* PCIe switch — two GPUs behind one switch share its uplink
and halve each other's bandwidth.  This ablation runs PT with the
topology-aware choice (gpu0 + gpu2) against the naive nearest-GPU choice
(gpu0 + gpu1) and a no-NVLink fallback.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core import Strategy
from repro.engine import execute_plan
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.simkit import Simulator
from repro.units import MS

MODELS = ("bert-base", "bert-large", "gpt2-medium")


def _execute(planner, plan, secondaries):
    machine = Machine(Simulator(), p3_8xlarge())
    process = execute_plan(machine, planner.cost_model, plan, 0, secondaries)
    return machine.sim.run(process.done)


def test_ablation_switch_aware_gpu_choice(benchmark, planner_v100, emit):
    def run():
        rows = []
        for name in MODELS:
            model = build_model(name)
            plan = planner_v100.plan(model, Strategy.PT)
            serial = planner_v100.plan(model, Strategy.PIPESWITCH)
            cross_switch = _execute(planner_v100, plan, [2]).latency
            same_switch = _execute(planner_v100, plan, [1]).latency
            rows.append([name,
                         serial.predicted_latency / MS,
                         cross_switch / MS,
                         same_switch / MS,
                         same_switch / cross_switch])
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_topology", format_table(
        ["model", "no PT (ms)", "PT cross-switch (ms)",
         "PT same-switch (ms)", "same/cross"],
        rows,
        title="Ablation — secondary-GPU choice for parallel transmission\n"
              "(same-switch secondaries contend on the shared uplink)"))

    by_model = {row[0]: row for row in rows}
    for name, serial, cross, same, ratio in rows:
        assert cross < serial, name        # topology-aware PT helps
        assert ratio > 1.2, name           # naive choice wastes most of it
    # For the exec-bound GPT-2 Medium, a same-switch secondary is worse
    # than not parallelizing at all — the reason DeepPlan refuses PT
    # without a cross-switch NVLink peer (Section 4.3.3).
    assert by_model["gpt2-medium"][3] > by_model["gpt2-medium"][1]
