"""Figure 11 + Table 3: single cold-start inference speedups for all
eight models under the five execution options, and excerpts of the
generated plans.

Paper's claims: DeepPlan (DHA) beats PipeSwitch on every model
(1.10-1.43x for transformers, ~1.0x for ResNet); PT+DHA is best
everywhere, peaking at 1.94x (BERT-Base) / 2.21x (RoBERTa-Base) over
PipeSwitch; GPT-2 gains little from PT alone.
"""

from conftest import run_once

from repro.analysis import format_series, format_table, normalize
from repro.core import ExecMethod, Strategy
from repro.engine import run_single_inference
from repro.hw.specs import p3_8xlarge
from repro.models import MODEL_NAMES, build_model
from repro.units import MS

STRATEGIES = (Strategy.BASELINE, Strategy.PIPESWITCH, Strategy.DHA,
              Strategy.PT, Strategy.PT_DHA)


def test_fig11_single_inference_speedups(benchmark, planner_v100, emit):
    def run():
        table = {}
        for name in MODEL_NAMES:
            model = build_model(name)
            for strategy in STRATEGIES:
                result = run_single_inference(p3_8xlarge(), model, strategy,
                                              planner=planner_v100)
                table[name, strategy] = result.latency
        return table

    latencies = run_once(benchmark, run)

    series = {s.value: [] for s in STRATEGIES}
    for name in MODEL_NAMES:
        base = latencies[name, Strategy.BASELINE]
        speedups = normalize(
            [latencies[name, s] for s in STRATEGIES], base)
        for strategy, speedup in zip(STRATEGIES, speedups):
            series[strategy.value].append(speedup)

    emit("fig11_single_inference", format_series(
        "model", list(MODEL_NAMES), series,
        title="Figure 11 — speedup over Baseline, batch 1 "
              "(higher is better)", value_format="{:.2f}"))

    raw = format_table(
        ["model"] + [s.value + " (ms)" for s in STRATEGIES],
        [[name] + [latencies[name, s] / MS for s in STRATEGIES]
         for name in MODEL_NAMES],
        title="Figure 11 (raw) — cold-start latency (ms)")
    emit("fig11_raw_latency", raw)

    for name in MODEL_NAMES:
        ps = latencies[name, Strategy.PIPESWITCH]
        assert latencies[name, Strategy.DHA] <= ps * 1.01, name
        assert latencies[name, Strategy.PT_DHA] <= \
            latencies[name, Strategy.DHA] * 1.01, name
    headline = (latencies["bert-base", Strategy.PIPESWITCH]
                / latencies["bert-base", Strategy.PT_DHA])
    assert 1.7 < headline < 2.2


def test_table3_plan_excerpts(benchmark, planner_v100, emit):
    """Table 3: plan excerpts showing pipeline-aware decisions."""
    from repro.core.planner import initial_approach

    def run():
        blocks = []

        resnet = build_model("resnet101")
        naive = initial_approach(planner_v100.cost_model.model_costs(resnet, 1))
        plan = planner_v100.plan(resnet, Strategy.DHA)
        # A mid-network window (the paper shows layers 63-69).
        loadable = resnet.loadable_indices()
        window = loadable[60:67]
        rows = [["layer"] + [resnet.layers[i].kind.value for i in window],
                ["initial approach"] + [
                    "X" if naive[i] is ExecMethod.DHA else "O"
                    for i in window],
                ["DeepPlan (DHA)"] + [
                    "X" if plan.method(i) is ExecMethod.DHA else "O"
                    for i in window]]
        blocks.append(format_table(
            ["" for _ in rows[0]], rows,
            title="Table 3a — ResNet-101 mid-network plan excerpt "
                  "(O: load, X: direct-host-access)"))

        gpt2 = build_model("gpt2")
        naive_gpt = initial_approach(planner_v100.cost_model.model_costs(gpt2, 1))
        plan_gpt = planner_v100.plan(gpt2, Strategy.DHA)
        front = gpt2.loadable_indices()[:5]
        rows = [["layer"] + [gpt2.layers[i].name for i in front],
                ["initial approach"] + [
                    "X" if naive_gpt[i] is ExecMethod.DHA else "O"
                    for i in front],
                ["DeepPlan (DHA)"] + [
                    "X" if plan_gpt.method(i) is ExecMethod.DHA else "O"
                    for i in front]]
        blocks.append(format_table(
            ["" for _ in rows[0]], rows,
            title="Table 3b — GPT-2 front-of-model plan excerpt"))
        return blocks, plan_gpt, front

    blocks, plan_gpt, front = run_once(benchmark, run)
    emit("table3_plan_excerpts", "\n\n".join(blocks))

    # Paper Table 3b: DeepPlan keeps wte host-side, loads everything else.
    marks = ["O" if plan_gpt.method(i) is ExecMethod.LOAD else "X"
             for i in front]
    assert marks == ["X", "O", "O", "O", "O"]
