"""Table 4: interference between two simultaneous parallel
transmissions.

Paper's claim: when two GPUs (on different switches) each run a PT+DHA
cold start, they borrow each other's lanes and slow down — but each
remains faster than PipeSwitch.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core import Strategy
from repro.engine import run_concurrent_cold_starts, run_single_inference
from repro.hw.specs import p3_8xlarge
from repro.models import MODEL_NAMES, build_model
from repro.units import MS

PAPER = {  # PipeSwitch(1), PT+DHA(1), PT+DHA(2), milliseconds
    "resnet50": (12.03, 8.93, 11.97),
    "resnet101": (19.85, 17.71, 21.19),
    "bert-base": (40.51, 20.88, 30.45),
    "bert-large": (122.37, 70.56, 108.16),
    "roberta-base": (45.86, 20.83, 34.48),
    "roberta-large": (129.58, 70.26, 107.87),
    "gpt2": (48.41, 33.38, 35.98),
    "gpt2-medium": (134.10, 101.83, 112.71),
}


def test_table4_parallel_transmission_interference(benchmark, planner_v100,
                                                   emit):
    spec = p3_8xlarge()

    def run():
        rows = []
        for name in MODEL_NAMES:
            model = build_model(name)
            pipeswitch = run_single_inference(
                spec, model, Strategy.PIPESWITCH, planner=planner_v100)
            alone = run_single_inference(
                spec, model, Strategy.PT_DHA, planner=planner_v100)
            both = run_concurrent_cold_starts(
                spec, model, Strategy.PT_DHA, primaries=[0, 2],
                planner=planner_v100)
            contended = sum(r.latency for r in both) / len(both)
            paper = PAPER[name]
            rows.append([name,
                         pipeswitch.latency / MS, paper[0],
                         alone.latency / MS, paper[1],
                         contended / MS, paper[2]])
        return rows

    rows = run_once(benchmark, run)
    emit("table4_interference", format_table(
        ["model", "PipeSwitch(1)", "paper", "PT+DHA(1)", "paper ",
         "PT+DHA(2)", "paper  "],
        rows, title="Table 4 — inference latency (ms) with 1 vs 2 "
                    "concurrent parallel-transmission cold-starts"))

    for name, ps, _, alone, _, contended, _ in rows:
        assert contended > alone * 0.999, name     # interference slows
        assert contended < ps, name                # but still beats PS
