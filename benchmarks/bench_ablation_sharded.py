"""Ablation: sharded parallel replay vs the single-process oracle.

A synthetic fleet replays one Poisson trace under every (shard count,
backend) combination.  Outcome signatures must be bit-identical across
the whole sweep — the differential guarantee of :mod:`repro.shard` —
while wall-clock time falls as spawn-backed shards split the
discrete-event work across cores.

The default run uses a 16-machine fleet so the sweep finishes in
seconds; ``REPRO_FULL=1`` scales to the 100-machine synthetic replay of
the issue's acceptance criterion, where the 4-shard pipelined process
backend must clear a 3x speedup over the single-process reference.  The
sweep also runs the 4-shard process backend in lock-step mode to
isolate the pipelining contribution (route-ahead lets the broker plan
epoch k+1 while the workers execute epoch k).  The speedup bar is
asserted only when the host exposes at least 4 CPUs — on fewer cores
the spawn workers time-slice one core and the sweep still proves
bit-identity, but a parallel speedup is physically unavailable.
"""

import os
import time

from conftest import full_scale, run_once

from repro.analysis import format_table
from repro.cluster.cluster import ClusterConfig
from repro.cluster.faults import random_fault_schedule
from repro.hw.specs import p3_8xlarge
from repro.serving.workload import PoissonWorkload
from repro.shard import ChaosEvent, ShardConfig, ShardedReplay


def scenario():
    if full_scale():
        num_machines, num_requests, rate = 100, 60000, 2000.0
        catalog = [("resnet50", 40), ("bert-base", 40), ("gpt2", 20)]
    else:
        num_machines, num_requests, rate = 16, 800, 120.0
        catalog = [("resnet50", 8), ("bert-base", 8), ("gpt2", 4)]
    config = ClusterConfig(num_machines=num_machines, replication=2,
                           policy="affinity", audit=True,
                           breaker_cooldown=0.0)
    instances = [f"{model}#{k}" for model, count in catalog
                 for k in range(count)]
    requests = PoissonWorkload(instances, rate=rate,
                               num_requests=num_requests,
                               seed=15).generate()
    faults = random_fault_schedule(
        [f"m{i}" for i in range(num_machines)],
        max(2, num_machines // 20), requests[-1].arrival_time, seed=15)
    return config, catalog, requests, faults


def test_ablation_sharded_replay(benchmark, emit):
    config, catalog, requests, faults = scenario()
    sweep = [(1, "serial", True), (2, "serial", True), (4, "serial", True),
             (2, "process", True), (4, "process", False),
             (4, "process", True)]

    def run():
        results = []
        for num_shards, backend, pipelined in sweep:
            # 250 ms epochs: work per boundary dominates the epoch
            # exchange.  The epoch grid is part of the protocol, so it
            # is held constant across the sweep; ``pipelined`` is not —
            # both drive modes execute the same route-ahead protocol
            # and must land on identical outcomes.
            replay = ShardedReplay(p3_8xlarge(), config, ShardConfig(
                num_shards=num_shards, backend=backend,
                epoch_length=0.250, pipelined=pipelined))
            replay.deploy(catalog)
            start = time.perf_counter()
            report = replay.run(requests, fault_schedule=faults)
            results.append((num_shards, backend, pipelined,
                            time.perf_counter() - start, report))
        return results

    results = run_once(benchmark, run)

    reference = results[0][4]
    signature = reference.outcome_signature()
    for num_shards, backend, pipelined, _, report in results[1:]:
        mode = "pipelined" if pipelined else "lock-step"
        assert report.outcome_signature() == signature, (
            f"{num_shards}-shard {backend} ({mode}) replay diverged "
            f"from the single-process reference")
        assert report.ledger == reference.ledger

    base_wall = results[0][3]
    rows = []
    for num_shards, backend, pipelined, wall, report in results:
        label = f"{num_shards}x {backend}"
        if backend == "process" and not pipelined:
            label += " lock-step"
        rows.append([label, wall,
                     base_wall / wall, report.epochs,
                     report.completed, report.ledger.retries,
                     report.ledger.dropped])
    speedups = {(s, b, p): base_wall / w
                for s, b, p, w, _ in results}
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    blocks = [
        format_table(
            ["configuration", "wall (s)", "speedup", "epochs",
             "completed", "retries", "dropped"], rows,
            title=f"Sharded replay sweep "
                  f"({config.num_machines} machines, "
                  f"{len(requests)} requests; outcomes bit-identical "
                  f"across the sweep)"),
        f"4-shard process speedup over the single-process reference: "
        f"{speedups[(4, 'process', True)]:.2f}x pipelined, "
        f"{speedups[(4, 'process', False)]:.2f}x lock-step "
        f"({cpus} CPU(s) available)",
    ]
    emit("ablation_sharded", "\n\n".join(blocks))

    assert reference.ledger.submitted == len(requests)

    # Recovery overhead probe: the same trace with two injected worker
    # crashes.  Outcomes must stay bit-identical to the crash-free
    # reference (the journal fast-forward restores the exact pre-crash
    # state), and the wall-clock delta is the price of two respawns
    # plus their replayed epochs.
    chaos = (ChaosEvent(shard_id=0, epoch=4, kind="kill"),
             ChaosEvent(shard_id=1, epoch=9, kind="kill"))
    replay = ShardedReplay(p3_8xlarge(), config, ShardConfig(
        num_shards=2, backend="process", epoch_length=0.250,
        chaos=chaos, worker_timeout=60.0, max_worker_restarts=2,
        restart_backoff=0.01))
    replay.deploy(catalog)
    start = time.perf_counter()
    recovered = replay.run(requests, fault_schedule=faults)
    chaos_wall = time.perf_counter() - start
    assert recovered.outcome_signature() == signature, (
        "crash-injected replay diverged from the crash-free reference")
    assert recovered.worker_restarts == 2
    crash_free_wall = results[3][3]  # the (2, process, pipelined) run
    emit("ablation_sharded_chaos",
         f"crash recovery: 2 injected kills -> "
         f"{recovered.worker_restarts} restarts, "
         f"{recovered.replayed_epochs} epochs replayed; wall "
         f"{chaos_wall:.2f}s vs {crash_free_wall:.2f}s crash-free "
         f"(+{chaos_wall - crash_free_wall:.2f}s recovery overhead) — "
         f"outcomes bit-identical")

    if full_scale() and cpus >= 4:
        # Acceptance criterion: >3x at 4 shards on the 100-machine
        # synthetic replay, with route-ahead pipelining and the
        # columnar wire protocol.  The scaled-down default is dominated
        # by spawn startup, and hosts with fewer than 4 CPUs time-slice
        # the workers, so the bar applies to the full-size run on
        # adequate hardware only.
        assert speedups[(4, "process", True)] > 3.0
