"""Figure 13: 99% latency, goodput, and cold-start rate for BERT-Base
while the number of deployed instances grows past GPU memory.

Setup follows the paper: four V100s, 100 req/s Poisson arrivals spread
uniformly over the instances, SLO 100 ms, 1000 measured requests after
warm-up.

Paper's claims: PipeSwitch's p99 blows up at ~120 instances; DeepPlan
(DHA) is stable to ~160; PT+DHA serves 180 within the SLO and improves
goodput ~1.8x over PipeSwitch at 180.  PipeSwitch fits 100 instances
warm; DeepPlan fits 124 (embeddings stay host-side), so its cold-starts
begin later.
"""

from conftest import full_scale, run_once

from repro.analysis import format_series
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.serving import InferenceServer, PoissonWorkload, ServerConfig
from repro.simkit import Simulator
from repro.units import MS

STRATEGIES = ("pipeswitch", "dha", "pt+dha")
CONCURRENCIES = (100, 120, 140, 160, 180, 200)
RATE = 100.0
SLO = 100 * MS


def _serve(planner, strategy, concurrency, num_requests, seed=11):
    machine = Machine(Simulator(), p3_8xlarge())
    server = InferenceServer(machine, planner,
                             ServerConfig(strategy=strategy, slo=SLO))
    server.deploy([(build_model("bert-base"), concurrency)])
    workload = PoissonWorkload(list(server.instances), rate=RATE,
                               num_requests=num_requests, seed=seed)
    return server.run(workload.generate())


def test_fig13_serving_concurrency_sweep(benchmark, planner_v100, emit):
    num_requests = 5000 if full_scale() else 1000

    def run():
        return {
            (strategy, concurrency): _serve(planner_v100, strategy,
                                            concurrency, num_requests)
            for strategy in STRATEGIES
            for concurrency in CONCURRENCIES
        }

    reports = run_once(benchmark, run)

    p99 = {s: [reports[s, c].metrics.p99_latency / MS
               for c in CONCURRENCIES] for s in STRATEGIES}
    goodput = {s: [reports[s, c].metrics.goodput for c in CONCURRENCIES]
               for s in STRATEGIES}
    cold = {s: [reports[s, c].metrics.cold_start_rate
                for c in CONCURRENCIES] for s in STRATEGIES}

    text = "\n\n".join([
        format_series("instances", list(CONCURRENCIES), p99,
                      title="Figure 13 (top) — 99% latency (ms), "
                            "BERT-Base @ 100 req/s", value_format="{:.1f}"),
        format_series("instances", list(CONCURRENCIES), goodput,
                      title="Figure 13 (middle) — goodput (SLO 100 ms)"),
        format_series("instances", list(CONCURRENCIES), cold,
                      title="Figure 13 (bottom) — cold-start rate"),
    ])
    emit("fig13_serving_concurrency", text)

    by = {s: dict(zip(CONCURRENCIES, p99[s])) for s in STRATEGIES}
    # All strategies comfortable while everything fits warm.
    assert by["pipeswitch"][100] < SLO / MS
    # PipeSwitch violates the SLO once memory pressure begins (>=120).
    assert by["pipeswitch"][140] > SLO / MS
    # DHA holds until ~160; PT+DHA until ~180 (paper's claim).
    assert by["dha"][160] < SLO / MS
    assert by["pt+dha"][180] < SLO / MS
    # Warm capacity: 100 for PipeSwitch, 124 for DeepPlan.
    assert reports["pipeswitch", 140].prewarmed == 100
    assert reports["pt+dha", 140].prewarmed == 124
    # Goodput advantage at 180 (paper: 1.84x).
    ratio = (reports["pt+dha", 180].metrics.goodput
             / reports["pipeswitch", 180].metrics.goodput)
    assert ratio > 1.4
