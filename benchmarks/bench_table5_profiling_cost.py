"""Table 5: time spent profiling models (10 iterations per layer).

Paper's claims: profiling is a one-time, seconds-scale cost that grows
with model size and execution time; the DHA pre-run dominates.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core import LayerProfiler
from repro.models import build_model

MODELS = ("resnet50", "bert-base", "roberta-large", "gpt2-medium")

PAPER_TOTAL_S = {  # Table 5 "Total" column
    "resnet50": 3.92,
    "bert-base": 12.40,
    "roberta-large": 75.87,
    "gpt2-medium": 40.81,
}


def test_table5_profiling_cost(benchmark, planner_v100, emit):
    profiler = LayerProfiler(planner_v100.cost_model, iterations=10,
                             noise=0.0)

    def run():
        rows = []
        for name in MODELS:
            report = profiler.profile(build_model(name))
            rows.append([name, report.time_dha, report.time_inmem,
                         report.time_load, report.total_time,
                         PAPER_TOTAL_S[name]])
        return rows

    rows = run_once(benchmark, run)
    emit("table5_profiling_cost", format_table(
        ["model", "DHA (s)", "in-memory (s)", "layer load (s)", "total (s)",
         "paper total (s)"],
        rows, title="Table 5 — profiling cost with 10 iterations"))

    totals = {row[0]: row[4] for row in rows}
    # Shape: one-time cost in seconds, ordered by model weight/exec time.
    assert totals["resnet50"] < totals["bert-base"]
    assert totals["bert-base"] < totals["gpt2-medium"]
    for name in MODELS:
        assert 1.0 < totals[name] < 120.0
    for name, time_dha, time_inmem, time_load, *_ in rows:
        assert time_dha > time_inmem, name
