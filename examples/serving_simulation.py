#!/usr/bin/env python
"""Serving under memory pressure: PipeSwitch vs DeepPlan.

Deploys 160 BERT-Base tenants on a 4x-V100 server (only ~100-124 fit in
GPU memory at once), drives 100 req/s of Poisson traffic at them, and
compares tail latency, goodput and cold-start behaviour across
provisioning strategies — the scenario of the paper's Figure 13.

Run:  python examples/serving_simulation.py
"""

from repro import (
    DeepPlan,
    InferenceServer,
    Machine,
    PoissonWorkload,
    ServerConfig,
    Simulator,
    build_model,
    p3_8xlarge,
)
from repro.analysis import format_table
from repro.units import MS

INSTANCES = 160
RATE = 100.0
REQUESTS = 1500
SLO_MS = 100.0


def serve(planner: DeepPlan, strategy: str):
    machine = Machine(Simulator(), p3_8xlarge())
    server = InferenceServer(machine, planner, ServerConfig(
        strategy=strategy, slo=SLO_MS * MS))
    server.deploy([(build_model("bert-base"), INSTANCES)])
    workload = PoissonWorkload(list(server.instances), rate=RATE,
                               num_requests=REQUESTS, seed=42)
    return server.run(workload.generate())


def main() -> None:
    planner = DeepPlan(p3_8xlarge())
    rows = []
    for strategy in ("baseline", "pipeswitch", "dha", "pt+dha"):
        report = serve(planner, strategy)
        metrics = report.metrics
        rows.append([
            strategy,
            report.prewarmed,
            metrics.p50_latency / MS,
            metrics.p99_latency / MS,
            f"{metrics.goodput:.1%}",
            f"{metrics.cold_start_rate:.1%}",
            report.evictions,
        ])
    print(format_table(
        ["strategy", "warm capacity", "p50 (ms)", "p99 (ms)", "goodput",
         "cold starts", "evictions"],
        rows,
        title=f"{INSTANCES} BERT-Base tenants on 4x V100, {RATE:.0f} req/s, "
              f"SLO {SLO_MS:.0f} ms"))
    print()
    print("DeepPlan keeps 24 more tenants warm (embeddings live in host "
          "memory) and\nprovisions the rest ~2x faster, so its tail stays "
          "inside the SLO where\nPipeSwitch's does not.")


if __name__ == "__main__":
    main()
