#!/usr/bin/env python
"""Beyond one GPU's memory: DHA as the overflow mechanism, and MoE.

The paper's future-work section (Section 7) sketches two extensions this
library implements:

1. Serving a model whose parameters exceed the GPU memory budget by
   pinning the overflow host-side and executing it with
   direct-host-access — sweeping the budget shows the warm-latency price
   of each megabyte shed.
2. Mixture-of-experts provisioning: once the routed experts of a forward
   pass are identified, only those need transmission.

Run:  python examples/beyond_gpu_memory.py
"""

from repro import DeepPlan, Strategy, build_model, p3_8xlarge
from repro.analysis import format_table
from repro.core.large_model import plan_within_budget, warm_latency
from repro.models.moe import (
    build_moe_transformer,
    routed_submodel,
    uniform_routing,
)
from repro.units import MB, MS


def memory_budget_sweep() -> None:
    model = build_model("gpt2-medium")
    planner = DeepPlan(p3_8xlarge())
    cost_model = planner.cost_model
    print(f"=== {model.name}: {model.param_bytes / MB:.0f} MiB of "
          f"parameters ===")
    rows = []
    for budget_mb in (1400, 1160, 896, 640, 384):
        plan = plan_within_budget(cost_model, model, int(budget_mb * MB))
        rows.append([budget_mb, plan.gpu_resident_bytes / MB,
                     plan.host_resident_bytes / MB,
                     warm_latency(cost_model, plan) / MS])
    print(format_table(
        ["GPU budget (MiB)", "resident (MiB)", "host-side (MiB)",
         "warm latency (ms)"],
        rows, title="Serving under a memory budget (layers shed "
                    "cheapest-per-byte first)"))


def moe_provisioning() -> None:
    moe = build_moe_transformer(num_layers=12, num_experts=8, top_k=2)
    routing = uniform_routing(moe, top_k=2, seed=0)
    routed = routed_submodel(moe, routing)
    planner = DeepPlan(p3_8xlarge())
    print(f"\n=== {moe.name}: {moe.param_bytes / MB:.0f} MiB, "
          f"8 experts/block, top-2 routing ===")
    rows = []
    for label, spec, strategy in (
            ("full model, pipeswitch", moe, Strategy.PIPESWITCH),
            ("routed experts, pipeswitch", routed, Strategy.PIPESWITCH),
            ("routed experts, pt+dha", routed, Strategy.PT_DHA)):
        plan = planner.plan(spec, strategy)
        rows.append([label, spec.param_bytes / MB,
                     plan.predicted_latency / MS])
    print(format_table(
        ["configuration", "transmitted (MiB)", "predicted cold-start (ms)"],
        rows, title="MoE cold-start: transmit only what the pass needs"))


def main() -> None:
    memory_budget_sweep()
    moe_provisioning()


if __name__ == "__main__":
    main()
