#!/usr/bin/env python
"""Replaying a production-like trace (the paper's Figure 15 scenario).

Synthesizes a Microsoft-Azure-Functions-like invocation trace (heavy
sustained functions, diurnal fluctuation, spikes, a long tail of rare
functions), maps functions onto BERT-Base / RoBERTa-Base / GPT-2
instances in the paper's 4:4:1 ratio, and replays it against the serving
system, printing a per-minute report.

Run:  python examples/trace_replay.py [duration-seconds]
"""

import sys

from repro import (
    DeepPlan,
    InferenceServer,
    MAFTraceConfig,
    Machine,
    ServerConfig,
    Simulator,
    TraceWorkload,
    build_model,
    p3_8xlarge,
    synthesize_maf_trace,
)
from repro.analysis import format_table
from repro.units import MS


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 600.0
    planner = DeepPlan(p3_8xlarge())

    machine = Machine(Simulator(), p3_8xlarge())
    server = InferenceServer(machine, planner,
                             ServerConfig(strategy="pt+dha"))
    server.deploy([(build_model("bert-base"), 64),
                   (build_model("roberta-base"), 64),
                   (build_model("gpt2"), 16)])

    config = MAFTraceConfig(duration=duration, target_rps=150.0, seed=1)
    trace = synthesize_maf_trace(list(server.instances), config)
    print(f"trace: {trace.num_requests} requests over {duration:.0f}s "
          f"({trace.mean_rps:.1f} req/s mean)")
    class_counts = {}
    for klass in trace.instance_classes.values():
        class_counts[klass] = class_counts.get(klass, 0) + 1
    print(f"instance behaviour classes: {class_counts}")
    print()

    report = server.run(TraceWorkload(trace.arrivals).generate())

    rows = [[int(w.window_start // 60), w.num_requests, w.p99_latency / MS,
             f"{w.goodput:.1%}", f"{w.cold_start_rate:.1%}"]
            for w in report.metrics.windows(60.0)]
    print(format_table(
        ["minute", "requests", "p99 (ms)", "goodput", "cold starts"],
        rows, title="Per-minute serving report (DeepPlan PT+DHA)"))
    print()
    summary = report.metrics.summary()
    print(f"whole trace: p99 {summary['p99_ms']:.1f} ms, goodput "
          f"{summary['goodput']:.1%}, cold-start rate "
          f"{summary['cold_start_rate']:.1%}, "
          f"{report.evictions} evictions")


if __name__ == "__main__":
    main()
