#!/usr/bin/env python
"""Inspecting DeepPlan's decisions: why each layer loads or stays host-side.

Reproduces the reasoning behind the paper's Table 3 for GPT-2:

* profile every layer (load time, in-memory execution, DHA execution),
* compare the naive per-layer choice ("initial approach") against
  Algorithm 1's pipeline-aware plan,
* show where parallel transmission splits the model and what ends up on
  which PCIe lane.

Run:  python examples/plan_inspection.py [model-name]
"""

import sys

from repro import DeepPlan, ExecMethod, Strategy, build_model, p3_8xlarge
from repro.analysis import format_table
from repro.core.planner import initial_approach
from repro.units import MB, US


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "gpt2"
    model = build_model(model_name)
    planner = DeepPlan(p3_8xlarge())

    profile = planner.profile(model)
    naive = initial_approach(planner.cost_model.model_costs(model, 1))
    plan = planner.plan(model, Strategy.PT_DHA)

    print(f"=== {model.summary()} ===\n")

    rows = []
    for i in model.loadable_indices()[:14]:
        layer = model.layers[i]
        costs = profile.layers[i]
        rows.append([
            layer.name, layer.kind.value, layer.param_bytes / MB,
            costs.load_time / US, costs.exec_inmem / US, costs.exec_dha / US,
            "X" if naive[i] is ExecMethod.DHA else "O",
            "X" if plan.method(i) is ExecMethod.DHA else "O",
            plan.partition_of(i),
        ])
    print(format_table(
        ["layer", "kind", "MiB", "load (us)", "exec (us)", "dha (us)",
         "naive", "deepplan", "part"],
        rows,
        title="Front of the model: profiled costs and decisions\n"
              "(O = load to GPU, X = direct-host-access; 'naive' ignores "
              "pipelining)"))

    print()
    print(plan.summary())
    print()
    for partition in plan.partitions:
        nbytes = plan.partition_load_bytes(partition.index)
        role = "primary lane" if partition.is_primary else \
            "secondary lane (merged back over NVLink)"
        print(f"  partition {partition.index}: layers "
              f"[{partition.start}:{partition.stop}) -> {nbytes / MB:.1f} "
              f"MiB over the {role}")
    print()
    print(f"profiling cost (one-time, {profile.iterations} iterations): "
          f"{profile.total_time:.2f}s "
          f"(dha {profile.time_dha:.2f}s, in-memory "
          f"{profile.time_inmem:.2f}s, load {profile.time_load:.2f}s)")

    # Watch the plan execute: DHA kernels up front, both PCIe lanes busy,
    # the execution stream chewing through the merged partitions.
    from repro.analysis import render_gantt
    from repro.engine import run_single_inference

    result = run_single_inference(p3_8xlarge(), model, Strategy.PT_DHA,
                                  planner=planner)
    print()
    print(render_gantt(result))


if __name__ == "__main__":
    main()
