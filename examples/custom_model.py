#!/usr/bin/env python
"""Bringing your own model: plan a custom architecture with DeepPlan.

The model zoo covers the paper's eight benchmarks, but DeepPlan plans any
:class:`~repro.models.graph.ModelSpec`.  This example builds a
retrieval-style two-tower ranker — a huge embedding front (the kind of
layer DHA loves) followed by dense interaction layers (the kind it
avoids) — and shows how the planner splits it between host and GPU.

Run:  python examples/custom_model.py
"""

from repro import DeepPlan, ExecMethod, Strategy, p3_8xlarge
from repro.analysis import format_table
from repro.models.graph import ModelSpec
from repro.models.layers import activation, embedding, layernorm, linear
from repro.units import MB, MS


def build_two_tower_ranker() -> ModelSpec:
    """A recommendation-style ranker: big embeddings, small MLP."""
    hidden = 512
    tokens = 64  # items scored per request
    layers = [
        embedding("user.id_table", 2_000_000, 64, 1),
        embedding("item.id_table", 5_000_000, 64, tokens),
        embedding("item.category_table", 10_000, 64, tokens),
        layernorm("features.ln", 192, tokens),
        linear("interact.fc1", 192, hidden, tokens),
        activation("interact.relu1", tokens * hidden),
        linear("interact.fc2", hidden, hidden, tokens),
        activation("interact.relu2", tokens * hidden),
        linear("interact.fc3", hidden, 1, tokens),
    ]
    return ModelSpec(name="two-tower-ranker", layers=tuple(layers),
                     seq_len=tokens, family="custom")


def main() -> None:
    model = build_two_tower_ranker()
    print(model.summary())
    print()

    planner = DeepPlan(p3_8xlarge())
    rows = []
    for strategy in (Strategy.PIPESWITCH, Strategy.DHA, Strategy.PT_DHA):
        plan = planner.plan(model, strategy)
        rows.append([
            strategy.value,
            plan.predicted_latency / MS,
            plan.gpu_resident_bytes / MB,
            plan.host_resident_bytes / MB,
        ])
    print(format_table(
        ["strategy", "predicted cold-start (ms)", "GPU-resident (MiB)",
         "host-resident (MiB)"],
        rows, title="Plans for the custom ranker on p3.8xlarge"))
    print()

    plan = planner.plan(model, Strategy.DHA)
    decision_rows = [
        [layer.name, layer.kind.value, layer.param_bytes / MB,
         "direct-host-access" if plan.method(i) is ExecMethod.DHA
         else "load"]
        for i, layer in enumerate(model.layers) if layer.loadable
    ]
    print(format_table(["layer", "kind", "MiB", "decision"], decision_rows,
                       title="Per-layer decisions (DHA plan)"))
    print()
    print("The ~1.7 GB of embedding tables never cross PCIe on a cold "
          "start —\nonly the rows a request touches do.")


if __name__ == "__main__":
    main()
