#!/usr/bin/env python
"""Quickstart: plan a model with DeepPlan and watch a cold-start run.

This walks the paper's core loop end to end on the simulated p3.8xlarge
(4x V100):

1. build BERT-Base from the model zoo,
2. generate execution plans for all five strategies,
3. execute one cold-start inference per strategy and compare latencies.

Run:  python examples/quickstart.py
"""

from repro import (
    DeepPlan,
    Strategy,
    build_model,
    p3_8xlarge,
    run_single_inference,
)
from repro.units import MS


def main() -> None:
    machine_spec = p3_8xlarge()
    model = build_model("bert-base")
    print(model.summary())
    print()

    # One-time step per (model, machine): profile layers, generate plans.
    planner = DeepPlan(machine_spec)
    plan = planner.plan(model, Strategy.PT_DHA)
    print(plan.summary())
    print()

    print(f"{'strategy':<12} {'cold-start':>12} {'stall':>10} "
          f"{'speedup':>9}")
    baseline_latency = None
    for strategy in Strategy:
        result = run_single_inference(machine_spec, model, strategy,
                                      planner=planner)
        if strategy is Strategy.BASELINE:
            baseline_latency = result.latency
        speedup = baseline_latency / result.latency
        print(f"{strategy.value:<12} {result.latency / MS:>9.2f} ms "
              f"{result.total_stall / MS:>7.2f} ms {speedup:>8.2f}x")

    print()
    print("The paper's headline: PT+DHA cold-starts BERT-Base ~1.9x faster "
          "than PipeSwitch\n(and ~2.5x faster than load-then-execute).")


if __name__ == "__main__":
    main()
