"""Tests for the runtime invariant-audit layer."""

import pytest

from repro.audit import AuditError, MachineAuditor, ServingAuditor
from repro.core import DeepPlan, Strategy
from repro.engine import execute_plan, execute_warm
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.serving import (
    InferenceServer,
    PoissonWorkload,
    Request,
    ServerConfig,
)
from repro.simkit import Simulator


@pytest.fixture(scope="module")
def planner():
    return DeepPlan(p3_8xlarge(), noise=0.0)


@pytest.fixture(scope="module")
def bert():
    return build_model("bert-base")


def audited_machine():
    machine = Machine(Simulator(), p3_8xlarge())
    return machine, MachineAuditor(machine)


class TestMachineAuditor:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_cold_start_runs_clean(self, planner, bert, strategy):
        plan = planner.plan(bert, strategy)
        machine, auditor = audited_machine()
        process = execute_plan(machine, planner.cost_model, plan, 0,
                               planner.secondary_gpus(0, plan))
        machine.sim.run(process.done)
        assert auditor.check_quiesce() == []
        assert auditor.checks > 0

    def test_warm_execution_runs_clean(self, planner, bert):
        plan = planner.plan(bert, Strategy.PT_DHA)
        machine, auditor = audited_machine()
        process = execute_warm(machine, planner.cost_model, plan, 0)
        machine.sim.run(process.done)
        assert auditor.check_quiesce() == []

    def test_must_attach_before_traffic(self):
        machine = Machine(Simulator(), p3_8xlarge())
        machine.host_to_device(0, 1e9)
        machine.sim.run(until=1e-3)  # past copy setup; the flow is active
        with pytest.raises(ValueError, match="before traffic"):
            MachineAuditor(machine)

    def test_detach_removes_hooks(self):
        machine, auditor = audited_machine()
        auditor.detach()
        assert machine.network.observer is None
        assert machine.host.observer is None
        assert all(gpu.memory.observer is None for gpu in machine.gpus)

    def test_unbalanced_reserve_release_is_flagged(self):
        machine, auditor = audited_machine()
        memory = machine.gpus[0].memory
        memory.reserve("model-a", 1024)
        # Fault injection: bypass the accounting the auditor shadows.
        memory._used += 512
        memory.reserve("model-b", 2048)
        assert any(v.invariant == "memory.balance"
                   for v in auditor.violations)

    def test_unknown_release_is_flagged(self):
        machine, auditor = audited_machine()
        memory = machine.gpus[0].memory
        memory.reserve("model-a", 1024)
        auditor.on_release(memory, "never-reserved", 1)
        assert any(v.invariant == "memory.unknown_release"
                   for v in auditor.violations)

    def test_leaked_staging_tag_is_flagged_at_quiesce(self):
        machine, auditor = audited_machine()
        machine.gpus[1].memory.reserve_staging("stage:part1", 4096)
        violations = auditor.check_quiesce()
        assert any(v.invariant == "memory.staging_leak" for v in violations)

    def test_active_flow_at_quiesce_is_flagged(self):
        machine, auditor = audited_machine()
        machine.host_to_device(0, 1e9)
        machine.sim.run(until=1e-3)  # flow started but far from done
        violations = auditor.check_quiesce()
        assert any(v.invariant == "network.quiesced" for v in violations)

    def test_link_conservation_holds_under_contention(self, planner, bert):
        plan = planner.plan(bert, Strategy.PT_DHA)
        machine, auditor = audited_machine()
        first = execute_plan(machine, planner.cost_model, plan, 0,
                             planner.secondary_gpus(0, plan))
        second = execute_plan(machine, planner.cost_model, plan, 2,
                              planner.secondary_gpus(2, plan))
        machine.sim.run(first.done)
        machine.sim.run(second.done)
        assert auditor.check_quiesce() == []


class TestServingAuditor:
    def make_audited_server(self, planner):
        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, planner, ServerConfig(audit=True))
        return server

    def test_config_flag_creates_auditor(self, planner):
        server = self.make_audited_server(planner)
        assert isinstance(server.auditor, ServingAuditor)

    def test_run_is_clean(self, planner, bert):
        server = self.make_audited_server(planner)
        server.deploy([(bert, 6)])
        workload = PoissonWorkload(list(server.instances), rate=30.0,
                                   num_requests=60, seed=2)
        report = server.run(workload.generate())
        assert len(report.metrics) == 60
        assert server.auditor.violations == []

    def test_lost_record_raises_audit_error(self, planner, bert):
        server = self.make_audited_server(planner)
        server.deploy([(bert, 2)])
        server.run([Request(0, "bert-base#0", 0.0)])
        server.metrics.records.pop()  # simulate a dropped record
        with pytest.raises(AuditError, match="exactly_once"):
            server.auditor.check_quiesce()

    def test_double_submission_raises_audit_error(self, planner, bert):
        server = self.make_audited_server(planner)
        server.deploy([(bert, 2)])
        server.run([Request(0, "bert-base#0", 0.0)])
        server.auditor.on_submit(Request(1, "bert-base#0", 0.0))
        with pytest.raises(AuditError, match="exactly_once"):
            server.auditor.check_quiesce()

    def test_check_quiesce_can_report_without_raising(self, planner, bert):
        server = self.make_audited_server(planner)
        server.deploy([(bert, 2)])
        server.run([Request(0, "bert-base#0", 0.0)])
        server.metrics.records.pop()
        violations = server.auditor.check_quiesce(raise_on_violation=False)
        assert any(v.invariant == "requests.exactly_once"
                   for v in violations)
