"""Tests for the runtime invariant-audit layer."""

import random

import pytest

from repro.audit import AuditError, MachineAuditor, ServingAuditor
from repro.core import DeepPlan, Strategy
from repro.engine import execute_plan, execute_warm
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.serving import (
    InferenceServer,
    PoissonWorkload,
    Request,
    ServerConfig,
)
from repro.simkit import Simulator


@pytest.fixture(scope="module")
def planner():
    return DeepPlan(p3_8xlarge(), noise=0.0)


@pytest.fixture(scope="module")
def bert():
    return build_model("bert-base")


def audited_machine():
    machine = Machine(Simulator(), p3_8xlarge())
    return machine, MachineAuditor(machine)


class TestMachineAuditor:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_cold_start_runs_clean(self, planner, bert, strategy):
        plan = planner.plan(bert, strategy)
        machine, auditor = audited_machine()
        process = execute_plan(machine, planner.cost_model, plan, 0,
                               planner.secondary_gpus(0, plan))
        machine.sim.run(process.done)
        assert auditor.check_quiesce() == []
        assert auditor.checks > 0

    def test_warm_execution_runs_clean(self, planner, bert):
        plan = planner.plan(bert, Strategy.PT_DHA)
        machine, auditor = audited_machine()
        process = execute_warm(machine, planner.cost_model, plan, 0)
        machine.sim.run(process.done)
        assert auditor.check_quiesce() == []

    def test_must_attach_before_traffic(self):
        machine = Machine(Simulator(), p3_8xlarge())
        machine.host_to_device(0, 1e9)
        machine.sim.run(until=1e-3)  # past copy setup; the flow is active
        with pytest.raises(ValueError, match="before traffic"):
            MachineAuditor(machine)

    def test_detach_removes_hooks(self):
        machine, auditor = audited_machine()
        auditor.detach()
        assert machine.network.observer is None
        assert machine.host.observer is None
        assert all(gpu.memory.observer is None for gpu in machine.gpus)

    def test_unbalanced_reserve_release_is_flagged(self):
        machine, auditor = audited_machine()
        memory = machine.gpus[0].memory
        memory.reserve("model-a", 1024)
        # Fault injection: bypass the accounting the auditor shadows.
        memory._used += 512
        memory.reserve("model-b", 2048)
        assert any(v.invariant == "memory.balance"
                   for v in auditor.violations)

    def test_unknown_release_is_flagged(self):
        machine, auditor = audited_machine()
        memory = machine.gpus[0].memory
        memory.reserve("model-a", 1024)
        auditor.on_release(memory, "never-reserved", 1)
        assert any(v.invariant == "memory.unknown_release"
                   for v in auditor.violations)

    def test_leaked_staging_tag_is_flagged_at_quiesce(self):
        machine, auditor = audited_machine()
        machine.gpus[1].memory.reserve_staging("stage:part1", 4096)
        violations = auditor.check_quiesce()
        assert any(v.invariant == "memory.staging_leak" for v in violations)

    def test_active_flow_at_quiesce_is_flagged(self):
        machine, auditor = audited_machine()
        machine.host_to_device(0, 1e9)
        machine.sim.run(until=1e-3)  # flow started but far from done
        violations = auditor.check_quiesce()
        assert any(v.invariant == "network.quiesced" for v in violations)

    def test_link_conservation_holds_under_contention(self, planner, bert):
        plan = planner.plan(bert, Strategy.PT_DHA)
        machine, auditor = audited_machine()
        first = execute_plan(machine, planner.cost_model, plan, 0,
                             planner.secondary_gpus(0, plan))
        second = execute_plan(machine, planner.cost_model, plan, 2,
                              planner.secondary_gpus(2, plan))
        machine.sim.run(first.done)
        machine.sim.run(second.done)
        assert auditor.check_quiesce() == []

    def test_byte_conservation_property(self, conservation_seed):
        """Every byte a link is credited with was progressed by a flow.

        Random contended schedules over the PCIe topology; the quiesce
        ledger (bytes_carried vs. summed completed-flow progress, per
        link) and the running over-credit check must both hold.  The
        nightly sweep runs this over the full 200 seeds.
        """
        rng = random.Random(conservation_seed)
        machine, auditor = audited_machine()
        requested: dict[object, float] = {}
        flows = []
        for _ in range(12):
            path = machine.pcie_path(rng.randrange(4))
            nbytes = rng.uniform(1e3, 5e6)
            flows.append(machine.network.transfer(
                path, nbytes,
                setup_delay=rng.uniform(0.0, 0.01),
                weight=rng.choice([0.5, 1.0, 1.0, 2.0])))
            for link in path:
                requested[link] = requested.get(link, 0.0) + nbytes
        machine.sim.run()
        assert all(flow.triggered for flow in flows)
        assert auditor.check_quiesce() == []
        # The ledger is not vacuous: each touched link carried exactly
        # the bytes requested across it (deltas from an idle start).
        for link, expected in requested.items():
            assert link.bytes_carried == pytest.approx(expected, rel=1e-6,
                                                       abs=1e-1)

    def test_non_positive_max_rate_rejected_before_any_traffic(self):
        """The ValueError fires before the network mutates any state, so
        the auditor sees neither a start nor a rate assignment."""
        machine, auditor = audited_machine()
        path = machine.pcie_path(0)
        for bad in (0.0, -5.0):
            with pytest.raises(ValueError, match="max_rate"):
                machine.network.transfer(path, 1e6, max_rate=bad)
        assert not machine.network.active_flows
        assert auditor.checks == 0
        assert auditor.violations == []

    def test_on_rates_assigned_fires_on_quiesce(self):
        """The final completion's rebalance must still notify the
        observer: auditors close their ledgers on the quiescent (empty)
        assignment, and skipping it leaves them one assignment short."""

        class _QuiesceProbe(MachineAuditor):
            def __init__(self, machine):
                super().__init__(machine)
                self.active_at_assignment = []

            def on_rates_assigned(self, network):
                self.active_at_assignment.append(len(network.active_flows))
                super().on_rates_assigned(network)

        machine = Machine(Simulator(), p3_8xlarge())
        probe = _QuiesceProbe(machine)
        done = machine.network.transfer(machine.pcie_path(1), 1e6)
        machine.sim.run(done)
        assert probe.active_at_assignment
        assert probe.active_at_assignment[-1] == 0
        assert probe.check_quiesce() == []


class TestServingAuditor:
    def make_audited_server(self, planner):
        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, planner, ServerConfig(audit=True))
        return server

    def test_config_flag_creates_auditor(self, planner):
        server = self.make_audited_server(planner)
        assert isinstance(server.auditor, ServingAuditor)

    def test_run_is_clean(self, planner, bert):
        server = self.make_audited_server(planner)
        server.deploy([(bert, 6)])
        workload = PoissonWorkload(list(server.instances), rate=30.0,
                                   num_requests=60, seed=2)
        report = server.run(workload.generate())
        assert len(report.metrics) == 60
        assert server.auditor.violations == []

    def test_lost_record_raises_audit_error(self, planner, bert):
        server = self.make_audited_server(planner)
        server.deploy([(bert, 2)])
        server.run([Request(0, "bert-base#0", 0.0)])
        server.metrics.records.pop()  # simulate a dropped record
        with pytest.raises(AuditError, match="exactly_once"):
            server.auditor.check_quiesce()

    def test_double_submission_raises_audit_error(self, planner, bert):
        server = self.make_audited_server(planner)
        server.deploy([(bert, 2)])
        server.run([Request(0, "bert-base#0", 0.0)])
        server.auditor.on_submit(Request(1, "bert-base#0", 0.0))
        with pytest.raises(AuditError, match="exactly_once"):
            server.auditor.check_quiesce()

    def test_check_quiesce_can_report_without_raising(self, planner, bert):
        server = self.make_audited_server(planner)
        server.deploy([(bert, 2)])
        server.run([Request(0, "bert-base#0", 0.0)])
        server.metrics.records.pop()
        violations = server.auditor.check_quiesce(raise_on_violation=False)
        assert any(v.invariant == "requests.exactly_once"
                   for v in violations)
