"""Degraded-mode serving: device/link faults, failover, SLO guardrails.

Covers the robustness layer end to end:

* runtime link-capacity changes in the flow network (fast and slow path
  agree, in-flight flows rebalance);
* the machine-level device fault API (GPU fail/recover, link
  degrade/restore) and its interaction with peer selection;
* precomputed degraded fallback plans (planner, cache upgrade,
  serialization round-trip);
* mid-provision failover: a parallel transmission whose peer GPU dies or
  whose NVLink degrades aborts cleanly and the request is served on the
  fallback plan instead of dropped;
* SLO guardrails: deadline-based load shedding and the router's
  cold-start circuit breaker;
* fault-schedule validation and the device/mixed granularities of
  :func:`random_fault_schedule`;
* server lifecycle edges (fail_over while draining, recover after a
  crash mid-prewarm, double drain) under the invariant auditor.
"""

import random

import pytest

from repro.cluster import (
    Cluster,
    ClusterConfig,
    FaultEvent,
    FaultInjector,
    random_fault_schedule,
)
from repro.core import DeepPlan, Strategy
from repro.core.serialization import plan_from_dict, plan_to_dict
from repro.errors import TopologyError, WorkloadError
from repro.engine.transmission import spread_gpus
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.serving import InferenceServer, PoissonWorkload, Request, ServerConfig
from repro.simkit import FlowNetwork, Link, Simulator
from repro.units import MS


@pytest.fixture(scope="module")
def bert():
    return build_model("bert-base")


@pytest.fixture(scope="module")
def planner():
    return DeepPlan(p3_8xlarge(), noise=0.0)


def make_server(planner, *, prewarm=False, watch=True, audit=True,
                **config_kwargs):
    machine = Machine(Simulator(), p3_8xlarge())
    config = ServerConfig(strategy="pt+dha", prewarm=prewarm, audit=audit,
                          **config_kwargs)
    server = InferenceServer(machine, planner, config)
    server.watch_device_faults = watch
    return server


def one_request(name, request_id=0, arrival=0.0):
    return Request(request_id=request_id, instance_name=name,
                   arrival_time=arrival)


# ---------------------------------------------------------------------------
# Runtime link capacity changes (simkit layer)
# ---------------------------------------------------------------------------


class TestLinkCapacityChanges:
    def test_mid_flight_halving_stretches_completion(self):
        sim = Simulator()
        network = FlowNetwork(sim)
        link = Link("lane", 10e9)
        done = network.transfer([link], 10e9)  # one second at nominal
        sim.run(until=0.5)
        network.set_link_bandwidth(link, 5e9)  # half the remaining rate
        sim.run(done)
        # 0.5 s at 10 GB/s moved half the bytes; the rest takes 1 s more.
        assert sim.now == pytest.approx(1.5, rel=1e-9)
        assert link.bandwidth == 5e9
        assert link.nominal_bandwidth == 10e9

    def test_restore_speeds_the_flow_back_up(self):
        sim = Simulator()
        network = FlowNetwork(sim)
        link = Link("lane", 10e9)
        done = network.transfer([link], 10e9)
        sim.run(until=0.25)
        network.set_link_bandwidth(link, 2.5e9)
        sim.run(until=0.75)  # 1.25 GB more at quarter speed
        network.set_link_bandwidth(link, 10e9)
        sim.run(done)
        # 3.75 GB moved by t=0.75; the remaining 6.25 GB takes 0.625 s.
        assert sim.now == pytest.approx(1.375, rel=1e-9)

    def test_shared_link_rebalances_both_flows(self):
        sim = Simulator()
        network = FlowNetwork(sim)
        link = Link("lane", 10e9)
        network.transfer([link], 20e9)
        network.transfer([link], 20e9)
        sim.run(until=1.0)
        network.set_link_bandwidth(link, 4e9)
        for flow in network.active_flows:
            assert flow.rate == pytest.approx(2e9, rel=1e-9)

    def test_nonpositive_bandwidth_rejected(self):
        sim = Simulator()
        network = FlowNetwork(sim)
        link = Link("lane", 10e9)
        with pytest.raises(ValueError):
            network.set_link_bandwidth(link, 0.0)

    def test_incremental_matches_slow_path_under_capacity_changes(self):
        """Seeded random traffic with interleaved capacity changes must
        complete identically on the incremental and from-scratch paths."""

        def run(incremental):
            rng = random.Random(0xCAFE)
            sim = Simulator()
            network = FlowNetwork(sim, incremental=incremental)
            links = [Link(f"l{i}", rng.uniform(2e9, 20e9)) for i in range(4)]
            nominal = [link.bandwidth for link in links]
            completions = []

            def traffic():
                for _ in range(12):
                    path = rng.sample(links, rng.randint(1, 2))
                    done = network.transfer(path, rng.uniform(1e8, 2e9))
                    done.add_callback(
                        lambda event: completions.append(sim.now))
                    yield sim.timeout(rng.uniform(0.0, 0.05))

            def chaos():
                for _ in range(8):
                    yield sim.timeout(rng.uniform(0.01, 0.05))
                    k = rng.randrange(len(links))
                    network.set_link_bandwidth(
                        links[k], nominal[k] * rng.uniform(0.1, 1.0))

            sim.process(traffic(), name="traffic")
            sim.process(chaos(), name="chaos")
            sim.run()
            assert not network.active_flows
            return completions

        assert run(incremental=True) == run(incremental=False)


# ---------------------------------------------------------------------------
# Machine-level device faults
# ---------------------------------------------------------------------------


class TestMachineDeviceFaults:
    def test_gpu_fail_and_recover_roundtrip(self):
        machine = Machine(Simulator(), p3_8xlarge())
        assert machine.fail_gpu(1)
        assert machine.gpus[1].failed
        assert not machine.fail_gpu(1)  # already failed
        assert [g.index for g in machine.healthy_gpus()] == [0, 2, 3]
        assert machine.recover_gpu(1)
        assert not machine.recover_gpu(1)
        assert len(machine.healthy_gpus()) == 4

    def test_degrade_and_restore_link(self):
        machine = Machine(Simulator(), p3_8xlarge())
        link = machine.link("gpu0.pcie")
        assert machine.degrade_link("gpu0.pcie", 0.25)
        assert link.bandwidth == pytest.approx(link.nominal_bandwidth * 0.25)
        assert machine.link_degraded("gpu0.pcie")
        assert not machine.degrade_link("gpu0.pcie", 0.25)  # no change
        assert machine.restore_link("gpu0.pcie")
        assert not machine.link_degraded("gpu0.pcie")
        assert not machine.restore_link("gpu0.pcie")

    def test_bad_factor_and_unknown_link_rejected(self):
        machine = Machine(Simulator(), p3_8xlarge())
        with pytest.raises(ValueError):
            machine.degrade_link("gpu0.pcie", 0.0)
        with pytest.raises(TopologyError):
            machine.degrade_link("gpu9.pcie", 0.5)
        with pytest.raises(TopologyError):
            machine.link("not-a-link")

    def test_spread_gpus_skips_failed_candidates(self):
        machine = Machine(Simulator(), p3_8xlarge())
        baseline = spread_gpus(machine, 0, 2)
        machine.fail_gpu(baseline[1])
        spread = spread_gpus(machine, 0, 2)
        assert baseline[1] not in spread
        assert len(spread) == 2

    def test_spread_gpus_rejects_failed_target(self):
        machine = Machine(Simulator(), p3_8xlarge())
        machine.fail_gpu(0)
        with pytest.raises(TopologyError, match="failed"):
            spread_gpus(machine, 0, 2)


# ---------------------------------------------------------------------------
# Fallback plans (planner / cache / serialization)
# ---------------------------------------------------------------------------


class TestFallbackPlans:
    def test_with_fallback_attaches_degraded_plan(self, bert):
        planner = DeepPlan(p3_8xlarge(), noise=0.0)
        plan = planner.plan(bert, Strategy.PT_DHA, with_fallback=True)
        assert plan.uses_parallel_transmission
        fallback = plan.fallback
        assert fallback is not None
        assert not fallback.uses_parallel_transmission
        assert fallback.num_partitions == 1
        assert fallback.model.name == plan.model.name
        assert fallback.batch_size == plan.batch_size

    def test_cached_plan_upgraded_in_place(self, bert):
        planner = DeepPlan(p3_8xlarge(), noise=0.0)
        bare = planner.plan(bert, Strategy.PT_DHA)
        assert bare.fallback is None
        upgraded = planner.plan(bert, Strategy.PT_DHA, with_fallback=True)
        assert upgraded.fallback is not None
        # The cache entry was replaced: later plain lookups see the
        # upgraded plan instead of rebuilding it.
        assert planner.plan(bert, Strategy.PT_DHA) is upgraded

    def test_single_partition_plan_needs_no_fallback(self, bert):
        planner = DeepPlan(p3_8xlarge(), noise=0.0)
        plan = planner.plan(bert, Strategy.DHA, with_fallback=True)
        assert plan.fallback is None

    def test_fallback_round_trips_through_serialization(self, bert):
        planner = DeepPlan(p3_8xlarge(), noise=0.0)
        plan = planner.plan(bert, Strategy.PT_DHA, with_fallback=True)
        clone = plan_from_dict(plan_to_dict(plan))
        assert clone.fallback is not None
        assert clone.fallback.decisions == plan.fallback.decisions
        assert clone.fallback.predicted_latency \
            == plan.fallback.predicted_latency
        # Plans without a fallback keep the original serialized shape.
        bare = planner.plan(bert, Strategy.DHA)
        assert "fallback" not in plan_to_dict(bare)

    def test_parallel_fallback_rejected(self, bert):
        from repro.core.plan import PlanError
        import dataclasses
        planner = DeepPlan(p3_8xlarge(), noise=0.0)
        pt = planner.plan(bert, Strategy.PT_DHA)
        with pytest.raises(PlanError, match="fallback"):
            dataclasses.replace(pt, fallback=pt)


# ---------------------------------------------------------------------------
# Mid-provision failover (server level)
# ---------------------------------------------------------------------------


class TestMidProvisionFailover:
    def _fault_process(self, server, delay, action):
        def process():
            yield server.sim.timeout(delay)
            action()
        return process()

    def test_peer_gpu_death_aborts_to_fallback(self, planner, bert):
        server = make_server(planner)
        instance = server.deploy([(bert, 1)])[0]
        peer = server.machine.parallel_transmission_peers(
            instance.home_gpu)[0]
        delay = 0.3 * instance.plan.predicted_latency

        def kill_peer():
            assert server.machine.fail_gpu(peer)
            server.handle_gpu_failure(peer)

        server.sim.process(self._fault_process(server, delay, kill_peer),
                           name="chaos")
        report = server.run([one_request(instance.name)])
        assert len(report.metrics) == 1
        assert report.aborted_provisions == 1
        assert report.degraded_cold_starts == 1
        record = report.metrics.records[0]
        assert record.degraded and record.cold_start
        assert instance.degraded
        assert instance.current_plan is not instance.plan

    def test_nvlink_degradation_aborts_to_fallback(self, planner, bert):
        server = make_server(planner)
        instance = server.deploy([(bert, 1)])[0]
        machine = server.machine
        peer = machine.parallel_transmission_peers(instance.home_gpu)[0]
        link_name = f"nvlink{peer}->{instance.home_gpu}"
        delay = 0.3 * instance.plan.predicted_latency

        def degrade():
            assert machine.degrade_link(link_name, 0.2)
            server.handle_link_degradation(machine.link(link_name))

        server.sim.process(self._fault_process(server, delay, degrade),
                           name="chaos")
        report = server.run([one_request(instance.name)])
        assert report.aborted_provisions == 1
        assert report.degraded_cold_starts == 1
        assert len(report.metrics) == 1

    def test_mild_degradation_above_threshold_no_abort(self, planner, bert):
        server = make_server(planner)
        instance = server.deploy([(bert, 1)])[0]
        machine = server.machine
        peer = machine.parallel_transmission_peers(instance.home_gpu)[0]
        link_name = f"nvlink{peer}->{instance.home_gpu}"
        delay = 0.3 * instance.plan.predicted_latency

        def degrade():
            machine.degrade_link(link_name, 0.8)  # above the 0.5 threshold
            server.handle_link_degradation(machine.link(link_name))

        server.sim.process(self._fault_process(server, delay, degrade),
                           name="chaos")
        report = server.run([one_request(instance.name)])
        assert report.aborted_provisions == 0
        assert report.degraded_cold_starts == 0
        assert len(report.metrics) == 1

    def test_prefailed_peers_start_directly_degraded(self, planner, bert):
        server = make_server(planner)
        instance = server.deploy([(bert, 1)])[0]
        for peer in server.machine.parallel_transmission_peers(
                instance.home_gpu):
            server.machine.fail_gpu(peer)
        report = server.run([one_request(instance.name)])
        # No provision ever started, so nothing aborted — the cold start
        # went straight to the degraded plan.
        assert report.aborted_provisions == 0
        assert report.degraded_cold_starts == 1
        assert len(report.metrics) == 1

    def test_primary_gpu_death_orphans_request(self, planner, bert):
        server = make_server(planner)
        instance = server.deploy([(bert, 1)])[0]
        home = instance.home_gpu
        orphans = []
        delay = 0.3 * instance.plan.predicted_latency

        request = one_request(instance.name)

        def kill_home():
            server.machine.fail_gpu(home)
            orphans.extend(server.handle_gpu_failure(home))

        server.sim.process(self._fault_process(server, delay, kill_home),
                           name="chaos")
        server.start()
        server.submit(request)
        server.sim.run()
        assert orphans == [request]
        assert server.outstanding == 0
        assert instance.home_gpu != home  # rehomed onto a survivor
        # The auditor tolerates the orphan (exactly-once net of orphans).
        server.auditor.check_quiesce()

    def test_eviction_resets_degraded_plan(self, planner, bert):
        server = make_server(planner)
        instance = server.deploy([(bert, 1)])[0]
        for peer in server.machine.parallel_transmission_peers(
                instance.home_gpu):
            server.machine.fail_gpu(peer)
        server.run([one_request(instance.name)])
        assert instance.degraded
        server._caches[instance.home_gpu].evict(instance)
        assert not instance.degraded
        assert instance.current_plan is instance.plan


# ---------------------------------------------------------------------------
# Deadline guardrail (load shedding)
# ---------------------------------------------------------------------------


class TestDeadlineShedding:
    def test_unmeetable_deadline_sheds_at_admission(self, planner, bert):
        server = make_server(planner, watch=False, deadline=25 * MS)
        instance = server.deploy([(bert, 1)])[0]
        shed = []
        server.on_shed = shed.append
        requests = [one_request(instance.name, request_id=k)
                    for k in range(3)]
        report = server.run(requests)
        # The first cold start (~19 ms predicted) fits the 25 ms
        # deadline; the backlog pushes the rest past it.
        assert report.shed == 2
        assert len(report.metrics) == 1
        assert [r.request_id for r in server.shed_requests] == [1, 2]
        assert len(shed) == 2

    def test_no_deadline_never_sheds(self, planner, bert):
        server = make_server(planner, watch=False)
        instance = server.deploy([(bert, 1)])[0]
        requests = [one_request(instance.name, request_id=k)
                    for k in range(3)]
        report = server.run(requests)
        assert report.shed == 0
        assert len(report.metrics) == 3

    def test_submit_returns_false_on_shed(self, planner, bert):
        server = make_server(planner, watch=False, deadline=25 * MS)
        instance = server.deploy([(bert, 1)])[0]
        server.start()
        assert server.submit(one_request(instance.name, request_id=0))
        assert not server.submit(one_request(instance.name, request_id=1))
        assert server.outstanding == 1

    def test_bad_deadline_rejected(self):
        with pytest.raises(WorkloadError, match="deadline"):
            ServerConfig(deadline=0.0)
        with pytest.raises(WorkloadError, match="threshold"):
            ServerConfig(degraded_link_threshold=0.0)
        with pytest.raises(WorkloadError, match="deadline"):
            ClusterConfig(deadline=-1.0)
        with pytest.raises(WorkloadError, match="breaker"):
            ClusterConfig(breaker_cooldown=-1.0)


# ---------------------------------------------------------------------------
# Router circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def _cluster(self, bert, **kwargs):
        kwargs.setdefault("num_machines", 2)
        kwargs.setdefault("replication", 2)
        kwargs.setdefault("prewarm", False)
        cluster = Cluster(p3_8xlarge(), ClusterConfig(**kwargs))
        cluster.deploy([(bert, 2)])
        return cluster

    def test_tripped_machine_avoided_for_cold_starts(self, bert):
        cluster = self._cluster(bert, policy="round-robin",
                                breaker_cooldown=5.0)
        name = cluster.instance_names[0]
        cluster.router.trip("m0")
        assert cluster.router.breaker_open("m0")
        picks = {cluster.router.route(one_request(name, k)).name
                 for k in range(4)}
        assert picks == {"m1"}

    def test_breaker_expires_after_cooldown(self, bert):
        cluster = self._cluster(bert, breaker_cooldown=5.0)
        cluster.router.trip("m0")
        assert cluster.router.breaker_open("m0")
        cluster.sim.run(until=6.0)
        assert not cluster.router.breaker_open("m0")

    def test_breaker_ignored_when_no_alternative(self, bert):
        cluster = self._cluster(bert, breaker_cooldown=5.0)
        name = cluster.instance_names[0]
        cluster.router.trip("m0")
        cluster.router.trip("m1")
        # Both replicas tripped: serving beats shedding to nowhere.
        assert cluster.router.route(one_request(name)) is not None

    def test_warm_replica_keeps_traffic_despite_trip(self, bert):
        cluster = self._cluster(bert, policy="affinity",
                                breaker_cooldown=5.0)
        name = cluster.instance_names[0]
        cluster.machines[0].server.prewarm()
        cluster.router.trip("m0")
        assert cluster.router.route(one_request(name)).name == "m0"

    def test_disabled_breaker_is_inert(self, bert):
        cluster = self._cluster(bert, breaker_cooldown=0.0)
        cluster.router.trip("m0")
        assert not cluster.router.breaker_open("m0")
        assert cluster.router.breaker_trips == 0


# ---------------------------------------------------------------------------
# Cluster-level chaos (the issue's acceptance scenario)
# ---------------------------------------------------------------------------


class TestClusterDegradedServing:
    def test_peer_gpu_kill_mid_provision_zero_lost(self, bert):
        """Killing a peer GPU mid-parallel-transmission completes every
        request, with at least one degraded cold start accounted."""
        config = ClusterConfig(num_machines=1, replication=1, prewarm=False,
                               audit=True)
        cluster = Cluster(p3_8xlarge(), config)
        names = cluster.deploy([(bert, 1)])
        plan = cluster.machines[0].server.plan_of(names[0])
        home = cluster.machines[0].server.instances[names[0]].home_gpu
        peer = cluster.machines[0].machine.parallel_transmission_peers(
            home)[0]
        schedule = [FaultEvent(0.3 * plan.predicted_latency, "m0",
                               "gpu_fail", gpu=peer)]
        report = cluster.run([one_request(names[0])],
                             fault_schedule=schedule)
        assert report.completed == 1
        assert report.dropped == []
        assert report.degraded_cold_starts >= 1
        assert report.aborted_provisions >= 1
        assert cluster.machines[0].gpu_failures == 1
        assert cluster.machines[0].degraded_provisions >= 1
        summary = report.summary()
        assert summary["degraded_cold_starts"] == 1.0
        assert summary["aborted_provisions"] == 1.0

    def test_home_gpu_kill_retries_on_surviving_gpu(self, bert):
        config = ClusterConfig(num_machines=1, replication=1, prewarm=False,
                               audit=True, max_retries=3)
        cluster = Cluster(p3_8xlarge(), config)
        names = cluster.deploy([(bert, 1)])
        server = cluster.machines[0].server
        plan = server.plan_of(names[0])
        home = server.instances[names[0]].home_gpu
        schedule = [FaultEvent(0.3 * plan.predicted_latency, "m0",
                               "gpu_fail", gpu=home)]
        report = cluster.run([one_request(names[0])],
                             fault_schedule=schedule)
        assert report.completed == 1
        assert report.dropped == []
        assert report.retries >= 1
        assert server.instances[names[0]].home_gpu != home

    def test_device_faults_ignored_on_down_machine(self, bert):
        config = ClusterConfig(num_machines=2, replication=2, prewarm=False)
        cluster = Cluster(p3_8xlarge(), config)
        cluster.deploy([(bert, 2)])
        cluster.crash_machine("m0")
        assert not cluster.fail_gpu("m0", 0)
        assert not cluster.degrade_link("m0", "gpu0.pcie", 0.2)
        assert not cluster.restore_link("m0", "gpu0.pcie")
        assert not cluster.recover_gpu("m0", 0)

    def test_cluster_deadline_conservation_with_shedding(self, bert):
        config = ClusterConfig(num_machines=2, replication=2, prewarm=False,
                               audit=True, deadline=30 * MS)
        cluster = Cluster(p3_8xlarge(), config)
        names = cluster.deploy([(bert, 4)])
        workload = PoissonWorkload(names, rate=400.0, num_requests=200,
                                   seed=11)
        report = cluster.run(workload.generate())
        assert len(report.shed) > 0
        assert (report.completed + len(report.dropped) + len(report.shed)
                == report.submitted)
        assert report.summary()["shed"] == float(len(report.shed))

    def test_retry_keeps_original_submission_time(self, bert):
        """A request re-submitted after fail_over keeps its original
        submitted_at, so its recorded latency includes the outage."""
        config = ClusterConfig(num_machines=1, replication=1, prewarm=False,
                               audit=True, max_retries=8,
                               retry_backoff=20 * MS)
        cluster = Cluster(p3_8xlarge(), config)
        names = cluster.deploy([(bert, 1)])
        plan = cluster.machines[0].server.plan_of(names[0])
        outage = 0.2
        schedule = [
            FaultEvent(0.3 * plan.predicted_latency, "m0", "crash"),
            FaultEvent(0.3 * plan.predicted_latency + outage, "m0",
                       "recover"),
        ]
        report = cluster.run([one_request(names[0])],
                             fault_schedule=schedule)
        assert report.completed == 1
        record = report.metrics.records[0]
        assert record.submitted_at == pytest.approx(0.0)
        # The latency spans the outage, not just the final attempt.
        assert record.latency >= outage


# ---------------------------------------------------------------------------
# Fault-schedule validation and granularities
# ---------------------------------------------------------------------------


class TestFaultValidation:
    def _cluster(self, bert):
        cluster = Cluster(p3_8xlarge(), ClusterConfig(
            num_machines=2, replication=2, prewarm=False))
        cluster.deploy([(bert, 2)])
        return cluster

    def test_unknown_machine_rejected_at_construction(self, bert):
        cluster = self._cluster(bert)
        with pytest.raises(WorkloadError, match="m9"):
            FaultInjector(cluster, [FaultEvent(1.0, "m9", "crash")])

    def test_out_of_range_gpu_rejected(self, bert):
        cluster = self._cluster(bert)
        with pytest.raises(WorkloadError, match="gpu7"):
            FaultInjector(cluster,
                          [FaultEvent(1.0, "m0", "gpu_fail", gpu=7)])

    def test_unknown_link_rejected(self, bert):
        cluster = self._cluster(bert)
        with pytest.raises(WorkloadError, match="nvlink9"):
            FaultInjector(cluster, [FaultEvent(1.0, "m0", "link_degrade",
                                               link="nvlink9->0",
                                               factor=0.5)])

    def test_malformed_events_rejected(self):
        with pytest.raises(WorkloadError, match="action"):
            FaultEvent(1.0, "m0", "explode")
        with pytest.raises(WorkloadError, match="GPU index"):
            FaultEvent(1.0, "m0", "gpu_fail")
        with pytest.raises(WorkloadError, match="link name"):
            FaultEvent(1.0, "m0", "link_degrade", factor=0.5)
        with pytest.raises(WorkloadError, match="factor"):
            FaultEvent(1.0, "m0", "link_degrade", link="nvlink2->0",
                       factor=1.5)

    def test_bad_state_events_skipped_not_raised(self, bert):
        """A schedule whose targets exist but whose state no longer makes
        sense (double gpu_fail, restore of a healthy link) is applied
        where possible and skipped elsewhere — and the log shows which."""
        cluster = self._cluster(bert)
        name = cluster.instance_names[0]
        schedule = [
            FaultEvent(0.001, "m0", "gpu_fail", gpu=3),
            FaultEvent(0.002, "m0", "gpu_fail", gpu=3),   # already failed
            FaultEvent(0.003, "m0", "link_restore", link="gpu0.pcie"),
        ]
        report = cluster.run([one_request(name)], fault_schedule=schedule)
        applied = {(e.time, e.action): ok for e, ok in report.fault_log}
        assert applied[(0.001, "gpu_fail")] is True
        assert applied[(0.002, "gpu_fail")] is False
        assert applied[(0.003, "link_restore")] is False
        assert report.completed == 1

    def test_event_target_rendering(self):
        assert FaultEvent(1.0, "m0", "crash").target == "m0"
        assert FaultEvent(1.0, "m0", "gpu_fail", gpu=2).target == "m0/gpu2"
        assert FaultEvent(1.0, "m0", "link_degrade", link="nvlink2->0",
                          factor=0.25).target == "m0/nvlink2->0 x0.25"


class TestScheduleGranularities:
    def test_default_matches_machine_granularity(self):
        base = random_fault_schedule(["m0", "m1"], 4, 100.0, seed=9)
        explicit = random_fault_schedule(["m0", "m1"], 4, 100.0, seed=9,
                                         granularity="machine")
        assert base == explicit
        assert all(e.action in ("crash", "recover") for e in base)

    def test_device_granularity_emits_device_events_only(self):
        schedule = random_fault_schedule(
            ["m0", "m1"], 8, 100.0, seed=3, granularity="device",
            gpu_count=4, link_names=("gpu0.pcie", "nvlink2->0"))
        assert schedule
        assert all(e.action in ("gpu_fail", "gpu_recover", "link_degrade",
                                "link_restore") for e in schedule)
        for event in schedule:
            if event.gpu is not None:
                assert 0 <= event.gpu < 4
            if event.action == "link_degrade":
                assert event.link in ("gpu0.pcie", "nvlink2->0")
                assert 0 < event.factor < 0.5

    def test_device_faults_come_in_matched_pairs(self):
        schedule = random_fault_schedule(
            ["m0"], 5, 100.0, seed=12, granularity="device",
            gpu_count=4, link_names=("gpu0.pcie",))
        fails = [e for e in schedule if e.action == "gpu_fail"]
        recovers = [e for e in schedule if e.action == "gpu_recover"]
        assert [e.gpu for e in fails] == [e.gpu for e in recovers]
        degrades = [e for e in schedule if e.action == "link_degrade"]
        restores = [e for e in schedule if e.action == "link_restore"]
        assert [e.link for e in degrades] == [e.link for e in restores]

    def test_mixed_granularity_can_emit_all_kinds(self):
        schedule = random_fault_schedule(
            ["m0", "m1", "m2"], 30, 1000.0, seed=1, granularity="mixed",
            gpu_count=4, link_names=("gpu0.pcie",))
        kinds = {e.action for e in schedule}
        assert "crash" in kinds
        assert kinds & {"gpu_fail", "link_degrade"}

    def test_device_granularity_needs_topology(self):
        with pytest.raises(WorkloadError, match="gpu_count"):
            random_fault_schedule(["m0"], 2, 100.0, granularity="device")
        with pytest.raises(WorkloadError, match="granularity"):
            random_fault_schedule(["m0"], 2, 100.0, granularity="nano")


# ---------------------------------------------------------------------------
# Server lifecycle edges (satellite: drain / crash / recover interplay)
# ---------------------------------------------------------------------------


class TestLifecycleEdges:
    def test_fail_over_while_draining_finishes_drain(self, planner, bert):
        server = make_server(planner, watch=False)
        instance = server.deploy([(bert, 1)])[0]
        server.start()
        server.submit(one_request(instance.name))
        drain = server.drain()
        assert not drain.triggered  # one request still in flight
        orphans = server.fail_over()
        assert len(orphans) == 1
        assert drain.triggered  # the crash emptied the server
        assert server.outstanding == 0
        server.auditor.check_quiesce()

    def test_recover_after_crash_mid_prewarm_serves_cold(self, planner,
                                                         bert):
        server = make_server(planner, watch=False)
        instances = server.deploy([(bert, 4)])
        server.prewarm()
        assert any(i.resident for i in instances)
        server.fail_over()
        server.recover()
        assert not any(i.resident for i in instances)
        report = server.run([one_request(instances[0].name)])
        assert len(report.metrics) == 1
        assert report.metrics.records[0].cold_start

    def test_double_drain_is_idempotent(self, planner, bert):
        server = make_server(planner, watch=False)
        server.deploy([(bert, 1)])
        first = server.drain()
        second = server.drain()
        assert first is second
        assert first.triggered  # nothing outstanding
        with pytest.raises(WorkloadError, match="draining"):
            server.submit(one_request("bert-base#0"))
        server.resume()
        assert server.drain() is not first


# ---------------------------------------------------------------------------
# SLO guardrail end-to-end: p99 of admitted requests under faults
# ---------------------------------------------------------------------------


class TestGuardrailEndToEnd:
    def test_deadline_guardrail_does_not_hurt_admitted_p99(self, bert):
        """Under a fault-injected replay, shedding unmeetable requests
        must not make the p99 of *admitted* requests worse."""

        def run(deadline):
            config = ClusterConfig(num_machines=2, replication=2,
                                   prewarm=False, audit=True,
                                   deadline=deadline)
            cluster = Cluster(p3_8xlarge(), config)
            names = cluster.deploy([(bert, 6)])
            workload = PoissonWorkload(names, rate=400.0, num_requests=400,
                                       seed=21)
            requests = workload.generate()
            duration = max(r.arrival_time for r in requests)
            schedule = random_fault_schedule(
                [cm.name for cm in cluster.machines], 4, duration, seed=21,
                granularity="device", gpu_count=4,
                link_names=cluster.machines[0].machine.link_names())
            return cluster.run(requests, fault_schedule=schedule)

        guarded = run(deadline=30 * MS)
        unguarded = run(deadline=None)
        assert len(guarded.shed) > 0
        assert unguarded.shed == []
        assert (guarded.completed + len(guarded.dropped)
                + len(guarded.shed) == guarded.submitted)
        assert guarded.metrics.p99_latency \
            <= unguarded.metrics.p99_latency + 1e-9
