"""Regenerate the golden paper-figure ratios (``make regolden``).

Computes the headline *ratios* behind Figure 11 (single-inference
speedups) and Figure 6 (transmission-mode speedups) with a noise-free
planner and writes them to ``tests/golden/paper_figures.json``.
``test_golden_regression.py`` recomputes the same ratios on every run
and asserts each stays within ±10% of the committed value (and that the
speedup *direction* itself holds) — so a planner or simulator change
that silently shifts the paper's headline numbers fails CI until the
goldens are deliberately regenerated and the diff reviewed.

Ratios, not absolute latencies, are committed: they are what the paper
claims, and they are robust to intentional cost-model recalibration.
"""

from __future__ import annotations

import json
import pathlib

from repro.core import Strategy
from repro.engine import run_single_inference, transmit_model
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.simkit import Simulator

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "paper_figures.json"

#: Figure 11 subset: two transformers with the paper's headline gains,
#: GPT-2 (little PT benefit) and a ResNet (DHA ~neutral).
FIG11_MODELS = ("bert-base", "roberta-base", "gpt2", "resnet101")

#: Figure 6 subset: one transformer, one CNN.
FIG06_MODELS = ("bert-base", "resnet50")


def compute_fig11_ratios() -> dict[str, dict[str, float]]:
    """Speedup ratios per model: pipeswitch/dha, pipeswitch/pt+dha,
    baseline/pt+dha."""
    from repro.core import DeepPlan

    planner = DeepPlan(p3_8xlarge(), noise=0.0)
    ratios: dict[str, dict[str, float]] = {}
    for name in FIG11_MODELS:
        model = build_model(name)
        latency = {
            strategy: run_single_inference(p3_8xlarge(), model, strategy,
                                           planner=planner).latency
            for strategy in (Strategy.BASELINE, Strategy.PIPESWITCH,
                             Strategy.DHA, Strategy.PT_DHA)
        }
        ratios[name] = {
            "pipeswitch_over_dha":
                latency[Strategy.PIPESWITCH] / latency[Strategy.DHA],
            "pipeswitch_over_pt_dha":
                latency[Strategy.PIPESWITCH] / latency[Strategy.PT_DHA],
            "baseline_over_pt_dha":
                latency[Strategy.BASELINE] / latency[Strategy.PT_DHA],
        }
    return ratios


def compute_fig06_ratios() -> dict[str, dict[str, float]]:
    """Transmission speedups per model: serial over parallel(2) and
    over parallel-pipeline(2)."""

    def load_time(model, mode, num_gpus):
        machine = Machine(Simulator(), p3_8xlarge())
        process = transmit_model(machine, model, target=0, mode=mode,
                                 num_gpus=num_gpus)
        return machine.sim.run(process.done).load_time

    ratios: dict[str, dict[str, float]] = {}
    for name in FIG06_MODELS:
        model = build_model(name)
        serial = load_time(model, "serial", 1)
        ratios[name] = {
            "serial_over_parallel2":
                serial / load_time(model, "parallel", 2),
            "serial_over_parallel_pipeline2":
                serial / load_time(model, "parallel-pipeline", 2),
        }
    return ratios


def compute_golden() -> dict:
    return {
        "fig11_speedup_ratios": compute_fig11_ratios(),
        "fig06_transmission_ratios": compute_fig06_ratios(),
    }


def main() -> None:
    golden = compute_golden()
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
