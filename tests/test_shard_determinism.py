"""Epoch-boundary determinism of the sharded replay (issue satellite).

Sweeps shard counts {1, 2, 4, 8} and epoch-length variations over an
8-machine fleet with random fault schedules and asserts the global
conservation ledger — ``submitted = completed + shed + dropped`` with
every in-flight book balanced — is identical regardless of how the
fleet is grouped or how long the lookahead epochs are.

Two strengths of guarantee, deliberately distinct:

* at a **fixed** epoch length, grouping is unobservable: every shard
  count yields the bit-identical outcome signature (and therefore the
  identical ledger);
* **across** epoch lengths the boundary grid moves, so retry dispatch
  times (and hence individual outcomes) may legitimately differ — but
  the conservation ledger must still balance exactly, and no request
  may ever be lost or duplicated.
"""

import numpy
import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.faults import random_fault_schedule
from repro.hw.specs import p3_8xlarge
from repro.serving.workload import PoissonWorkload
from repro.shard import ShardConfig, ShardedReplay
from repro.units import MS

SHARD_COUNTS = (1, 2, 4, 8)
EPOCH_LENGTHS = (50 * MS, 100 * MS, 250 * MS)


def eight_machine_scenario(seed):
    rng = numpy.random.default_rng(seed ^ 0x5EED)
    config = ClusterConfig(
        num_machines=8,
        replication=int(rng.integers(1, 4)),
        policy=("round-robin", "least-loaded",
                "affinity")[int(rng.integers(3))],
        max_retries=int(rng.integers(1, 4)),
        audit=True,
        breaker_cooldown=0.0)
    catalog = [("resnet50", 2), ("bert-base", 2)]
    instances = [f"{model}#{k}" for model, count in catalog
                 for k in range(count)]
    requests = PoissonWorkload(
        instances, rate=float(rng.uniform(30.0, 70.0)),
        num_requests=int(rng.integers(70, 120)),
        seed=int(rng.integers(1 << 31))).generate()
    faults = random_fault_schedule(
        [f"m{i}" for i in range(8)], int(rng.integers(1, 4)),
        requests[-1].arrival_time, seed=int(rng.integers(1 << 31)),
        granularity="mixed", gpu_count=4)
    return config, catalog, requests, faults


def replay(config, catalog, requests, faults, num_shards, epoch_length):
    runner = ShardedReplay(p3_8xlarge(), config, ShardConfig(
        num_shards=num_shards, epoch_length=epoch_length))
    runner.deploy(catalog)
    return runner.run(requests, fault_schedule=faults)


class TestEpochBoundaryDeterminism:
    def test_ledger_identical_across_shard_counts(self, shard_seed):
        config, catalog, requests, faults = \
            eight_machine_scenario(shard_seed)
        for epoch_length in EPOCH_LENGTHS:
            reference = None
            for num_shards in SHARD_COUNTS:
                report = replay(config, catalog, requests, faults,
                                num_shards, epoch_length)
                if reference is None:
                    reference = report
                    continue
                assert report.ledger == reference.ledger, (
                    f"conservation ledger diverged at {num_shards} "
                    f"shards, epoch {epoch_length / MS:g} ms "
                    f"(seed {shard_seed})")
                assert (report.outcome_signature()
                        == reference.outcome_signature())

    def test_ledger_balances_for_every_epoch_length(self, shard_seed):
        config, catalog, requests, faults = \
            eight_machine_scenario(shard_seed)
        totals = set()
        for epoch_length in EPOCH_LENGTHS:
            report = replay(config, catalog, requests, faults, 4,
                            epoch_length)
            ledger = report.ledger
            assert ledger.submitted == len(requests)
            assert (ledger.submitted
                    == ledger.completed + ledger.shed + ledger.dropped)
            for shard in report.shard_ledgers:
                assert shard.in_flight == 0
                assert shard.undelivered == 0
            totals.add(ledger.completed + ledger.shed + ledger.dropped)
        # Outcomes may shift between grids, but never leak requests.
        assert totals == {len(requests)}

    def test_longer_epochs_take_fewer_boundaries(self, shard_seed):
        config, catalog, requests, faults = \
            eight_machine_scenario(shard_seed)
        epochs = [replay(config, catalog, requests, faults, 2,
                         length).epochs
                  for length in (50 * MS, 250 * MS)]
        assert epochs[1] <= epochs[0]


class TestEpochEdgeCases:
    def test_single_request_fast_forwards_to_its_boundary(self):
        config = ClusterConfig(num_machines=2, audit=True,
                               breaker_cooldown=0.0)
        requests = PoissonWorkload(["resnet50#0"], rate=0.5,
                                   num_requests=3, seed=7).generate()
        runner = ShardedReplay(p3_8xlarge(), config,
                               ShardConfig(num_shards=2))
        runner.deploy([("resnet50", 1)])
        report = runner.run(requests)
        assert report.completed == 3
        # Fast-forward keeps the epoch count near one per arrival burst,
        # far below the dense-grid count of duration / epoch_length.
        dense = int(report.duration / (100 * MS)) + 1
        assert report.epochs < dense

    def test_epoch_equal_to_router_latency_is_legal(self):
        shard = ShardConfig(epoch_length=1 * MS, router_latency=1 * MS)
        assert shard.epoch_length == pytest.approx(shard.router_latency)
        config = ClusterConfig(num_machines=2, audit=True,
                               breaker_cooldown=0.0)
        requests = PoissonWorkload(["resnet50#0"], rate=40.0,
                                   num_requests=20, seed=3).generate()
        reports = []
        for num_shards in (1, 2):
            runner = ShardedReplay(p3_8xlarge(), config, ShardConfig(
                num_shards=num_shards, epoch_length=1 * MS,
                router_latency=1 * MS))
            runner.deploy([("resnet50", 1)])
            reports.append(runner.run(requests))
        assert (reports[0].outcome_signature()
                == reports[1].outcome_signature())
