"""Unit tests for the layer cost model."""

import pytest

from repro.hw.specs import p3_8xlarge
from repro.models import CostModel, build_model
from repro.models.zoo import microbench_layers
from repro.units import MS


@pytest.fixture(scope="module")
def cm():
    return CostModel(p3_8xlarge())


@pytest.fixture(scope="module")
def layers():
    return microbench_layers()


class TestLoadTime:
    def test_load_time_proportional_to_size_plus_overhead(self, cm, layers):
        small = cm.load_time(layers["fc-small"])
        large = cm.load_time(layers["fc-large"])
        overhead = cm.machine_spec.pcie_copy_overhead
        ratio = (large - overhead) / (small - overhead)
        expected = layers["fc-large"].param_bytes / layers["fc-small"].param_bytes
        assert ratio == pytest.approx(expected, rel=1e-6)

    def test_parameter_free_layer_loads_in_zero_time(self, cm):
        model = build_model("bert-base")
        sdpa = model.layers[model.layer_index("encoder.0.attn.sdpa")]
        assert cm.load_time(sdpa) == 0.0


class TestExecutionMethodTradeoffs:
    """The paper's Section 3.1 findings, layer kind by layer kind."""

    def test_embedding_dha_wins_at_both_sizes(self, cm, layers):
        for key in ("embedding-medium", "embedding-large"):
            layer = layers[key]
            dha = cm.exec_dha(layer, 1)
            load_then_exec = cm.load_time(layer) + cm.exec_inmem(layer, 1)
            assert dha < load_then_exec, key

    def test_embedding_dha_time_independent_of_table_size(self, cm, layers):
        medium = cm.exec_dha(layers["embedding-medium"], 1)
        large = cm.exec_dha(layers["embedding-large"], 1)
        assert large == pytest.approx(medium, rel=0.05)

    def test_small_conv_dha_wins(self, cm, layers):
        layer = layers["conv-small"]
        assert cm.exec_dha(layer, 1) < cm.load_time(layer) + cm.exec_inmem(layer, 1)

    def test_large_conv_load_wins_and_gap_widens(self, cm, layers):
        medium_ratio = (cm.exec_dha(layers["conv-medium"], 1)
                        / (cm.load_time(layers["conv-medium"])
                           + cm.exec_inmem(layers["conv-medium"], 1)))
        large_ratio = (cm.exec_dha(layers["conv-large"], 1)
                       / (cm.load_time(layers["conv-large"])
                          + cm.exec_inmem(layers["conv-large"], 1)))
        assert large_ratio > 1.0
        assert large_ratio > medium_ratio

    def test_fc_load_wins_at_both_sizes(self, cm, layers):
        for key in ("fc-small", "fc-large"):
            layer = layers[key]
            assert cm.exec_dha(layer, 1) > \
                cm.load_time(layer) + cm.exec_inmem(layer, 1), key

    def test_batchnorm_dha_wins(self, cm, layers):
        layer = layers["batchnorm"]
        assert cm.exec_dha(layer, 1) < cm.load_time(layer) + cm.exec_inmem(layer, 1)

    def test_layernorm_load_wins(self, cm, layers):
        layer = layers["layernorm"]
        assert cm.exec_dha(layer, 1) > cm.load_time(layer) + cm.exec_inmem(layer, 1)

    def test_contended_dha_is_slower(self, cm, layers):
        layer = layers["fc-small"]
        assert cm.exec_dha(layer, 1, during_load=True) > cm.exec_dha(layer, 1)


class TestBatchScaling:
    def test_exec_time_nondecreasing_in_batch(self, cm):
        model = build_model("bert-base")
        for layer in model.layers[:20]:
            assert cm.exec_inmem(layer, 8) >= cm.exec_inmem(layer, 1)

    def test_batching_amortizes_conv_dha(self, cm, layers):
        """Conv DHA streams weights once; throughput improves with batch."""
        layer = layers["conv-medium"]
        t1 = cm.exec_dha(layer, 1)
        t8 = cm.exec_dha(layer, 8)
        assert t8 < 8 * t1


class TestModelAggregates:
    def test_bert_base_warm_latency_near_paper(self, cm):
        """Paper: a warm BERT-Base batch-1 inference takes 9.35 ms."""
        model = build_model("bert-base")
        assert cm.model_exec_inmem(model, 1) / MS == pytest.approx(9.35, rel=0.1)

    def test_bert_base_load_near_paper(self, cm):
        """Paper: loading BERT-Base from host takes ~40 ms."""
        model = build_model("bert-base")
        assert cm.model_load_time(model) / MS == pytest.approx(40.0, rel=0.08)


class TestPCIeEvents:
    def test_load_events_are_size_over_64(self, cm, layers):
        layer = layers["conv-medium"]
        assert cm.pcie_read_events(layer, 1, "load") == \
            -(-layer.param_bytes // 64)

    def test_invalid_method_rejected(self, cm, layers):
        with pytest.raises(ValueError):
            cm.pcie_read_events(layers["conv-medium"], 1, "zero-copy")

    def test_paper_table1_event_counts(self, cm, layers):
        """Reproduce Table 1 within 4% (the paper's counters include a
        little unrelated traffic)."""
        paper = {
            ("embedding-medium", "load"): 24_580,
            ("embedding-medium", "dha"): 18_267,
            ("embedding-large", "load"): 1_465_112,
            ("embedding-large", "dha"): 18_459,
            ("conv-medium", "load"): 36_869,
            ("conv-medium", "dha"): 65_891,
            ("conv-large", "load"): 147_465,
            ("conv-large", "dha"): 273_487,
            ("fc-small", "load"): 36_920,
            ("fc-small", "dha"): 446_276,
            ("fc-large", "load"): 147_660,
            ("fc-large", "dha"): 1_765_787,
        }
        for (key, method), expected in paper.items():
            measured = cm.pcie_read_events(layers[key], 1, method)
            assert measured == pytest.approx(expected, rel=0.04), (key, method)
