"""Unit and integration tests for the cluster serving layer."""

import pytest

from repro.audit import AuditError
from repro.cluster import (
    Autoscaler,
    AutoscalerConfig,
    Cluster,
    ClusterConfig,
    FaultEvent,
    MachineState,
    random_fault_schedule,
)
from repro.errors import WorkloadError
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.serving.workload import PoissonWorkload, Request
from repro.units import MS


@pytest.fixture(scope="module")
def bert():
    return build_model("bert-base")


def make_cluster(bert, instances=8, **kwargs):
    kwargs.setdefault("num_machines", 2)
    kwargs.setdefault("replication", 2)
    cluster = Cluster(p3_8xlarge(), ClusterConfig(**kwargs))
    cluster.deploy([(bert, instances)])
    return cluster


class TestConfigValidation:
    def test_replication_beyond_fleet_rejected(self):
        with pytest.raises(WorkloadError, match="replication"):
            ClusterConfig(num_machines=2, replication=3)

    def test_unknown_policy_rejected(self):
        with pytest.raises(WorkloadError, match="policy"):
            ClusterConfig(policy="random")

    def test_bad_retry_settings_rejected(self):
        with pytest.raises(WorkloadError):
            ClusterConfig(max_retries=-1)
        with pytest.raises(WorkloadError):
            ClusterConfig(retry_backoff=0.0)


class TestPlacement:
    def test_replicas_land_on_distinct_machines(self, bert):
        cluster = make_cluster(bert, num_machines=3, replication=2,
                               instances=6)
        for name in cluster.instance_names:
            holders = [cm.name for cm in cluster.machines
                       if cm.has_replica(name)]
            assert len(holders) == 2
            assert len(set(holders)) == 2

    def test_standby_machines_start_empty(self, bert):
        cluster = make_cluster(bert, num_machines=2, num_standby=1)
        standby = cluster.machines[-1]
        assert standby.state is MachineState.STANDBY
        assert standby.server.instances == {}

    def test_incremental_deploy_continues_numbering(self, bert):
        cluster = make_cluster(bert, instances=3)
        more = cluster.deploy([(bert, 2)])
        assert more == ["bert-base#3", "bert-base#4"]


class TestRouting:
    def test_round_robin_alternates(self, bert):
        cluster = make_cluster(bert, policy="round-robin", instances=2)
        name = cluster.instance_names[0]
        picks = [cluster.router.route(
            Request(request_id=k, instance_name=name, arrival_time=0.0)).name
            for k in range(4)]
        assert picks == ["m0", "m1", "m0", "m1"]

    def test_least_loaded_prefers_idle_machine(self, bert):
        cluster = make_cluster(bert, policy="least-loaded", instances=2)
        name = cluster.instance_names[0]
        busy = cluster.machines[0]
        busy.server.start()
        # Queue work on m0 without running the simulator.
        busy.server.submit(Request(request_id=90, instance_name=name,
                                   arrival_time=0.0))
        choice = cluster.router.route(
            Request(request_id=0, instance_name=name, arrival_time=0.0))
        assert choice.name == "m1"

    def test_affinity_prefers_warm_replica(self, bert):
        cluster = make_cluster(bert, policy="affinity", instances=2)
        name = cluster.instance_names[0]
        # Warm only m1's replica.
        cluster.machines[1].server.prewarm()
        choice = cluster.router.route(
            Request(request_id=0, instance_name=name, arrival_time=0.0))
        assert choice.name == "m1"

    def test_affinity_spills_once_backlog_exceeds_penalty(self, bert):
        cluster = make_cluster(bert, policy="affinity", instances=2)
        name = cluster.instance_names[0]
        warm = cluster.machines[1]
        warm.server.prewarm()
        penalty = warm.server.plan_of(name).provision_penalty
        # Pile synthetic backlog on the warm machine beyond the penalty:
        # the cold machine becomes the cheaper predicted choice.
        warm.pending_cost = penalty * 2
        choice = cluster.router.route(
            Request(request_id=0, instance_name=name, arrival_time=0.0))
        assert choice.name == "m0"

    def test_no_routable_replica_returns_none(self, bert):
        cluster = make_cluster(bert, instances=2)
        for cm in cluster.machines:
            cm.state = MachineState.DOWN
        assert cluster.router.route(
            Request(request_id=0, instance_name=cluster.instance_names[0],
                    arrival_time=0.0)) is None


class TestFaultSchedules:
    def test_schedule_pairs_crash_with_recover(self):
        schedule = random_fault_schedule(["m0", "m1"], 3, 100.0, seed=5)
        by_machine = {}
        for event in schedule:
            by_machine.setdefault(event.machine_name, []).append(event)
        for events in by_machine.values():
            actions = [e.action for e in events]
            assert actions == ["crash", "recover"] * (len(actions) // 2)

    def test_same_machine_outages_never_overlap(self):
        schedule = random_fault_schedule(["m0"], 4, 100.0, seed=1)
        times = [e.time for e in schedule]
        assert times == sorted(times)

    def test_bad_action_rejected(self):
        with pytest.raises(WorkloadError):
            FaultEvent(1.0, "m0", "explode")

    def test_crash_skipped_when_machine_already_down(self, bert):
        cluster = make_cluster(bert, instances=2)
        assert cluster.crash_machine("m0")
        assert not cluster.crash_machine("m0")
        assert cluster.machines[0].crashes == 1

    def test_recover_requires_down(self, bert):
        cluster = make_cluster(bert, instances=2)
        assert not cluster.recover_machine("m0")
        cluster.crash_machine("m0")
        assert cluster.recover_machine("m0")
        assert cluster.machines[0].state is MachineState.ACTIVE


class TestClusterRuns:
    def test_fault_free_run_completes_everything(self, bert):
        cluster = make_cluster(bert, audit=True)
        workload = PoissonWorkload(cluster.instance_names, rate=50.0,
                                   num_requests=120, seed=0)
        report = cluster.run(workload.generate())
        assert report.completed == 120
        assert report.dropped == []
        assert report.retries == 0
        assert sum(m.served for m in report.per_machine) == 120

    def test_exactly_once_across_injected_failures(self, bert):
        cluster = make_cluster(bert, num_machines=3, replication=2,
                               instances=12, audit=True, max_retries=3)
        workload = PoissonWorkload(cluster.instance_names, rate=150.0,
                                   num_requests=300, seed=4)
        requests = workload.generate()
        duration = max(r.arrival_time for r in requests)
        schedule = random_fault_schedule(
            [cm.name for cm in cluster.machines], 2, duration, seed=4)
        report = cluster.run(requests, fault_schedule=schedule)
        # run() performs the audit (raising on violation); the report
        # must additionally balance to the request count.
        assert report.submitted == 300
        assert report.completed + len(report.dropped) == 300
        assert sum(m.crashes for m in report.per_machine) >= 1

    def test_whole_fleet_down_drops_after_budget(self, bert):
        cluster = make_cluster(bert, instances=4, audit=True,
                               max_retries=1, retry_backoff=10 * MS)
        workload = PoissonWorkload(cluster.instance_names, rate=50.0,
                                   num_requests=40, seed=2)
        schedule = [FaultEvent(0.05, "m0", "crash"),
                    FaultEvent(0.05, "m1", "crash"),
                    FaultEvent(10.0, "m0", "recover"),
                    FaultEvent(10.0, "m1", "recover")]
        report = cluster.run(workload.generate(), fault_schedule=schedule)
        assert len(report.dropped) > 0
        assert report.completed + len(report.dropped) == 40
        # Each dropped request used its full attempt budget.
        for request in report.dropped:
            assert cluster._failures[request.request_id] == 2

    def test_audit_catches_double_completion(self, bert):
        cluster = make_cluster(bert, instances=2, audit=True)
        workload = PoissonWorkload(cluster.instance_names, rate=50.0,
                                   num_requests=10, seed=0)
        requests = workload.generate()
        # Sabotage: pre-record a completion for request 0, so it ends the
        # run with two outcomes.
        cluster.auditor.on_dispatch(requests[0], "m0")
        cluster.auditor.on_complete(requests[0], "m0")
        with pytest.raises(AuditError, match="exactly_once"):
            cluster.run(requests)

    def test_report_utilization_bounded(self, bert):
        cluster = make_cluster(bert)
        workload = PoissonWorkload(cluster.instance_names, rate=100.0,
                                   num_requests=100, seed=1)
        report = cluster.run(workload.generate())
        for stats in report.per_machine:
            assert 0.0 <= stats.utilization <= 1.0


class TestAutoscaler:
    def test_scale_up_activates_standby_under_load(self, bert):
        autoscale = AutoscalerConfig(interval=0.2, window=2.0,
                                     scale_up_p99=20 * MS,
                                     scale_down_p99=1 * MS,
                                     min_window_requests=5, cooldown=0.5)
        cluster = make_cluster(bert, num_machines=2, replication=2,
                               num_standby=1, instances=40,
                               autoscale=autoscale, audit=True)
        # Oversubscribed: 40 instances on 2 machines thrash the caches,
        # pushing p99 over the threshold.
        workload = PoissonWorkload(cluster.instance_names, rate=300.0,
                                   num_requests=600, seed=3)
        report = cluster.run(workload.generate())
        ups = [e for e in report.scaling_events if e.action == "scale-up"]
        assert ups, "expected the autoscaler to activate the standby"
        standby = cluster.machines[-1]
        assert standby.server.instances  # catalog deployed on activation
        assert report.completed == 600

    def test_scale_down_returns_standby_to_pool(self, bert):
        cluster = make_cluster(bert, num_machines=2, num_standby=1,
                               instances=4)
        activated = cluster.activate_standby()
        assert activated is not None
        assert activated.state is MachineState.ACTIVE
        drained = cluster.drain_activated_standby()
        assert drained is activated
        cluster.sim.run()
        assert activated.state is MachineState.STANDBY

    def test_base_fleet_never_drained(self, bert):
        cluster = make_cluster(bert, num_machines=2)
        assert cluster.drain_activated_standby() is None

    def test_windowed_p99_requires_min_requests(self, bert):
        cluster = make_cluster(bert)
        assert cluster.windowed_p99(10.0, min_requests=1) is None

    def test_windowed_p99_tolerates_out_of_order_records(self, bert):
        """Regression: a stale record in the middle must not hide the
        in-window completions recorded before it.

        Retried requests are recorded when their (late) completion is
        reported, so the cluster-wide record list is not sorted by
        finished_at; the old reverse scan broke at the first stale
        record and truncated the window.
        """
        from repro.serving.metrics import RequestRecord

        cluster = make_cluster(bert)
        cluster.sim._now = 100.0

        def record(rid, finished_at, latency):
            return RequestRecord(
                request_id=rid, instance_name="bert-base#0",
                arrival_time=0.0, submitted_at=finished_at - latency,
                started_at=finished_at - latency, finished_at=finished_at,
                cold_start=False)

        cluster.metrics.record(record(0, finished_at=95.0, latency=1.0))
        # A retry that finished long before the window, recorded late:
        cluster.metrics.record(record(1, finished_at=50.0, latency=9.0))
        cluster.metrics.record(record(2, finished_at=99.0, latency=2.0))
        p99 = cluster.windowed_p99(10.0, min_requests=2)
        assert p99 is not None
        # Both in-window records (latencies 1.0 and 2.0) count; the
        # stale latency-9.0 record does not.
        assert p99 == pytest.approx(1.99)

    def test_autoscaler_stop_ends_loop(self, bert):
        cluster = make_cluster(bert, autoscale=AutoscalerConfig())
        scaler = Autoscaler(cluster, AutoscalerConfig())
        cluster.sim.process(scaler.process(), name="scaler")
        scaler.stop()
        cluster.sim.run()  # terminates: the loop exits after one tick
        assert scaler.events == []


class TestValidation:
    def test_run_without_deploy_rejected(self, bert):
        cluster = Cluster(p3_8xlarge(), ClusterConfig())
        with pytest.raises(WorkloadError, match="deployed"):
            cluster.run([Request(request_id=0, instance_name="x",
                                 arrival_time=0.0)])

    def test_unknown_instance_rejected(self, bert):
        cluster = make_cluster(bert, instances=2)
        with pytest.raises(WorkloadError, match="unknown"):
            cluster.run([Request(request_id=0, instance_name="nope#0",
                                 arrival_time=0.0)])

    def test_unknown_machine_rejected(self, bert):
        cluster = make_cluster(bert, instances=2)
        with pytest.raises(WorkloadError, match="no machine"):
            cluster.crash_machine("m99")
