"""Sharded replay vs the single-process differential oracle.

The headline property of :mod:`repro.shard`: for a fixed trace, seed and
fault schedule, the outcome signature — every request's terminal state
with its exact timestamps — is identical for ANY shard count and for
both execution backends.  The ``shard_seed`` fixture sweeps randomized
scenarios (fleet size, replication, policy, load, faults); the nightly
``--full-seeds`` run widens it to the issue's 200-seed sweep.
"""

import numpy
import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.faults import FaultEvent, random_fault_schedule
from repro.errors import WorkloadError
from repro.hw.specs import p3_8xlarge
from repro.serving.workload import PoissonWorkload, TraceWorkload
from repro.shard import ShardConfig, ShardedReplay, partition_machines
from repro.units import MS

MODELS = ("resnet50", "bert-base", "resnet101")


def random_scenario(seed):
    """A seeded small-fleet replay scenario: config, catalog, trace, faults."""
    rng = numpy.random.default_rng(seed)
    num_machines = int(rng.integers(2, 5))
    config = ClusterConfig(
        num_machines=num_machines,
        replication=int(rng.integers(1, num_machines + 1)),
        policy=("round-robin", "least-loaded",
                "affinity")[int(rng.integers(3))],
        prewarm=bool(rng.integers(2)),
        max_retries=int(rng.integers(1, 4)),
        deadline=(float(rng.uniform(0.3, 0.8))
                  if rng.integers(2) else None),
        audit=True,
        breaker_cooldown=0.0)
    catalog = [(model, int(rng.integers(1, 3)))
               for model in rng.permutation(MODELS)[:int(rng.integers(1, 3))]]
    instances = [f"{model}#{k}" for model, count in catalog
                 for k in range(count)]
    requests = PoissonWorkload(
        instances, rate=float(rng.uniform(20.0, 80.0)),
        num_requests=int(rng.integers(60, 160)),
        seed=int(rng.integers(1 << 31))).generate()
    names = [f"m{i}" for i in range(num_machines)]
    faults = random_fault_schedule(
        names, int(rng.integers(0, 4)), requests[-1].arrival_time,
        seed=int(rng.integers(1 << 31)))
    return config, catalog, requests, faults


def run_replay(config, catalog, requests, faults, num_shards,
               backend="serial", epoch_length=100 * MS):
    replay = ShardedReplay(p3_8xlarge(), config, ShardConfig(
        num_shards=num_shards, backend=backend, epoch_length=epoch_length))
    replay.deploy(catalog)
    return replay.run(requests, fault_schedule=faults)


class TestDifferentialOracle:
    def test_any_shard_count_matches_the_reference(self, shard_seed):
        config, catalog, requests, faults = random_scenario(shard_seed)
        reference = run_replay(config, catalog, requests, faults, 1)
        signature = reference.outcome_signature()
        assert len(signature) == len(requests)
        for num_shards in (2, 4):
            if num_shards > config.num_machines:
                continue
            report = run_replay(config, catalog, requests, faults,
                                num_shards)
            assert report.outcome_signature() == signature, (
                f"{num_shards}-shard replay diverged from the "
                f"single-process reference (seed {shard_seed})")
            # The canonical collector is rebuilt in one global order, so
            # even float aggregates must match to the last bit.
            assert report.metrics.histogram == reference.metrics.histogram
            assert report.ledger == reference.ledger
            merged = report.merged_histogram()
            assert merged.counts == reference.metrics.histogram.counts
            assert merged.total == reference.metrics.histogram.total

    def test_conservation_holds_per_shard_and_globally(self, shard_seed):
        config, catalog, requests, faults = random_scenario(shard_seed)
        num_shards = min(2, config.num_machines)
        report = run_replay(config, catalog, requests, faults, num_shards)
        ledger = report.ledger
        assert ledger.submitted == len(requests)
        assert (ledger.submitted
                == ledger.completed + ledger.shed + ledger.dropped)
        for shard in report.shard_ledgers:
            assert shard.in_flight == 0
            assert shard.undelivered == 0
            assert (shard.delivered
                    == shard.completed + shard.shed + shard.orphaned)
        assert sum(s.completed for s in report.shard_ledgers) \
            == ledger.completed
        assert sum(s.shed for s in report.shard_ledgers) == ledger.shed


class TestProcessBackend:
    def test_spawn_workers_match_serial_oracle(self, shard_seed):
        config, catalog, requests, faults = random_scenario(shard_seed)
        num_shards = min(2, config.num_machines)
        serial = run_replay(config, catalog, requests, faults, num_shards)
        process = run_replay(config, catalog, requests, faults, num_shards,
                             backend="process")
        assert process.outcome_signature() == serial.outcome_signature()
        assert process.metrics.histogram == serial.metrics.histogram
        assert process.ledger == serial.ledger
        assert [f.histogram for f in process.finals] \
            == [f.histogram for f in serial.finals]


class TestMAFTrace:
    def test_maf_subset_replay_is_shard_count_invariant(self):
        from repro.serving.maf import MAFTraceConfig, synthesize_maf_trace
        config = ClusterConfig(num_machines=4, replication=2,
                               policy="affinity", audit=True,
                               breaker_cooldown=0.0)
        instances = [f"{m}#0" for m in MODELS]
        trace = synthesize_maf_trace(instances, MAFTraceConfig(
            duration=20.0, target_rps=15.0, seed=15))
        requests = TraceWorkload(trace.arrivals).generate()
        names = [f"m{i}" for i in range(4)]
        faults = random_fault_schedule(names, 2, 20.0, seed=15)
        catalog = [(m, 1) for m in MODELS]
        reference = run_replay(config, catalog, requests, faults, 1)
        for num_shards in (2, 4):
            report = run_replay(config, catalog, requests, faults,
                                num_shards)
            assert (report.outcome_signature()
                    == reference.outcome_signature())


class TestUnroutableDrops:
    def test_replay_quiesces_when_every_request_drops_unroutable(self):
        """Regression: a replay that ends via broker drops must return.

        With a single machine crashed before the first arrival, every
        request exhausts its retries against a fleet with no active
        replica and is dropped at the routing boundary itself.  The
        coordinator used to fast-forward on ``broker.next_ready`` after
        the final drop — ``inf`` once the pending heap empties — and
        crash with an OverflowError instead of reporting the drops.
        """
        config = ClusterConfig(num_machines=1, max_retries=1,
                               audit=True, breaker_cooldown=0.0)
        replay = ShardedReplay(p3_8xlarge(), config)
        replay.deploy([("resnet50", 1)])
        requests = PoissonWorkload(["resnet50#0"], rate=10.0,
                                   num_requests=3, seed=5).generate()
        faults = [FaultEvent(time=0.001, machine_name="m0",
                             action="crash")]
        report = replay.run(requests, fault_schedule=faults)
        assert report.completed == 0
        assert report.ledger.dropped == len(requests)
        assert {p.request_id for p in report.dropped} \
            == {r.request_id for r in requests}
        assert (report.ledger.submitted
                == report.ledger.completed + report.ledger.shed
                + report.ledger.dropped)
        assert len(report.outcome_signature()) == len(requests)


class TestPartitioning:
    def test_contiguous_near_even_groups(self):
        names = tuple(f"m{i}" for i in range(10))
        groups = partition_machines(names, 4)
        assert [len(g) for g in groups] == [3, 3, 2, 2]
        assert tuple(name for group in groups for name in group) == names

    def test_rejects_more_shards_than_machines(self):
        with pytest.raises(WorkloadError):
            partition_machines(("m0",), 2)

    def test_replay_rejects_unsupported_configs(self):
        spec = p3_8xlarge()
        with pytest.raises(WorkloadError):
            ShardedReplay(spec, ClusterConfig(num_machines=2, num_standby=1))
        from repro.cluster import AutoscalerConfig
        with pytest.raises(WorkloadError):
            ShardedReplay(spec, ClusterConfig(
                num_machines=2, autoscale=AutoscalerConfig()))
        # The ClusterConfig default enables the cold-start circuit
        # breaker, which the epoch broker does not replicate — sharded
        # replay demands an explicit breaker_cooldown=0.
        with pytest.raises(WorkloadError, match="breaker"):
            ShardedReplay(spec, ClusterConfig(num_machines=2))
        with pytest.raises(WorkloadError):
            ShardedReplay(spec,
                          ClusterConfig(num_machines=2,
                                        breaker_cooldown=0.0),
                          ShardConfig(num_shards=4))

    def test_deploy_rejects_non_zoo_model_specs(self):
        import dataclasses

        from repro.models.zoo import build_model

        replay = ShardedReplay(
            p3_8xlarge(),
            ClusterConfig(num_machines=2, breaker_cooldown=0.0))
        zoo_spec = build_model("resnet50")
        # The exact zoo spec is fine — workers rebuild the identical
        # model by name.
        replay.deploy([(zoo_spec, 1)])
        # A customized spec whose name collides with a zoo entry would
        # be silently swapped for the zoo's version on the workers.
        customized = dataclasses.replace(zoo_spec, seq_len=zoo_spec.seq_len + 1)
        with pytest.raises(WorkloadError, match="differs from the zoo"):
            replay.deploy([(customized, 1)])
        # A spec the zoo cannot rebuild at all.
        unknown = dataclasses.replace(zoo_spec, name="not-in-zoo")
        with pytest.raises(WorkloadError, match="not a zoo model"):
            replay.deploy([(unknown, 1)])

    def test_epoch_must_cover_router_latency(self):
        with pytest.raises(WorkloadError):
            ShardConfig(epoch_length=0.5 * MS, router_latency=1 * MS)
