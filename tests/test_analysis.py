"""Unit tests for table/series rendering."""

import pytest

from repro.analysis import format_series, format_table, normalize


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 20.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "1.500" in text
        assert "20.25" in text

    def test_title_prepended(self):
        text = format_table(["x"], [["y"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_integer_thousands_separator(self):
        text = format_table(["n"], [[1465112]])
        assert "1,465,112" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_numeric_columns_right_aligned(self):
        text = format_table(["name", "v"], [["x", 1.0], ["long-name", 333.0]])
        lines = text.splitlines()
        assert lines[2].rstrip().endswith("1.000")
        assert lines[3].rstrip().endswith("333.00")


class TestFormatSeries:
    def test_series_rendering(self):
        text = format_series("batch", [1, 2], {"a": [1.0, 2.0],
                                               "b": [3.0, 4.0]})
        assert "batch" in text
        assert "1.000" in text and "4.000" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"a": [1.0]})

    def test_custom_format(self):
        text = format_series("x", [1], {"a": [1.239]}, value_format="{:.1f}")
        assert "1.2" in text


class TestNormalize:
    def test_speedups(self):
        assert normalize([10.0, 5.0, 2.0], 10.0) == [1.0, 2.0, 5.0]

    def test_bad_reference_rejected(self):
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)
