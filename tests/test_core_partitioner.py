"""Unit and property tests for model partitioning and GPU selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioner import (
    choose_secondary_gpus,
    max_partitions,
    partition_model,
)
from repro.errors import PlanError
from repro.hw.machine import Machine
from repro.hw.specs import a5000x2, p3_8xlarge
from repro.models import build_model
from repro.models.graph import ModelSpec
from repro.models.layers import linear
from repro.simkit import Simulator


@pytest.fixture(scope="module")
def p3():
    return Machine(Simulator(), p3_8xlarge())


def toy_model(sizes):
    layers = tuple(linear(f"fc{i}", 1, size, bias=False)
                   for i, size in enumerate(sizes))
    return ModelSpec(name="toy", layers=layers, seq_len=1, family="toy")


class TestPartitionModel:
    def test_single_partition_covers_everything(self):
        model = build_model("bert-base")
        (partition,) = partition_model(model, 1)
        assert partition.start == 0
        assert partition.stop == len(model.layers)

    def test_two_partitions_are_size_balanced(self):
        model = build_model("bert-base")
        parts = partition_model(model, 2)
        sizes = []
        for part in parts:
            sizes.append(sum(model.layers[i].param_bytes
                             for i in range(part.start, part.stop)))
        assert abs(sizes[0] - sizes[1]) < 0.1 * model.param_bytes

    def test_partitions_are_contiguous_and_ordered(self):
        model = build_model("gpt2-medium")
        parts = partition_model(model, 4)
        assert parts[0].start == 0
        for left, right in zip(parts, parts[1:]):
            assert left.stop == right.start
        assert parts[-1].stop == len(model.layers)

    def test_skewed_sizes_split_at_the_heavy_layer(self):
        model = toy_model([1000, 1, 1, 1])
        parts = partition_model(model, 2)
        assert parts[0].stop == 1  # the heavy layer alone reaches 50%

    def test_more_partitions_than_layers_rejected(self):
        model = toy_model([1, 2])
        with pytest.raises(PlanError):
            partition_model(model, 3)

    def test_zero_partitions_rejected(self):
        with pytest.raises(PlanError):
            partition_model(toy_model([1, 2]), 0)

    @settings(max_examples=50, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=0, max_value=10 ** 6),
                          min_size=2, max_size=40).filter(lambda s: sum(s) > 0),
           k=st.integers(min_value=1, max_value=4))
    def test_partition_properties(self, sizes, k):
        """Contiguity, coverage, and non-empty partitions always hold."""
        model = toy_model([s + 1 for s in sizes])  # avoid zero-param layers
        k = min(k, len(model.layers))
        parts = partition_model(model, k)
        assert len(parts) == k
        assert parts[0].start == 0
        assert parts[-1].stop == len(model.layers)
        for left, right in zip(parts, parts[1:]):
            assert left.stop == right.start
        assert all(len(p) >= 1 for p in parts)


class TestGPUSelection:
    def test_secondary_is_on_other_switch(self, p3):
        chosen = choose_secondary_gpus(p3, primary=0, max_secondaries=1)
        assert chosen == [2]
        assert not p3.share_pcie_switch(0, chosen[0])

    def test_each_primary_gets_cross_switch_partner(self, p3):
        for primary, expected in ((0, [2]), (1, [3]), (2, [0]), (3, [1])):
            assert choose_secondary_gpus(p3, primary, 1) == expected

    def test_at_most_one_secondary_per_other_switch(self, p3):
        """p3.8xlarge has two switches, so PT caps at 2 GPUs per model —
        exactly the paper's guidance (Section 4.3.3)."""
        chosen = choose_secondary_gpus(p3, primary=0, max_secondaries=3)
        assert len(chosen) == 1

    def test_max_partitions_p3_is_two(self, p3):
        assert max_partitions(p3) == 2

    def test_max_partitions_a5000_is_two(self):
        machine = Machine(Simulator(), a5000x2())
        assert max_partitions(machine) == 2

    def test_negative_secondaries_rejected(self, p3):
        with pytest.raises(PlanError):
            choose_secondary_gpus(p3, 0, -1)

    def test_zero_secondaries_allowed(self, p3):
        assert choose_secondary_gpus(p3, 0, 0) == []
