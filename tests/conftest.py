"""Shared test configuration: seed counts for the property-test layer.

The seeded property tests in ``test_properties.py`` parametrize over a
``*_seed`` fixture.  By default (CI per-commit runs and local ``pytest``)
they run a reduced seed set via ``--quick``-style counts; the nightly CI
job and ``pytest --full-seeds`` run the full 200-seed sweep the issue
specifies.
"""

from __future__ import annotations

import pytest

#: (fixture name, quick count, full count).  Plan-validity checks are
#: cheap, so they carry the bulk of the 200-seed budget; machine-level
#: and cluster-level sweeps instantiate simulators per seed and run
#: fewer, deeper cases.
SEED_FIXTURES = {
    "property_seed": (20, 200),
    "bandwidth_seed": (5, 30),
    "cluster_seed": (3, 15),
    # Differential check of the incremental fair-share allocator against
    # the from-scratch reference fill (test_fastpath_differential.py).
    "flow_seed": (30, 200),
    # Conservation under mixed machine/GPU/link fault schedules (the
    # issue's 200-seed device-fault sweep; full count nightly).
    "device_fault_seed": (3, 200),
    # Byte-conservation property of the flow engine under random
    # contended schedules (test_audit_invariants.py; full count nightly).
    "conservation_seed": (20, 200),
    # Sharded replay vs the single-process differential oracle
    # (test_shard_replay.py / test_shard_determinism.py; the issue's
    # 200-seed sharded-vs-reference sweep runs nightly).
    "shard_seed": (2, 200),
    # Crash-injected process replays vs the crash-free oracle
    # (test_shard_chaos.py; each seed spawns, kills and respawns real
    # worker processes, so the quick subset stays small).
    "chaos_seed": (2, 200),
}


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--full-seeds", action="store_true", default=False,
        help="run the property-based tests over the full seed sweep "
             "(nightly CI); the default is the quick subset")
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="explicitly request the quick seed subset (the default; "
             "provided so CI invocations are self-documenting)")


def pytest_generate_tests(metafunc: pytest.Metafunc) -> None:
    full = metafunc.config.getoption("--full-seeds")
    if full and metafunc.config.getoption("--quick"):
        raise pytest.UsageError("--quick and --full-seeds are exclusive")
    for fixture, (quick_count, full_count) in SEED_FIXTURES.items():
        if fixture in metafunc.fixturenames:
            count = full_count if full else quick_count
            metafunc.parametrize(fixture, range(count))
