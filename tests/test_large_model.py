"""Tests for the large-model (beyond-GPU-memory) extension."""

import pytest

from repro.core import Strategy
from repro.core.large_model import plan_within_budget, warm_latency
from repro.errors import PlanError
from repro.hw.specs import p3_8xlarge
from repro.models import CostModel, build_model
from repro.models.layers import LayerKind
from repro.units import GB, MB


@pytest.fixture(scope="module")
def cm():
    return CostModel(p3_8xlarge())


@pytest.fixture(scope="module")
def model():
    return build_model("gpt2-medium")  # 1.35 GiB of parameters


class TestBudgetedPlanning:
    def test_fits_the_budget(self, cm, model):
        budget = int(1.0 * GB)
        plan = plan_within_budget(cm, model, budget)
        assert plan.gpu_resident_bytes <= budget
        assert plan.host_resident_bytes > 0

    def test_generous_budget_loads_everything(self, cm, model):
        plan = plan_within_budget(cm, model, 8 * GB)
        assert plan.gpu_resident_bytes == model.param_bytes
        assert plan.host_resident_bytes == 0

    def test_embeddings_offloaded_first(self, cm, model):
        """The word embedding is the cheapest bytes to serve host-side."""
        budget = model.param_bytes - 10 * MB  # barely over budget
        plan = plan_within_budget(cm, model, budget)
        wte = model.layer_index("wte")
        assert wte in plan.dha_indices()
        # No dense GEMM weight should be offloaded before embeddings run out.
        for i in plan.dha_indices():
            assert model.layers[i].kind in (LayerKind.EMBEDDING,
                                            LayerKind.BATCHNORM,
                                            LayerKind.LAYERNORM,
                                            LayerKind.CONV)

    def test_tiny_budget_offloads_almost_everything(self, cm, model):
        plan = plan_within_budget(cm, model, int(50 * MB))
        assert plan.gpu_resident_bytes <= 50 * MB
        assert plan.host_resident_bytes > 0.9 * model.param_bytes

    def test_zero_budget_is_all_dha(self, cm, model):
        plan = plan_within_budget(cm, model, 0)
        assert plan.gpu_resident_bytes == 0
        assert len(plan.dha_indices()) == len(model.loadable_indices())

    def test_negative_budget_rejected(self, cm, model):
        with pytest.raises(PlanError):
            plan_within_budget(cm, model, -1)


class TestWarmLatency:
    def test_warm_latency_grows_as_budget_shrinks(self, cm, model):
        budgets = [2 * GB, 1 * GB, 512 * MB, 128 * MB]
        latencies = [warm_latency(cm, plan_within_budget(cm, model, b))
                     for b in budgets]
        assert latencies == sorted(latencies)

    def test_full_budget_matches_in_memory_exec(self, cm, model):
        plan = plan_within_budget(cm, model, 8 * GB)
        assert warm_latency(cm, plan) == pytest.approx(
            cm.model_exec_inmem(model, 1))

    def test_offloading_embeddings_is_nearly_free(self, cm, model):
        """The paper's 'cost-effective alternative': shedding ~15% of the
        footprint (the embeddings) costs almost no warm latency."""
        full = warm_latency(cm, plan_within_budget(cm, model, 8 * GB))
        trimmed_budget = model.param_bytes - \
            model.layers[model.layer_index("wte")].param_bytes
        trimmed = warm_latency(cm, plan_within_budget(cm, model,
                                                      trimmed_budget))
        assert trimmed < full * 1.05


class TestIntegrationWithEngine:
    def test_budgeted_plan_executes(self, cm, model):
        """A budgeted plan runs on the simulated machine end to end."""
        from repro.engine import execute_plan
        from repro.hw.machine import Machine
        from repro.simkit import Simulator

        plan = plan_within_budget(cm, model, int(1.0 * GB))
        machine = Machine(Simulator(), p3_8xlarge())
        result = machine.sim.run(
            execute_plan(machine, cm, plan, 0).done)
        assert result.latency > 0
        # Only the resident fraction ever crosses PCIe as a bulk load.
        assert sum(result.lane_bytes.values()) == plan.gpu_resident_bytes
        assert plan.gpu_resident_bytes <= 1.0 * GB
        # The memory-latency trade-off is explicit: serving in 1 GB costs
        # warm latency versus the unconstrained plan.
        from repro.core.large_model import warm_latency
        full = plan_within_budget(cm, model, 8 * GB)
        assert warm_latency(cm, plan) > warm_latency(cm, full)
