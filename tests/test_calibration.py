"""Calibration anchors: the reproduction must stay near the paper's
published measurements.

These tests exist to catch cost-model regressions.  Tolerances are loose
(10-25%) because our substrate is a simulator, not the authors' AWS
testbed — what matters is that every *shape* claim (who wins, by roughly
what factor) holds.  EXPERIMENTS.md records the exact paper-vs-measured
numbers.
"""

import pytest

from repro.core import DeepPlan, Strategy
from repro.engine import run_concurrent_cold_starts, run_single_inference
from repro.hw.specs import p3_8xlarge
from repro.models import MODEL_NAMES, build_model
from repro.units import MS

# Paper Table 4, "PipeSwitch (1)" and "PT+DHA (1)" columns (milliseconds).
PAPER_PIPESWITCH_MS = {
    "resnet50": 12.03, "resnet101": 19.85,
    "bert-base": 40.51, "bert-large": 122.37,
    "roberta-base": 45.86, "roberta-large": 129.58,
    "gpt2": 48.41, "gpt2-medium": 134.10,
}
PAPER_PT_DHA_MS = {
    "resnet50": 8.93, "resnet101": 17.71,
    "bert-base": 20.88, "bert-large": 70.56,
    "roberta-base": 20.83, "roberta-large": 70.26,
    "gpt2": 33.38, "gpt2-medium": 101.83,
}
# Paper Table 4, "PT+DHA (2)": two concurrent parallel transmissions.
PAPER_PT_DHA_2_MS = {
    "resnet50": 11.97, "resnet101": 21.19,
    "bert-base": 30.45, "bert-large": 108.16,
    "roberta-base": 34.48, "roberta-large": 107.87,
    "gpt2": 35.98, "gpt2-medium": 112.71,
}


@pytest.fixture(scope="module")
def planner():
    return DeepPlan(p3_8xlarge(), noise=0.0)


@pytest.fixture(scope="module")
def latencies(planner):
    """Executed single-inference latency per (model, strategy), ms."""
    spec = p3_8xlarge()
    table = {}
    for name in MODEL_NAMES:
        model = build_model(name)
        for strategy in Strategy:
            result = run_single_inference(spec, model, strategy,
                                          planner=planner)
            table[name, strategy] = result.latency / MS
    return table


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestTable4Anchors:
    def test_pipeswitch_latency(self, latencies, name):
        measured = latencies[name, Strategy.PIPESWITCH]
        assert measured == pytest.approx(PAPER_PIPESWITCH_MS[name], rel=0.10)

    def test_pt_dha_latency(self, latencies, name):
        measured = latencies[name, Strategy.PT_DHA]
        assert measured == pytest.approx(PAPER_PT_DHA_MS[name], rel=0.12)


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestFigure11Shapes:
    def test_strategy_ordering(self, latencies, name):
        """baseline slowest; PT+DHA fastest; DHA beats PipeSwitch."""
        assert latencies[name, Strategy.BASELINE] > \
            latencies[name, Strategy.PIPESWITCH]
        assert latencies[name, Strategy.DHA] <= \
            latencies[name, Strategy.PIPESWITCH] * 1.01
        assert latencies[name, Strategy.PT_DHA] <= \
            latencies[name, Strategy.DHA] * 1.01
        assert latencies[name, Strategy.PT_DHA] <= \
            latencies[name, Strategy.PT] * 1.01

    def test_dha_speedup_band(self, latencies, name):
        """Paper: DHA gives 1.10-1.43x for transformers, ~1.0x for ResNet."""
        speedup = (latencies[name, Strategy.PIPESWITCH]
                   / latencies[name, Strategy.DHA])
        if name.startswith("resnet"):
            assert 1.0 <= speedup < 1.30
        else:
            assert 1.05 <= speedup < 1.55


class TestHeadlineSpeedups:
    def test_bert_base_pt_dha_speedup(self, latencies):
        """The paper's headline: 1.94x over PipeSwitch for BERT-Base."""
        speedup = (latencies["bert-base", Strategy.PIPESWITCH]
                   / latencies["bert-base", Strategy.PT_DHA])
        assert speedup == pytest.approx(1.94, rel=0.10)

    def test_roberta_base_is_the_best_case(self, latencies):
        """Paper: RoBERTa-Base shows the largest gain (2.21x)."""
        speedups = {name: (latencies[name, Strategy.PIPESWITCH]
                           / latencies[name, Strategy.PT_DHA])
                    for name in MODEL_NAMES}
        assert speedups["roberta-base"] >= 1.85
        assert speedups["roberta-base"] == max(
            s for n, s in speedups.items() if n != "bert-base") or \
            speedups["bert-base"] >= speedups["roberta-base"] * 0.95

    def test_gpt2_pt_gains_little(self, latencies):
        """Paper: PT shows no real improvement for GPT-2 models."""
        for name in ("gpt2", "gpt2-medium"):
            speedup = (latencies[name, Strategy.PIPESWITCH]
                       / latencies[name, Strategy.PT])
            assert speedup < 1.20


@pytest.mark.parametrize("name", ("bert-base", "bert-large", "gpt2"))
class TestInterference:
    def test_concurrent_pt_dha_slower_but_beats_pipeswitch(self, planner,
                                                           latencies, name):
        """Paper Table 4: two simultaneous PT cold-starts interfere, but
        each stays faster than PipeSwitch."""
        model = build_model(name)
        results = run_concurrent_cold_starts(
            p3_8xlarge(), model, Strategy.PT_DHA, primaries=[0, 2],
            planner=planner)
        for result in results:
            measured = result.latency / MS
            assert measured > latencies[name, Strategy.PT_DHA]
            assert measured < latencies[name, Strategy.PIPESWITCH]
            assert measured == pytest.approx(PAPER_PT_DHA_2_MS[name],
                                             rel=0.25)


class TestFigure2StallFractions:
    def test_stall_fractions_by_family(self, planner):
        """BERT/RoBERTa stall 73-75% under PipeSwitch; ResNet/GPT 27-37%."""
        spec = p3_8xlarge()
        for name, (low, high) in {
            "bert-base": (0.65, 0.85), "roberta-large": (0.65, 0.85),
            "resnet50": (0.20, 0.45), "gpt2": (0.20, 0.45),
        }.items():
            result = run_single_inference(spec, build_model(name),
                                          Strategy.PIPESWITCH, planner=planner)
            fraction = result.total_stall / result.latency
            assert low < fraction < high, (name, fraction)
