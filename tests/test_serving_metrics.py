"""Unit tests for serving metrics."""

import pytest

from repro.serving.metrics import MetricsCollector, RequestRecord, merge
from repro.units import MS


def record(i=0, arrival=0.0, start=None, finish=None, cold=False,
           latency=None, submitted=None):
    submitted = arrival if submitted is None else submitted
    if latency is not None:
        finish = submitted + latency
    start = submitted if start is None else start
    finish = submitted + 0.01 if finish is None else finish
    return RequestRecord(request_id=i, instance_name="m", arrival_time=arrival,
                         submitted_at=submitted, started_at=start,
                         finished_at=finish, cold_start=cold)


class TestAggregates:
    def test_percentiles(self):
        metrics = MetricsCollector()
        for i in range(100):
            metrics.record(record(i, arrival=float(i), latency=(i + 1) * MS))
        assert metrics.p50_latency == pytest.approx(50.5 * MS, rel=0.02)
        assert metrics.p99_latency == pytest.approx(99 * MS, rel=0.02)
        assert metrics.mean_latency == pytest.approx(50.5 * MS, rel=0.01)

    def test_goodput_counts_slo_compliant_requests(self):
        metrics = MetricsCollector(slo=100 * MS)
        metrics.record(record(0, latency=50 * MS))
        metrics.record(record(1, latency=150 * MS))
        assert metrics.goodput == 0.5

    def test_cold_start_rate(self):
        metrics = MetricsCollector()
        metrics.record(record(0, cold=True))
        metrics.record(record(1))
        metrics.record(record(2))
        assert metrics.cold_start_rate == pytest.approx(1 / 3)
        assert metrics.cold_start_count == 1

    def test_queueing_delay(self):
        rec = record(0, arrival=1.0, start=1.5, finish=2.0)
        assert rec.queueing_delay == pytest.approx(0.5)
        assert rec.latency == pytest.approx(1.0)

    def test_empty_collector_raises(self):
        metrics = MetricsCollector()
        with pytest.raises(ValueError):
            metrics.p99_latency
        with pytest.raises(ValueError):
            metrics.goodput

    def test_invalid_slo_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector(slo=0)

    def test_summary_keys(self):
        metrics = MetricsCollector()
        metrics.record(record())
        assert set(metrics.summary()) == {
            "requests", "p50_ms", "p99_ms", "goodput", "cold_start_rate",
            "shed", "dropped"}


class TestWindows:
    def test_windows_partition_by_arrival_time(self):
        metrics = MetricsCollector()
        metrics.record(record(0, arrival=10.0, latency=10 * MS))
        metrics.record(record(1, arrival=70.0, latency=10 * MS, cold=True))
        metrics.record(record(2, arrival=80.0, latency=200 * MS))
        windows = metrics.windows(60.0)
        assert len(windows) == 2
        assert windows[0].num_requests == 1
        assert windows[1].num_requests == 2
        assert windows[1].cold_start_rate == 0.5
        assert windows[1].goodput == 0.5

    def test_empty_windows(self):
        assert MetricsCollector().windows() == []

    def test_bad_window_rejected(self):
        metrics = MetricsCollector()
        with pytest.raises(ValueError):
            metrics.windows(0)


class TestAbsoluteTimeConvention:
    """Metrics subtract absolute from absolute (the PR 1 time-base fix)."""

    def test_latency_measured_from_submit_not_run_relative_arrival(self):
        # A request generated for offset 5 s within a run that began at
        # sim time 100 s: latency is 0.2 s, not 95.2 s.
        rec = record(0, arrival=5.0, submitted=105.0, finish=105.2)
        assert rec.latency == pytest.approx(0.2)
        assert rec.queueing_delay == pytest.approx(0.0)

    def test_throughput_uses_absolute_span(self):
        metrics = MetricsCollector()
        metrics.record(record(0, arrival=0.0, submitted=100.0, latency=0.5))
        metrics.record(record(1, arrival=1.0, submitted=101.0, latency=0.5))
        assert metrics.throughput == pytest.approx(2 / 1.5)

    def test_windows_bucket_by_submit_time(self):
        # Two back-to-back runs recorded into one collector: identical
        # run-relative arrivals, but distinct submit times must land in
        # distinct windows instead of aliasing together.
        metrics = MetricsCollector()
        metrics.record(record(0, arrival=10.0, submitted=10.0, latency=10 * MS))
        metrics.record(record(1, arrival=10.0, submitted=310.0, latency=10 * MS))
        windows = metrics.windows(60.0)
        assert len(windows) == 2
        assert [w.num_requests for w in windows] == [1, 1]
        assert windows[1].window_start == 300.0


class TestMerge:
    def test_merge_combines_records(self):
        a, b = MetricsCollector(), MetricsCollector()
        a.record(record(0))
        b.record(record(1, cold=True))
        merged = merge([a, b])
        assert len(merged) == 2
        assert merged.cold_start_count == 1

    def test_merge_carries_shed_and_dropped(self):
        a, b = MetricsCollector(), MetricsCollector()
        a.record(record(0))
        a.record_shed(2)
        b.record_dropped()
        merged = merge([a, b])
        assert merged.shed == 2
        assert merged.dropped == 1
        assert merged.observed == 4


class TestGoodputDenominator:
    """Shed and dropped requests count against goodput (PR 7 fix)."""

    def test_shed_requests_lower_goodput(self):
        metrics = MetricsCollector(slo=100 * MS)
        metrics.record(record(0, latency=50 * MS))
        metrics.record(record(1, latency=50 * MS))
        assert metrics.goodput == 1.0
        metrics.record_shed(2)
        assert metrics.goodput == 0.5

    def test_dropped_requests_lower_goodput(self):
        metrics = MetricsCollector(slo=100 * MS)
        metrics.record(record(0, latency=50 * MS))
        metrics.record_dropped(3)
        assert metrics.goodput == 0.25

    def test_all_shed_is_zero_goodput_not_error(self):
        metrics = MetricsCollector()
        metrics.record_shed(5)
        assert metrics.goodput == 0.0

    def test_summary_reports_shed_and_dropped(self):
        metrics = MetricsCollector()
        metrics.record(record(0))
        metrics.record_shed()
        metrics.record_dropped()
        summary = metrics.summary()
        assert summary["shed"] == 1.0
        assert summary["dropped"] == 1.0

    def test_invalid_counts_rejected(self):
        metrics = MetricsCollector()
        with pytest.raises(ValueError):
            metrics.record_shed(0)
        with pytest.raises(ValueError):
            metrics.record_dropped(-1)


class TestExactRankPercentiles:
    """Percentiles are order statistics, never interpolations (PR 7 fix)."""

    def test_p99_is_an_observed_latency_on_small_samples(self):
        # Ten samples 1..10 ms: interpolation would fabricate ~9.91 ms;
        # the exact-rank p99 is the largest observed sample.
        metrics = MetricsCollector()
        for i in range(10):
            metrics.record(record(i, arrival=float(i), latency=(i + 1) * MS))
        observed = {(i + 1) * MS for i in range(10)}
        assert metrics.p99_latency == pytest.approx(10 * MS)
        assert any(metrics.percentile(99) == pytest.approx(v)
                   for v in observed)

    def test_small_window_p99_is_nan(self):
        metrics = MetricsCollector()
        for i in range(10):
            metrics.record(record(i, arrival=float(i), latency=10 * MS))
        (window,) = metrics.windows(60.0)
        assert window.num_requests == 10
        assert window.p99_latency != window.p99_latency  # nan
        assert window.histogram is not None
        assert window.histogram.total == 10

    def test_large_window_p99_reported(self):
        metrics = MetricsCollector()
        for i in range(120):
            metrics.record(record(i, arrival=float(i) * 0.1,
                                  latency=(i + 1) * MS))
        (window,) = metrics.windows(60.0)
        assert window.p99_latency == window.p99_latency  # not nan
        assert window.p99_latency == pytest.approx(119 * MS)


class TestThroughputSpan:
    def test_zero_span_is_nan_not_inf(self):
        metrics = MetricsCollector()
        metrics.record(record(0, arrival=0.0, latency=0.0))
        value = metrics.throughput
        assert value != value  # nan, not inf

