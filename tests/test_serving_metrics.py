"""Unit tests for serving metrics."""

import pytest

from repro.serving.metrics import MetricsCollector, RequestRecord, merge
from repro.units import MS


def record(i=0, arrival=0.0, start=None, finish=None, cold=False,
           latency=None):
    if latency is not None:
        finish = arrival + latency
    start = arrival if start is None else start
    finish = arrival + 0.01 if finish is None else finish
    return RequestRecord(request_id=i, instance_name="m", arrival_time=arrival,
                         started_at=start, finished_at=finish, cold_start=cold)


class TestAggregates:
    def test_percentiles(self):
        metrics = MetricsCollector()
        for i in range(100):
            metrics.record(record(i, arrival=float(i), latency=(i + 1) * MS))
        assert metrics.p50_latency == pytest.approx(50.5 * MS, rel=0.02)
        assert metrics.p99_latency == pytest.approx(99 * MS, rel=0.02)
        assert metrics.mean_latency == pytest.approx(50.5 * MS, rel=0.01)

    def test_goodput_counts_slo_compliant_requests(self):
        metrics = MetricsCollector(slo=100 * MS)
        metrics.record(record(0, latency=50 * MS))
        metrics.record(record(1, latency=150 * MS))
        assert metrics.goodput == 0.5

    def test_cold_start_rate(self):
        metrics = MetricsCollector()
        metrics.record(record(0, cold=True))
        metrics.record(record(1))
        metrics.record(record(2))
        assert metrics.cold_start_rate == pytest.approx(1 / 3)
        assert metrics.cold_start_count == 1

    def test_queueing_delay(self):
        rec = record(0, arrival=1.0, start=1.5, finish=2.0)
        assert rec.queueing_delay == pytest.approx(0.5)
        assert rec.latency == pytest.approx(1.0)

    def test_empty_collector_raises(self):
        metrics = MetricsCollector()
        with pytest.raises(ValueError):
            metrics.p99_latency
        with pytest.raises(ValueError):
            metrics.goodput

    def test_invalid_slo_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector(slo=0)

    def test_summary_keys(self):
        metrics = MetricsCollector()
        metrics.record(record())
        assert set(metrics.summary()) == {
            "requests", "p50_ms", "p99_ms", "goodput", "cold_start_rate"}


class TestWindows:
    def test_windows_partition_by_arrival_time(self):
        metrics = MetricsCollector()
        metrics.record(record(0, arrival=10.0, latency=10 * MS))
        metrics.record(record(1, arrival=70.0, latency=10 * MS, cold=True))
        metrics.record(record(2, arrival=80.0, latency=200 * MS))
        windows = metrics.windows(60.0)
        assert len(windows) == 2
        assert windows[0].num_requests == 1
        assert windows[1].num_requests == 2
        assert windows[1].cold_start_rate == 0.5
        assert windows[1].goodput == 0.5

    def test_empty_windows(self):
        assert MetricsCollector().windows() == []

    def test_bad_window_rejected(self):
        metrics = MetricsCollector()
        with pytest.raises(ValueError):
            metrics.windows(0)


class TestMerge:
    def test_merge_combines_records(self):
        a, b = MetricsCollector(), MetricsCollector()
        a.record(record(0))
        b.record(record(1, cold=True))
        merged = merge([a, b])
        assert len(merged) == 2
        assert merged.cold_start_count == 1
