"""End-to-end integration tests across the whole stack.

These cross-validate the two implementations of the same semantics —
the analytic timeline (used by the planner) and the discrete-event
executor (used by everything else) — and exercise full
plan -> execute -> serve pipelines on both machine presets.
"""

import pytest

from repro.core import DeepPlan, Strategy
from repro.engine import execute_plan, execute_warm
from repro.hw.machine import Machine
from repro.hw.specs import a5000x2, dgx1_v100, p3_8xlarge
from repro.models import MODEL_NAMES, build_model
from repro.serving import InferenceServer, PoissonWorkload, ServerConfig
from repro.simkit import Simulator


@pytest.fixture(scope="module")
def planner():
    return DeepPlan(p3_8xlarge(), noise=0.0)


def executed_latency(planner, spec, plan, secondaries):
    machine = Machine(Simulator(), spec)
    process = execute_plan(machine, planner.cost_model, plan, 0, secondaries)
    return machine.sim.run(process.done).latency


class TestAnalyticVsExecuted:
    """The planner's predictions must track what the DES executes."""

    @pytest.mark.parametrize("name", MODEL_NAMES)
    @pytest.mark.parametrize("strategy", [Strategy.PIPESWITCH, Strategy.PT])
    def test_loaded_strategies_match_closely(self, planner, name, strategy):
        model = build_model(name)
        plan = planner.plan(model, strategy)
        secondaries = planner.secondary_gpus(0, plan)
        latency = executed_latency(planner, p3_8xlarge(), plan, secondaries)
        assert latency == pytest.approx(plan.predicted_latency, rel=0.02), \
            (name, strategy)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_dha_strategies_match_within_contention_error(self, planner,
                                                          name):
        """DHA predictions use the profiled (contended) costs; the DES
        realizes the actual overlap, so agreement is looser but bounded."""
        model = build_model(name)
        for strategy in (Strategy.DHA, Strategy.PT_DHA):
            plan = planner.plan(model, strategy)
            secondaries = planner.secondary_gpus(0, plan)
            latency = executed_latency(planner, p3_8xlarge(), plan,
                                       secondaries)
            assert latency == pytest.approx(plan.predicted_latency,
                                            rel=0.10), (name, strategy)


class TestCrossMachine:
    @pytest.mark.parametrize("spec_builder", [p3_8xlarge, a5000x2,
                                              dgx1_v100])
    def test_full_pipeline_on_every_preset(self, spec_builder):
        spec = spec_builder()
        planner = DeepPlan(spec, noise=0.0)
        model = build_model("bert-base")
        plan = planner.plan(model, Strategy.PT_DHA)
        latency = executed_latency(planner, spec, plan,
                                   planner.secondary_gpus(0, plan))
        assert 0 < latency < 0.1

    def test_serving_on_dgx1(self):
        spec = dgx1_v100()
        planner = DeepPlan(spec, noise=0.0)
        machine = Machine(Simulator(), spec)
        server = InferenceServer(machine, planner, ServerConfig())
        server.deploy([(build_model("bert-base"), 16)])
        workload = PoissonWorkload(list(server.instances), rate=50.0,
                                   num_requests=150, seed=0)
        report = server.run(workload.generate())
        assert report.metrics.goodput == 1.0


class TestColdThenWarmConsistency:
    def test_warm_follows_cold_correctly(self, planner):
        """After a cold start, warm inference on the same plan matches
        the cost model's steady state — and a DHA plan's warm latency
        includes its recurring PCIe reads."""
        model = build_model("roberta-base")
        plan = planner.plan(model, Strategy.DHA)
        machine = Machine(Simulator(), p3_8xlarge())
        cold = machine.sim.run(
            execute_plan(machine, planner.cost_model, plan, 0).done)
        warm = machine.sim.run(
            execute_warm(machine, planner.cost_model, plan, 0).done)
        assert warm.latency < cold.latency
        floor = planner.cost_model.model_exec_inmem(model, 1)
        assert warm.latency > floor  # the DHA layers' recurring cost


class TestDeterminism:
    def test_whole_stack_is_reproducible(self, planner):
        """Same seeds, same plans, same machine -> identical metrics."""
        def serve_once():
            machine = Machine(Simulator(), p3_8xlarge())
            server = InferenceServer(machine, planner, ServerConfig())
            server.deploy([(build_model("bert-base"), 130)])
            workload = PoissonWorkload(list(server.instances), rate=100.0,
                                       num_requests=300, seed=77)
            return server.run(workload.generate())

        first, second = serve_once(), serve_once()
        assert first.metrics.p99_latency == second.metrics.p99_latency
        assert first.metrics.cold_start_count == second.metrics.cold_start_count
