"""Differential-execution tests: fast paths vs per-layer references.

These are the acceptance checks for the audit tentpole: over 20 seeded
random model/plan combinations covering every strategy, the coalesced
fast paths and the per-layer reference paths must agree to better than
a nanosecond of simulated time, with zero invariant violations, and the
planner's cost prediction must bracket the simulated latency.
"""

import pytest

from repro.audit import (
    DifferentialCase,
    differential_serving,
    random_model,
    run_case,
    run_differential_suite,
)
from repro.audit.differential import PREDICTION_BRACKET, TIME_TOLERANCE


@pytest.fixture(scope="module")
def suite():
    return run_differential_suite(num_cases=20, seed=0)


class TestRandomModels:
    def test_same_seed_same_model(self):
        a, b = random_model(42), random_model(42)
        assert a.layers == b.layers
        assert a.seq_len == b.seq_len

    def test_seeds_cover_both_families(self):
        families = {random_model(seed).family for seed in range(12)}
        assert families == {"random-transformer", "random-convnet"}


class TestDifferentialSuite:
    def test_covers_twenty_cases_and_all_strategies(self, suite):
        assert len(suite) == 20
        assert len({r.case.strategy for r in suite}) == 5

    def test_fast_paths_agree_with_reference_paths(self, suite):
        for result in suite:
            assert result.cold_divergence < TIME_TOLERANCE, result.case
            assert result.warm_divergence < TIME_TOLERANCE, result.case

    def test_zero_invariant_violations(self, suite):
        assert all(result.violations == () for result in suite)

    def test_predictions_bracket_simulated_latency(self, suite):
        lo, hi = PREDICTION_BRACKET
        for result in suite:
            assert lo <= result.prediction_ratio <= hi, result.case

    def test_agrees_property_summarizes_all_checks(self, suite):
        assert all(result.agrees for result in suite)


class TestSingleCase:
    def test_case_reports_timings_for_both_paths(self):
        result = run_case(DifferentialCase(seed=5, strategy="pt+dha",
                                           batch_size=1))
        assert result.cold_per_layer > 0
        assert result.warm_per_layer > 0
        assert result.cold_coalesced == pytest.approx(result.cold_per_layer,
                                                      abs=TIME_TOLERANCE)


class TestDifferentialServing:
    def test_serving_paths_agree_per_request(self):
        fast, reference = differential_serving(seed=1, num_requests=60)
        assert len(fast) == len(reference) == 60
        cold = sum(r.cold_start for r in fast)
        assert cold > 0, "scenario must exercise cold-start provisioning"
        assert cold == sum(r.cold_start for r in reference)
        for a, b in zip(fast, reference):
            assert a.request_id == b.request_id
            assert a.finished_at == pytest.approx(b.finished_at,
                                                  abs=TIME_TOLERANCE)
            assert a.cold_start == b.cold_start
