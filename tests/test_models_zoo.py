"""Tests that the model zoo reproduces the published architectures."""

import pytest

from repro.models import MODEL_NAMES, build_model, model_registry
from repro.models.graph import ModelSpec
from repro.models.layers import LayerKind, linear
from repro.models.zoo import microbench_layers
from repro.units import MB

# Published parameter counts (millions): TorchVision and HuggingFace.
PUBLISHED_PARAMS = {
    "resnet50": 25.6,
    "resnet101": 44.5,
    "bert-base": 110.0,
    "bert-large": 336.0,
    "roberta-base": 125.0,
    "roberta-large": 355.0,
    "gpt2": 124.0,
    "gpt2-medium": 355.0,
}


class TestRegistry:
    def test_all_eight_paper_models_present(self):
        assert set(MODEL_NAMES) == set(PUBLISHED_PARAMS)

    def test_unknown_model_raises_with_hint(self):
        with pytest.raises(KeyError, match="known models"):
            build_model("alexnet")

    def test_builders_are_deterministic(self):
        a, b = build_model("bert-base"), build_model("bert-base")
        assert a.layers == b.layers


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestArchitectures:
    def test_param_count_matches_published(self, name):
        model = build_model(name)
        published = PUBLISHED_PARAMS[name] * 1e6
        assert model.param_count == pytest.approx(published, rel=0.02)

    def test_layers_have_unique_names(self, name):
        model = build_model(name)
        names = [layer.name for layer in model.layers]
        assert len(set(names)) == len(names)

    def test_loadable_layers_cover_all_parameters(self, name):
        model = build_model(name)
        loadable_bytes = sum(model.layers[i].param_bytes
                             for i in model.loadable_indices())
        assert loadable_bytes == model.param_bytes


class TestSpecificShapes:
    def test_bert_base_size_is_417_mib(self):
        """The paper quotes BERT-Base at 417 MB with an 89.4 MB embedding."""
        model = build_model("bert-base")
        assert model.param_bytes / MB == pytest.approx(417.6, abs=1.0)
        word = model.layers[model.layer_index("embeddings.word")]
        assert word.param_bytes / MB == pytest.approx(89.42, abs=0.01)

    def test_bert_sequence_length_is_384(self):
        assert build_model("bert-base").seq_len == 384
        assert build_model("roberta-large").seq_len == 384

    def test_gpt2_sequence_length_is_1024(self):
        assert build_model("gpt2").seq_len == 1024

    def test_roberta_has_larger_vocab_than_bert(self):
        bert = build_model("bert-base")
        roberta = build_model("roberta-base")
        bert_word = bert.layers[bert.layer_index("embeddings.word")]
        roberta_word = roberta.layers[roberta.layer_index("embeddings.word")]
        assert roberta_word.param_bytes > 1.6 * bert_word.param_bytes

    def test_resnet_depth_difference(self):
        r50 = build_model("resnet50")
        r101 = build_model("resnet101")
        assert len(r101.layers_of_kind(LayerKind.CONV)) > \
            len(r50.layers_of_kind(LayerKind.CONV))
        # ResNet-101 adds 17 bottlenecks in stage 3: 3 convs + 3 BNs each.
        assert len(r101.layers_of_kind(LayerKind.CONV)) - \
            len(r50.layers_of_kind(LayerKind.CONV)) == 17 * 3

    def test_gpt2_front_layers_match_paper_table3b(self):
        """Table 3b lists GPT-2's first five parameterized layers:
        Emb, Emb, LN, FC, FC (the paper's view skips parameter-free
        attention compute)."""
        model = build_model("gpt2")
        kinds = [model.layers[i].kind for i in model.loadable_indices()[:5]]
        assert kinds == [LayerKind.EMBEDDING, LayerKind.EMBEDDING,
                         LayerKind.LAYERNORM, LayerKind.LINEAR,
                         LayerKind.LINEAR]


class TestMicrobenchLayers:
    def test_sizes_match_figure5(self):
        layers = microbench_layers()
        expect = {
            "embedding-medium": 1.50,
            "embedding-large": 89.42,
            "conv-medium": 2.25,
            "conv-large": 9.0,
            "fc-small": 2.25,
            "fc-large": 9.01,
        }
        for key, mib in expect.items():
            assert layers[key].param_bytes / MB == pytest.approx(mib, abs=0.02)


class TestModelSpec:
    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec(name="empty", layers=(), seq_len=1, family="x")

    def test_duplicate_layer_names_rejected(self):
        layer = linear("same", 4, 4)
        with pytest.raises(ValueError, match="duplicate"):
            ModelSpec(name="dup", layers=(layer, layer), seq_len=1, family="x")

    def test_layer_index_lookup(self):
        model = build_model("gpt2")
        assert model.layer_index("wte") == 0
        with pytest.raises(KeyError):
            model.layer_index("missing")

    def test_summary_mentions_size(self):
        text = build_model("bert-base").summary()
        assert "417" in text
        assert "seq_len=384" in text

    def test_registry_builders_all_construct(self):
        for name, builder in model_registry().items():
            model = builder()
            assert model.name == name
            assert len(model) > 10


class TestComputeSanity:
    def test_bert_flops_match_analytic_estimate(self):
        """Dense-layer FLOPs for an encoder are ~2 * params * tokens
        (embeddings and attention excluded)."""
        model = build_model("bert-base")
        dense_flops = sum(l.flops_per_item for l in model.layers
                          if l.kind is LayerKind.LINEAR)
        dense_params = sum(l.param_bytes // 4 for l in model.layers
                           if l.kind is LayerKind.LINEAR)
        # The pooler runs on one token; everything else on 384.
        assert dense_flops == pytest.approx(2 * dense_params * 384, rel=0.02)

    def test_resnet50_flops_near_published(self):
        """ResNet-50 is ~4.1 GMACs = 8.2 GFLOPs for a 224x224 image."""
        model = build_model("resnet50")
        conv_flops = sum(l.flops_per_item for l in model.layers
                         if l.kind is LayerKind.CONV)
        assert conv_flops == pytest.approx(8.2e9, rel=0.15)

    def test_gpt2_attention_cost_grows_quadratically(self):
        short = build_gpt2_seq(256)
        long = build_gpt2_seq(512)
        att = lambda m: sum(l.flops_per_item for l in m.layers
                            if l.kind is LayerKind.ATTENTION)
        assert att(long) == pytest.approx(4 * att(short), rel=0.01)


def build_gpt2_seq(seq_len):
    from repro.models.zoo import build_gpt2
    return build_gpt2(f"gpt2-s{seq_len}", 768, 12, 12, seq_len=seq_len)
