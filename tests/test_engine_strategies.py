"""Tests for the one-shot strategy runners."""

import pytest

from repro.core import DeepPlan, Strategy
from repro.engine import run_concurrent_cold_starts, run_single_inference
from repro.hw.specs import a5000x2, p3_8xlarge
from repro.models import build_model


@pytest.fixture(scope="module")
def planner():
    return DeepPlan(p3_8xlarge(), noise=0.0)


@pytest.fixture(scope="module")
def resnet():
    return build_model("resnet50")


class TestRunSingleInference:
    def test_accepts_strategy_strings(self, planner, resnet):
        result = run_single_inference(p3_8xlarge(), resnet, "pipeswitch",
                                      planner=planner)
        assert result.plan.strategy == "pipeswitch"

    def test_builds_planner_when_not_given(self, resnet):
        result = run_single_inference(p3_8xlarge(), resnet,
                                      Strategy.BASELINE)
        assert result.latency > 0

    def test_deterministic(self, planner, resnet):
        first = run_single_inference(p3_8xlarge(), resnet, Strategy.PT_DHA,
                                     planner=planner)
        second = run_single_inference(p3_8xlarge(), resnet, Strategy.PT_DHA,
                                      planner=planner)
        assert first.latency == second.latency

    def test_batch_size_increases_latency(self, planner, resnet):
        small = run_single_inference(p3_8xlarge(), resnet,
                                     Strategy.PIPESWITCH, batch_size=1,
                                     planner=planner)
        large = run_single_inference(p3_8xlarge(), resnet,
                                     Strategy.PIPESWITCH, batch_size=8,
                                     planner=planner)
        assert large.latency > small.latency
        # ...but throughput improves (Figure 12's premise).
        assert 8 / large.latency > 1 / small.latency

    def test_works_on_two_gpu_machine(self, resnet):
        result = run_single_inference(a5000x2(), resnet, Strategy.PT_DHA)
        assert result.secondary_gpus == (1,)


class TestConcurrentColdStarts:
    def test_symmetric_primaries_get_equal_latency(self, planner, resnet):
        results = run_concurrent_cold_starts(
            p3_8xlarge(), resnet, Strategy.PT_DHA, primaries=[0, 2],
            planner=planner)
        assert len(results) == 2
        assert results[0].latency == pytest.approx(results[1].latency,
                                                   rel=1e-6)

    def test_pipeswitch_pair_on_one_switch_contends(self, planner, resnet):
        alone = run_single_inference(p3_8xlarge(), resnet,
                                     Strategy.PIPESWITCH, planner=planner)
        pair = run_concurrent_cold_starts(
            p3_8xlarge(), resnet, Strategy.PIPESWITCH, primaries=[0, 1],
            planner=planner)
        for result in pair:
            assert result.latency > 1.3 * alone.latency

    def test_pipeswitch_pair_across_switches_does_not(self, planner, resnet):
        alone = run_single_inference(p3_8xlarge(), resnet,
                                     Strategy.PIPESWITCH, planner=planner)
        pair = run_concurrent_cold_starts(
            p3_8xlarge(), resnet, Strategy.PIPESWITCH, primaries=[0, 2],
            planner=planner)
        for result in pair:
            assert result.latency == pytest.approx(alone.latency, rel=0.02)

    def test_three_concurrent_cold_starts(self, planner, resnet):
        results = run_concurrent_cold_starts(
            p3_8xlarge(), resnet, Strategy.PIPESWITCH, primaries=[0, 1, 2],
            planner=planner)
        assert len(results) == 3
        # GPU 2 is alone on its switch: it finishes first.
        assert results[2].latency < results[0].latency
