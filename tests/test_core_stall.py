"""Unit tests for the pipeline timeline model."""

import pytest

from repro.core.plan import ExecMethod, Partition
from repro.core.stall import baseline_latency, compute_timeline
from repro.models.costs import EVENT_SYNC_OVERHEAD, LayerCosts
from repro.models.layers import LayerKind


def cost(name="l", load=1.0, inmem=0.5, dha=0.8, nbytes=100):
    return LayerCosts(name=name, kind=LayerKind.LINEAR, load_time=load,
                      exec_inmem=inmem, exec_dha=dha, load_pcie_bytes=nbytes,
                      dha_pcie_bytes=nbytes)


def free_cost(name="act", inmem=0.5):
    return LayerCosts(name=name, kind=LayerKind.ACTIVATION, load_time=0.0,
                      exec_inmem=inmem, exec_dha=inmem, load_pcie_bytes=0,
                      dha_pcie_bytes=0)


LOAD = ExecMethod.LOAD
DHA = ExecMethod.DHA


class TestSingleGPUPipeline:
    def test_first_layer_stalls_for_its_own_load(self):
        costs = [cost(load=2.0, inmem=1.0)]
        timeline = compute_timeline(costs, [LOAD])
        timing = timeline.timings[0]
        assert timing.ready == pytest.approx(2.0)
        assert timing.stall == pytest.approx(2.0)
        assert timing.end == pytest.approx(3.0 + EVENT_SYNC_OVERHEAD)

    def test_fast_execution_stalls_on_every_load(self):
        """Load-bound pipeline: stalls dominate (the BERT case, Fig. 2)."""
        costs = [cost(load=2.0, inmem=0.1) for _ in range(3)]
        timeline = compute_timeline(costs, [LOAD] * 3)
        assert timeline.total_stall > 0.8 * timeline.total_latency * (2.0 / 2.1)
        # Last layer's parameters arrive at 6.0.
        assert timeline.timings[-1].ready == pytest.approx(6.0)

    def test_slow_execution_hides_all_but_first_load(self):
        """Compute-bound pipeline: only the first layer stalls."""
        costs = [cost(load=0.5, inmem=2.0) for _ in range(4)]
        timeline = compute_timeline(costs, [LOAD] * 4)
        stalls = [t.stall for t in timeline.timings]
        assert stalls[0] == pytest.approx(0.5)
        assert all(s == 0 for s in stalls[1:])

    def test_dha_layer_starts_without_waiting(self):
        costs = [cost(load=5.0, inmem=1.0, dha=1.5), cost(load=1.0, inmem=1.0)]
        timeline = compute_timeline(costs, [DHA, LOAD])
        first = timeline.timings[0]
        assert first.stall == 0
        assert first.start == 0
        assert first.end == pytest.approx(1.5)
        # Second layer's load starts immediately (DHA freed the stream).
        assert timeline.timings[1].ready == pytest.approx(1.0)

    def test_dha_conversion_reduces_latency_when_load_bound(self):
        costs = [cost(load=3.0, inmem=0.2, dha=0.6) for _ in range(3)]
        all_load = compute_timeline(costs, [LOAD] * 3).total_latency
        first_dha = compute_timeline(costs, [DHA, LOAD, LOAD]).total_latency
        assert first_dha < all_load

    def test_parameter_free_layer_never_stalls(self):
        costs = [cost(load=2.0), free_cost(inmem=0.3), cost(load=2.0)]
        timeline = compute_timeline(costs, [LOAD, DHA, LOAD])
        assert timeline.timings[1].stall == 0
        assert timeline.timings[1].ready == 0


class TestParallelTransmission:
    def test_second_partition_arrives_via_nvlink(self):
        costs = [cost(load=2.0, inmem=0.1) for _ in range(4)]
        partitions = (Partition(0, 0, 2), Partition(1, 2, 4))
        nvlink = lambda nbytes: 0.25
        timeline = compute_timeline(costs, [LOAD] * 4, partitions, nvlink)
        # Partition 1 loads in parallel: layer 2 lands at 2.0 on the
        # secondary, arrives on primary at 2.25.
        assert timeline.timings[2].ready == pytest.approx(2.25)
        assert timeline.timings[3].ready == pytest.approx(4.25)

    def test_parallel_transmission_beats_serial_when_load_bound(self):
        costs = [cost(load=2.0, inmem=0.1) for _ in range(6)]
        serial = compute_timeline(costs, [LOAD] * 6).total_latency
        partitions = (Partition(0, 0, 3), Partition(1, 3, 6))
        parallel = compute_timeline(costs, [LOAD] * 6, partitions,
                                    lambda b: 0.05).total_latency
        assert parallel < 0.65 * serial

    def test_multiple_partitions_requires_nvlink_time(self):
        costs = [cost() for _ in range(4)]
        partitions = (Partition(0, 0, 2), Partition(1, 2, 4))
        with pytest.raises(ValueError, match="nvlink"):
            compute_timeline(costs, [LOAD] * 4, partitions)

    def test_migration_stream_serializes_forwards(self):
        costs = [cost(load=0.1, inmem=0.01), cost(load=0.1, inmem=0.01),
                 cost(load=1.0, inmem=0.01), cost(load=1.0, inmem=0.01)]
        partitions = (Partition(0, 0, 2), Partition(1, 2, 4))
        slow_nvlink = lambda nbytes: 2.0
        timeline = compute_timeline(costs, [LOAD] * 4, partitions, slow_nvlink)
        # Layer 2 lands at 1.0, forwarded by 3.0; layer 3 lands at 2.0 but
        # must wait for the migration stream: forwarded by 5.0.
        assert timeline.timings[2].ready == pytest.approx(3.0)
        assert timeline.timings[3].ready == pytest.approx(5.0)


class TestAggregates:
    def test_total_decomposition(self):
        costs = [cost(load=2.0, inmem=0.5) for _ in range(3)]
        timeline = compute_timeline(costs, [LOAD] * 3)
        assert timeline.total_latency == pytest.approx(
            timeline.total_stall + timeline.total_execution)
        assert 0 < timeline.stall_fraction < 1

    def test_baseline_is_sum_of_everything(self):
        costs = [cost(load=2.0, inmem=0.5) for _ in range(3)]
        assert baseline_latency(costs) == pytest.approx(7.5)

    def test_baseline_never_faster_than_pipeline(self):
        costs = [cost(load=1.0, inmem=0.7) for _ in range(5)]
        pipelined = compute_timeline(costs, [LOAD] * 5).total_latency
        assert baseline_latency(costs) >= pipelined

    def test_decision_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_timeline([cost()], [LOAD, LOAD])

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValueError):
            compute_timeline([], [])
