"""Tests for plan serialization (save/load deployable plans)."""

import json

import pytest

from repro.core import DeepPlan, Strategy
from repro.core.serialization import (
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from repro.errors import PlanError
from repro.hw.specs import p3_8xlarge
from repro.models import build_model


@pytest.fixture(scope="module")
def planner():
    return DeepPlan(p3_8xlarge(), noise=0.0)


@pytest.fixture(scope="module")
def plan(planner):
    return planner.plan(build_model("bert-base"), Strategy.PT_DHA)


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self, plan):
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.model == plan.model
        assert restored.decisions == plan.decisions
        assert restored.partitions == plan.partitions
        assert restored.strategy == plan.strategy
        assert restored.machine_name == plan.machine_name
        assert restored.predicted_latency == plan.predicted_latency

    def test_file_round_trip(self, plan, tmp_path):
        path = tmp_path / "bert.plan.json"
        save_plan(plan, path)
        restored = load_plan(path)
        assert restored.decisions == plan.decisions
        assert restored.gpu_resident_bytes == plan.gpu_resident_bytes

    def test_restored_plan_executes_identically(self, planner, plan,
                                                tmp_path):
        from repro.engine import execute_plan
        from repro.hw.machine import Machine
        from repro.simkit import Simulator

        path = tmp_path / "plan.json"
        save_plan(plan, path)
        restored = load_plan(path)

        def run(p):
            machine = Machine(Simulator(), p3_8xlarge())
            secondaries = planner.secondary_gpus(0, p)
            return machine.sim.run(execute_plan(
                machine, planner.cost_model, p, 0, secondaries).done)

        assert run(restored).latency == run(plan).latency

    def test_json_is_human_readable(self, plan, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        data = json.loads(path.read_text())
        assert data["strategy"] == "pt+dha"
        assert data["model"]["name"] == "bert-base"
        assert set(data["decisions"]) <= {"load", "dha"}


class TestValidation:
    def test_wrong_version_rejected(self, plan):
        data = plan_to_dict(plan)
        data["format_version"] = 99
        with pytest.raises(PlanError, match="version"):
            plan_from_dict(data)

    def test_missing_field_rejected(self, plan):
        data = plan_to_dict(plan)
        del data["decisions"]
        with pytest.raises(PlanError, match="malformed"):
            plan_from_dict(data)

    def test_corrupt_layer_rejected(self, plan):
        data = plan_to_dict(plan)
        data["model"]["layers"][0]["kind"] = "quantum"
        with pytest.raises(PlanError):
            plan_from_dict(data)

    def test_non_json_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json {")
        with pytest.raises(PlanError, match="not valid JSON"):
            load_plan(path)

    def test_invariants_revalidated_on_load(self, plan):
        """Tampered decisions (DHA in partition 1) are rejected by the
        plan's own validation on reconstruction."""
        data = plan_to_dict(plan)
        boundary = data["partitions"][1]["start"]
        loadable_in_p1 = next(
            i for i in range(boundary, len(data["decisions"]))
            if data["model"]["layers"][i]["param_bytes"] > 0)
        data["decisions"][loadable_in_p1] = "dha"
        with pytest.raises(PlanError, match="first partition"):
            plan_from_dict(data)
