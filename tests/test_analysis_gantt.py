"""Tests for the ASCII timeline renderer."""

import pytest

from repro.analysis.gantt import render_gantt
from repro.core import DeepPlan, Strategy
from repro.engine import execute_plan, run_single_inference
from repro.hw.specs import p3_8xlarge
from repro.models import build_model


@pytest.fixture(scope="module")
def planner():
    return DeepPlan(p3_8xlarge(), noise=0.0)


@pytest.fixture(scope="module")
def pipeswitch_result(planner):
    return run_single_inference(p3_8xlarge(), build_model("bert-base"),
                                Strategy.PIPESWITCH, planner=planner)


class TestRenderGantt:
    def test_contains_all_lanes(self, planner):
        result = run_single_inference(p3_8xlarge(), build_model("bert-base"),
                                      Strategy.PT_DHA, planner=planner)
        text = render_gantt(result)
        assert "exec gpu0" in text
        assert "pcie gpu0" in text
        assert "pcie gpu2" in text  # the secondary lane

    def test_stall_heavy_run_shows_stalls(self, pipeswitch_result):
        text = render_gantt(pipeswitch_result)
        exec_line = next(l for l in text.splitlines() if "exec" in l)
        assert exec_line.count(".") > exec_line.count("#")  # Figure 2!

    def test_dha_layers_marked_distinctly(self, planner):
        result = run_single_inference(p3_8xlarge(), build_model("bert-base"),
                                      Strategy.DHA, planner=planner)
        exec_line = next(l for l in render_gantt(result).splitlines()
                         if "exec" in l)
        assert "x" in exec_line

    def test_respects_width(self, pipeswitch_result):
        text = render_gantt(pipeswitch_result, width=40)
        for line in text.splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) == 40

    def test_width_too_small_rejected(self, pipeswitch_result):
        with pytest.raises(ValueError):
            render_gantt(pipeswitch_result, width=8)

    def test_traceless_result_rejected(self, planner):
        from repro.hw.machine import Machine
        from repro.simkit import Simulator

        plan = planner.plan(build_model("resnet50"), Strategy.PIPESWITCH)
        machine = Machine(Simulator(), p3_8xlarge())
        result = machine.sim.run(execute_plan(
            machine, planner.cost_model, plan, 0,
            detailed_traces=False).done)
        with pytest.raises(ValueError, match="detailed_traces"):
            render_gantt(result)

    def test_header_mentions_duration(self, pipeswitch_result):
        header = render_gantt(pipeswitch_result).splitlines()[0]
        assert "ms" in header
        assert "stall" in header
